//! The batch-at-a-time physical operator pipeline.
//!
//! The planner lowers every SELECT to a [`PhysicalPlan`]: a tree of
//! operators (`SeqScan`/`IndexRangeScan`, `Filter`, `Project`, `HashJoin`,
//! `HashAggregate`, `Sort`, `Limit`, `Distinct`) each implementing
//! [`Operator::next_batch`] over [`RowBatch`]es of up to
//! [`exec::SCAN_BATCH_ROWS`] rows. One executor serves every shape; the old
//! fused aggregation kernel survives as the scan→filter→aggregate *fusion
//! rule* applied during lowering ([`Shape::Fused`]), so `SET enable_kernel`
//! toggles a plan rewrite, not a second executor, and there is no
//! "unsupported shape" fallback left to take.
//!
//! # Byte-identity with the seed interpreter
//!
//! Query answers and [`crate::ExecStats`] counters are byte-identical to
//! the fully-materialized interpreter this module replaced. Two invariants
//! make that hold:
//!
//! * **Charging contracts are ported verbatim** — each operator charges the
//!   same counters in the same per-row pattern the interpreter did (scan
//!   pages once per page change, `cpu_tuple_ops` before each predicate
//!   evaluation, one `n·log n` charge per sort, ...). Totals are sums, so
//!   batching never changes them.
//! * **Pipeline breakers are explicit.** Streaming an operator is
//!   order-safe only when its per-row expressions are subquery-free: then
//!   the only interleaved charges are CPU counters, which commute. An
//!   expression containing a subquery can touch buffer-pool pages, and the
//!   pool's LRU makes the hit/miss *order* observable — so subquery-bearing
//!   `Filter`/`Project`/`Aggregate` stages materialize their input first,
//!   which is exactly when the interpreter evaluated them. `Sort` and
//!   `Limit` are always breakers (the interpreter never terminated a scan
//!   early), and join inputs are materialized in FROM order before the
//!   greedy join phase, again matching the interpreter's phases.
//!
//! The one accepted divergence: when a query *errors*, the streaming
//! pipeline may surface a projection error from an early batch before a
//! scan error from a later row, where the interpreter would surface the
//! scan error first. Which error wins can differ; successful results and
//! their statistics never do.

use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::{HashMap, HashSet};
use std::hash::Hasher;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering as AtomicOrd};
use std::time::Instant;

use parking_lot::Mutex;

use apuama_sql::ast::{BinOp, Expr, Select, SelectItem, SetQuantifier, TableRef};
use apuama_sql::value::{hash_value, HashableValue};
use apuama_sql::Value;
use apuama_storage::{AccessKind, Row, RowId};

use crate::db::Database;
use crate::error::{EngineError, EngineResult};
use crate::eval::{self, eval_expr, truthiness, CompiledExpr, Frame};
use crate::exec::{self, Acc, AggSpec, BatchedCounter, Binding, ExecContext, GroupState, Relation};
use crate::planner::{self, AccessPath};
use crate::table::Table;

// ---------------------------------------------------------------------------
// Plan
// ---------------------------------------------------------------------------

/// A lowered SELECT: the original statement plus the operator shape the
/// planner chose for it. Cached plans store this tree; the access path of
/// each scan is still chosen per execution from the actual bound values.
#[derive(Debug, Clone)]
pub(crate) struct PhysicalPlan {
    pub(crate) select: Select,
    pub(crate) shape: Shape,
}

/// The two lowering outcomes: the fused scan→filter→aggregate pipeline
/// (the old kernel, now a rewrite rule) or the general operator tree.
#[derive(Debug, Clone)]
pub(crate) enum Shape {
    Fused(FusedPlan),
    General(GeneralPlan),
}

/// General shape: one node per FROM item, the equi-join edges between
/// them, and the residual (post-join) predicates with the scope names each
/// one needs.
#[derive(Debug, Clone)]
pub(crate) struct GeneralPlan {
    inputs: Vec<InputNode>,
    edges: Vec<planner::JoinEdge>,
    post: Vec<(Expr, Vec<String>)>,
    aggregated: bool,
}

/// One FROM item with its pushed-down single-scope conjuncts.
#[derive(Debug, Clone)]
enum InputNode {
    Table {
        name: String,
        alias: Option<String>,
        single: Vec<Expr>,
    },
    Derived {
        alias: String,
        plan: Box<PhysicalPlan>,
        single: Vec<Expr>,
    },
}

impl InputNode {
    fn scope_name(&self) -> &str {
        match self {
            InputNode::Table { name, alias, .. } => alias.as_deref().unwrap_or(name),
            InputNode::Derived { alias, .. } => alias,
        }
    }
}

/// The fusion rule's compiled form: a single-table aggregation whose
/// predicates, group-by keys, and aggregate arguments are pre-resolved to
/// positional programs. Built once at lowering, reused across executions.
#[derive(Debug, Clone)]
pub(crate) struct FusedPlan {
    table: String,
    binding_name: String,
    bindings: Vec<Binding>,
    /// Single-table conjuncts in classification order — the planner input.
    single: Vec<Expr>,
    compiled_single: Vec<CompiledExpr>,
    /// Conjuncts the general path would defer to post-filters (constant or
    /// parameter-only predicates), applied after the single-table ones.
    compiled_post: Vec<CompiledExpr>,
    specs: Vec<AggSpec>,
    /// Compiled aggregate arguments, aligned with `specs`; `None` for
    /// `count(*)` and argument-less specs.
    agg_args: Vec<Option<CompiledExpr>>,
    group_by: Vec<CompiledExpr>,
}

/// Lowers a SELECT to its physical shape. Infallible by design: unknown
/// tables and other execution-time errors surface when the tree is opened,
/// exactly where the interpreter surfaced them.
pub(crate) fn lower(q: &Select, db: &Database, kernel_on: bool) -> PhysicalPlan {
    PhysicalPlan {
        select: q.clone(),
        shape: lower_shape(q, db, kernel_on),
    }
}

pub(crate) fn lower_shape(q: &Select, db: &Database, kernel_on: bool) -> Shape {
    if kernel_on {
        if let Some(f) = compile_fused(q, db) {
            return Shape::Fused(f);
        }
    }
    Shape::General(lower_general(q, db, kernel_on))
}

/// The general lowering: classify WHERE conjuncts against the FROM scopes
/// (single-scope → pushed into that scan, equality across two scopes → a
/// join edge, the rest → post-filters) and lower derived tables
/// recursively.
fn lower_general(q: &Select, db: &Database, kernel_on: bool) -> GeneralPlan {
    let catalog = db.catalog();
    let scopes = planner::scopes_for_from(&q.from, catalog);

    let conjuncts = eval::split_conjuncts(q.selection.as_ref());
    let mut single: Vec<Vec<Expr>> = vec![Vec::new(); q.from.len()];
    let mut edges: Vec<planner::JoinEdge> = Vec::new();
    let mut post: Vec<(Expr, Vec<String>)> = Vec::new();
    for c in conjuncts {
        let refs = planner::conjunct_bindings(&c, &scopes, catalog);
        if refs.len() == 1 {
            let name = refs.iter().next().expect("len checked");
            let idx = scopes
                .iter()
                .position(|s| &s.name == name)
                .expect("binding came from scopes");
            single[idx].push(c);
        } else if let Some(edge) = planner::as_join_edge(&c, &scopes, catalog) {
            edges.push(edge);
        } else {
            post.push((c, refs.into_iter().collect()));
        }
    }
    // Evaluate subquery-bearing residuals last within each scan.
    for list in &mut single {
        list.sort_by_key(exec::contains_subquery);
    }

    let inputs = q
        .from
        .iter()
        .zip(single)
        .map(|(item, single)| match item {
            TableRef::Table { name, alias } => InputNode::Table {
                name: name.clone(),
                alias: alias.clone(),
                single,
            },
            TableRef::Subquery { query, alias } => InputNode::Derived {
                alias: alias.clone(),
                plan: Box::new(lower(query, db, kernel_on)),
                single,
            },
        })
        .collect();

    GeneralPlan {
        inputs,
        edges,
        post,
        aggregated: !q.group_by.is_empty() || exec::select_has_aggregates(q),
    }
}

/// The fusion rule: a single-table aggregation with no subqueries anywhere
/// and every expression compilable to a positional program collapses to
/// [`Shape::Fused`]. `None` means the shape stays on the general tree.
fn compile_fused(q: &Select, db: &Database) -> Option<FusedPlan> {
    if q.quantifier != SetQuantifier::All {
        return None;
    }
    let [TableRef::Table { name, alias }] = q.from.as_slice() else {
        return None;
    };
    // Aggregated single-table shape only; plain scans stay general.
    if q.group_by.is_empty() && !exec::select_has_aggregates(q) {
        return None;
    }
    if q.items.iter().any(|i| matches!(i, SelectItem::Wildcard)) {
        return None;
    }
    // No subqueries anywhere (selection, items, having, order by, ...).
    let mut has_subquery = false;
    apuama_sql::visit::walk_select_exprs(q, &mut |e| {
        if matches!(
            e,
            Expr::Exists { .. } | Expr::InSubquery { .. } | Expr::ScalarSubquery(_)
        ) {
            has_subquery = true;
        }
    });
    if has_subquery {
        return None;
    }

    let table = db.table(name)?;
    let bindings = exec::bindings_for_table(&table.schema, alias.as_deref());
    let binding_name = alias.clone().unwrap_or_else(|| name.clone());

    // Classify WHERE conjuncts the way the general lowering does:
    // table-bound ones feed the access-path choice, binding-free ones
    // become post-filters.
    let catalog = db.catalog();
    let scopes = planner::scopes_for_from(&q.from, catalog);
    let mut single: Vec<Expr> = Vec::new();
    let mut post: Vec<Expr> = Vec::new();
    for c in eval::split_conjuncts(q.selection.as_ref()) {
        let refs = planner::conjunct_bindings(&c, &scopes, catalog);
        if refs.len() == 1 && refs.contains(&scopes[0].name) {
            single.push(c);
        } else if refs.is_empty() {
            post.push(c);
        } else {
            // A conjunct resolving outside the one scope means correlation
            // or a planner corner the general tree should handle.
            return None;
        }
    }

    let compiled_single = single
        .iter()
        .map(|c| eval::compile_expr(c, &bindings))
        .collect::<Option<Vec<_>>>()?;
    let compiled_post = post
        .iter()
        .map(|c| eval::compile_expr(c, &bindings))
        .collect::<Option<Vec<_>>>()?;
    let group_by = q
        .group_by
        .iter()
        .map(|g| eval::compile_expr(g, &bindings))
        .collect::<Option<Vec<_>>>()?;
    let specs = exec::collect_agg_specs(q);
    let agg_args = specs
        .iter()
        .map(|s| match (&s.arg, s.star) {
            (_, true) | (None, _) => Some(None),
            (Some(a), false) => eval::compile_expr(a, &bindings).map(Some),
        })
        .collect::<Option<Vec<_>>>()?;

    Some(FusedPlan {
        table: name.clone(),
        binding_name,
        bindings,
        single,
        compiled_single,
        compiled_post,
        specs,
        agg_args,
        group_by,
    })
}

// ---------------------------------------------------------------------------
// Operator contract
// ---------------------------------------------------------------------------

/// Rows of one batch: owned (a breaker's materialized output, or the
/// legacy row-at-a-time mode's cloned scan output) or borrowed straight
/// out of a table heap — the batch-exec fast path's form, which is what
/// eliminates the seed interpreter's per-row `row.clone()` on the scan
/// path.
pub(crate) enum BatchRows<'e> {
    Owned(Vec<Row>),
    Borrowed(Vec<&'e Row>),
}

impl<'e> BatchRows<'e> {
    fn len(&self) -> usize {
        match self {
            BatchRows::Owned(v) => v.len(),
            BatchRows::Borrowed(v) => v.len(),
        }
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn iter(&self) -> BatchRowsIter<'_, 'e> {
        match self {
            BatchRows::Owned(v) => BatchRowsIter::Owned(v.iter()),
            BatchRows::Borrowed(v) => BatchRowsIter::Borrowed(v.iter()),
        }
    }

    /// Materializes the batch, cloning only when the rows were borrowed
    /// (exactly the clone the legacy scan path would have paid up front).
    fn into_owned(self) -> Vec<Row> {
        match self {
            BatchRows::Owned(v) => v,
            BatchRows::Borrowed(v) => v.into_iter().cloned().collect(),
        }
    }
}

enum BatchRowsIter<'a, 'e> {
    Owned(std::slice::Iter<'a, Row>),
    Borrowed(std::slice::Iter<'a, &'e Row>),
}

impl<'a> Iterator for BatchRowsIter<'a, '_> {
    type Item = &'a Row;
    fn next(&mut self) -> Option<&'a Row> {
        match self {
            BatchRowsIter::Owned(it) => it.next(),
            BatchRowsIter::Borrowed(it) => it.next().map(|r| &**r),
        }
    }
}

/// A batch of rows flowing between operators, with the ORDER BY sort keys
/// computed alongside them. `keys` is row-parallel above the projection
/// stage and empty below it.
pub(crate) struct RowBatch<'e> {
    rows: BatchRows<'e>,
    keys: Vec<Vec<Value>>,
}

impl<'e> RowBatch<'e> {
    fn owned(rows: Vec<Row>, keys: Vec<Vec<Value>>) -> Self {
        RowBatch {
            rows: BatchRows::Owned(rows),
            keys,
        }
    }

    fn borrowed(rows: Vec<&'e Row>) -> Self {
        RowBatch {
            rows: BatchRows::Borrowed(rows),
            keys: Vec::new(),
        }
    }
}

/// The batch-at-a-time operator contract. `open` is called exactly once,
/// before the first `next_batch`, and returns the operator's output
/// bindings; `next_batch` returns a non-empty batch or `None` once the
/// stream is exhausted. The `'e` lifetime lets scans hand rows out of the
/// table heap by reference instead of cloning them per row.
trait Operator<'e> {
    fn open(&mut self) -> EngineResult<Vec<Binding>>;
    fn next_batch(&mut self) -> EngineResult<Option<RowBatch<'e>>>;
}

/// Executes a lowered plan, draining the operator tree into a materialized
/// relation (the statement boundary — results cross the network whole).
pub(crate) fn execute(
    plan: &PhysicalPlan,
    outer: &[Frame<'_>],
    ctx: &ExecContext<'_>,
) -> EngineResult<Relation> {
    execute_shape(&plan.select, &plan.shape, outer, ctx)
}

pub(crate) fn execute_shape<'e>(
    q: &'e Select,
    shape: &'e Shape,
    outer: &'e [Frame<'e>],
    ctx: &'e ExecContext<'e>,
) -> EngineResult<Relation> {
    let (mut root, _) = build_tree(q, shape, outer, ctx, None);
    let bindings = root.open()?;
    let mut rows = Vec::new();
    while let Some(batch) = root.next_batch()? {
        ctx.check_interrupt()?;
        rows.extend(batch.rows.into_owned());
    }
    Ok(Relation { bindings, rows })
}

/// Wraps a freshly built operator in a timing probe when an `EXPLAIN
/// ANALYZE` collector is active; otherwise passes it through untouched.
fn instrument<'e>(
    az: Option<&'e Analyze>,
    op: Box<dyn Operator<'e> + 'e>,
    label: String,
    children: Vec<usize>,
) -> (Box<dyn Operator<'e> + 'e>, Option<usize>) {
    match az {
        None => (op, None),
        Some(a) => {
            let idx = a.register(label, children);
            (
                Box::new(TimedExec {
                    inner: op,
                    az: a,
                    idx,
                }),
                Some(idx),
            )
        }
    }
}

/// Assembles the operator tree for one shape: the source block (fused
/// pipeline, streamed single scan, or materializing join), the projection
/// or aggregation stage, then the uniform DISTINCT → Sort → Limit tail.
/// With `az` set, every operator is wrapped in a [`TimedExec`] probe and
/// the returned index identifies the root's probe node.
fn build_tree<'e>(
    q: &'e Select,
    shape: &'e Shape,
    outer: &'e [Frame<'e>],
    ctx: &'e ExecContext<'e>,
    az: Option<&'e Analyze>,
) -> (Box<dyn Operator<'e> + 'e>, Option<usize>) {
    let batch = ctx.db.batch_exec_enabled();
    let workers = ctx.db.parallel_workers();
    let (mut op, mut idx) = match shape {
        Shape::Fused(f) => {
            // DISTINCT accumulators cannot be merged across partials and
            // correlated frames cannot cross threads; both fall back to the
            // serial fused kernel.
            if workers >= 2 && outer.is_empty() && !f.specs.iter().any(|s| s.distinct) {
                // Register up front (like the join block) so worker
                // breakdowns can attach as children from run().
                let pidx = az.map(|a| {
                    a.register(
                        format!(
                            "fused aggregate over {} [parallel ×{workers}]",
                            f.binding_name
                        ),
                        Vec::new(),
                    )
                });
                let op: Box<dyn Operator<'e> + 'e> =
                    Box::new(ParallelFusedExec::new(q, f, outer, ctx, workers, az, pidx));
                match (az, pidx) {
                    (Some(a), Some(idx)) => (
                        Box::new(TimedExec {
                            inner: op,
                            az: a,
                            idx,
                        }) as Box<dyn Operator<'e> + 'e>,
                        Some(idx),
                    ),
                    _ => (op, None),
                }
            } else {
                instrument(
                    az,
                    Box::new(FusedExec::new(q, f, outer, ctx)),
                    format!("fused aggregate over {}", f.binding_name),
                    Vec::new(),
                )
            }
        }
        Shape::General(g) => {
            let (source, sidx) = build_source(g, outer, ctx, batch, az);
            let children: Vec<usize> = sidx.into_iter().collect();
            if g.aggregated {
                instrument(
                    az,
                    Box::new(AggregateExec::new(q, source, outer, ctx, batch)),
                    "aggregate".to_string(),
                    children,
                )
            } else {
                instrument(
                    az,
                    Box::new(ProjectExec::new(q, source, outer, ctx, batch)),
                    format!("project ({} column(s))", q.items.len()),
                    children,
                )
            }
        }
    };
    if q.quantifier == SetQuantifier::Distinct {
        (op, idx) = instrument(
            az,
            Box::new(DistinctExec::new(op, ctx)),
            "distinct".to_string(),
            idx.into_iter().collect(),
        );
    }
    if !q.order_by.is_empty() {
        (op, idx) = instrument(
            az,
            Box::new(SortExec::new(q, op, ctx)),
            format!("sort ({} key(s))", q.order_by.len()),
            idx.into_iter().collect(),
        );
    }
    if let Some(l) = q.limit {
        (op, idx) = instrument(
            az,
            Box::new(LimitExec::new(l, op, ctx)),
            format!("limit {l}"),
            idx.into_iter().collect(),
        );
    }
    (op, idx)
}

/// The source block under projection/aggregation. A single FROM item
/// streams through a `Filter`; several are materialized and joined by
/// `HashJoin` (the greedy join phase needs full cardinalities, exactly as
/// the interpreter did).
fn build_source<'e>(
    g: &'e GeneralPlan,
    outer: &'e [Frame<'e>],
    ctx: &'e ExecContext<'e>,
    batch: bool,
    az: Option<&'e Analyze>,
) -> (Box<dyn Operator<'e> + 'e>, Option<usize>) {
    if g.inputs.len() == 1 {
        let (base, bidx) = build_input(&g.inputs[0], outer, ctx, batch, az);
        // With one scope every post predicate is scope-free (single-scope
        // conjuncts were pushed into the scan), so all of them apply here.
        if g.post.is_empty() {
            (base, bidx)
        } else {
            let preds: Vec<Expr> = g.post.iter().map(|(e, _)| e.clone()).collect();
            let n = preds.len();
            instrument(
                az,
                Box::new(FilterExec::new(base, preds, outer, ctx, batch)),
                format!("filter ({n} predicate(s))"),
                bidx.into_iter().collect(),
            )
        }
    } else {
        // The join registers its probe node up front so it can attach its
        // input probes as children when it materializes them in open().
        let jidx = az.map(|a| a.register("hash join block (greedy order)".to_string(), Vec::new()));
        let op: Box<dyn Operator<'e> + 'e> = Box::new(JoinExec::new(g, outer, ctx, az, jidx));
        match (az, jidx) {
            (Some(a), Some(idx)) => (
                Box::new(TimedExec {
                    inner: op,
                    az: a,
                    idx,
                }),
                Some(idx),
            ),
            _ => (op, None),
        }
    }
}

fn build_input<'e>(
    node: &'e InputNode,
    outer: &'e [Frame<'e>],
    ctx: &'e ExecContext<'e>,
    batch: bool,
    az: Option<&'e Analyze>,
) -> (Box<dyn Operator<'e> + 'e>, Option<usize>) {
    match node {
        InputNode::Table {
            name,
            alias,
            single,
        } => {
            let workers = ctx.db.parallel_workers();
            // Subquery predicates need the coordinator's evaluation
            // context and correlated frames cannot cross threads; both
            // keep the serial scan.
            if workers >= 2
                && outer.is_empty()
                && single.iter().all(|e| !exec::contains_subquery(e))
            {
                let label = match alias {
                    Some(a) => format!("scan {name} as {a} [parallel ×{workers}]"),
                    None => format!("scan {name} [parallel ×{workers}]"),
                };
                let pidx = az.map(|a| a.register(label, Vec::new()));
                let op: Box<dyn Operator<'e> + 'e> = Box::new(ParallelScanExec::new(
                    name,
                    alias.as_deref(),
                    single,
                    outer,
                    ctx,
                    batch,
                    workers,
                    az,
                    pidx,
                ));
                match (az, pidx) {
                    (Some(a), Some(idx)) => (
                        Box::new(TimedExec {
                            inner: op,
                            az: a,
                            idx,
                        }) as Box<dyn Operator<'e> + 'e>,
                        Some(idx),
                    ),
                    _ => (op, None),
                }
            } else {
                instrument(
                    az,
                    Box::new(ScanExec::new(
                        name,
                        alias.as_deref(),
                        single,
                        outer,
                        ctx,
                        batch,
                    )),
                    match alias {
                        Some(a) => format!("scan {name} as {a}"),
                        None => format!("scan {name}"),
                    },
                    Vec::new(),
                )
            }
        }
        InputNode::Derived {
            alias,
            plan,
            single,
        } => instrument(
            az,
            Box::new(DerivedExec::new(alias, plan, single, outer, ctx)),
            format!("derived table {alias}"),
            Vec::new(),
        ),
    }
}

// ---------------------------------------------------------------------------
// Shared pieces
// ---------------------------------------------------------------------------

/// Re-emits a materialized row set (a pipeline breaker's output) in
/// [`exec::SCAN_BATCH_ROWS`]-row batches.
struct BatchEmitter {
    rows: std::vec::IntoIter<Row>,
    keys: std::vec::IntoIter<Vec<Value>>,
}

impl BatchEmitter {
    fn new(rows: Vec<Row>, keys: Vec<Vec<Value>>) -> Self {
        BatchEmitter {
            rows: rows.into_iter(),
            keys: keys.into_iter(),
        }
    }

    fn rows_only(rows: Vec<Row>) -> Self {
        Self::new(rows, Vec::new())
    }

    fn next<'e>(&mut self) -> Option<RowBatch<'e>> {
        let rows: Vec<Row> = self
            .rows
            .by_ref()
            .take(exec::SCAN_BATCH_ROWS as usize)
            .collect();
        if rows.is_empty() {
            return None;
        }
        let keys: Vec<Vec<Value>> = self.keys.by_ref().take(rows.len()).collect();
        Some(RowBatch::owned(rows, keys))
    }
}

/// A filter predicate, pre-resolved to positional form where possible.
/// Compilation succeeds exactly when every column resolves uniquely in the
/// operator's own bindings and no subquery appears — in which case the
/// compiled program is value- and error-identical to frame evaluation —
/// so falling back to `Framed` never changes semantics. The batch-exec
/// mode additionally specializes the hot `col <cmp> literal` shape to a
/// direct comparison (`FastCmp`), skipping the expression walk and its
/// per-operand `Value` clones.
enum ResidualPred {
    /// `col <op> lit`, normalized so the column is on the left. Semantics
    /// mirror [`eval::eval_binary_with`] for comparison operators: NULL on
    /// either side filters the row (three-valued logic), incomparable
    /// non-null operands are a type error with the same message.
    FastCmp {
        col: usize,
        op: BinOp,
        lit: Value,
    },
    Compiled(CompiledExpr),
    Framed(Expr),
}

impl ResidualPred {
    /// Re-sinks a compiled predicate into its fastest evaluable form.
    fn from_compiled(c: CompiledExpr) -> ResidualPred {
        if let CompiledExpr::Binary { left, op, right } = &c {
            if op.is_comparison() {
                match (left.as_ref(), right.as_ref()) {
                    (CompiledExpr::Col(i), CompiledExpr::Lit(v)) => {
                        return ResidualPred::FastCmp {
                            col: *i,
                            op: *op,
                            lit: v.clone(),
                        }
                    }
                    (CompiledExpr::Lit(v), CompiledExpr::Col(i)) => {
                        return ResidualPred::FastCmp {
                            col: *i,
                            op: flip_cmp(*op),
                            lit: v.clone(),
                        }
                    }
                    _ => {}
                }
            }
        }
        ResidualPred::Compiled(c)
    }
}

/// Mirror image of a comparison operator (`lit < col` ⇔ `col > lit`).
fn flip_cmp(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::LtEq => BinOp::GtEq,
        BinOp::Gt => BinOp::Lt,
        BinOp::GtEq => BinOp::LtEq,
        other => other, // Eq / NotEq are symmetric.
    }
}

fn cmp_matches(op: BinOp, ord: Ordering) -> bool {
    match op {
        BinOp::Eq => ord == Ordering::Equal,
        BinOp::NotEq => ord != Ordering::Equal,
        BinOp::Lt => ord == Ordering::Less,
        BinOp::LtEq => ord != Ordering::Greater,
        BinOp::Gt => ord == Ordering::Greater,
        BinOp::GtEq => ord != Ordering::Less,
        _ => unreachable!("FastCmp only built for comparison operators"),
    }
}

/// Legacy (row-at-a-time) predicate resolution: compiled where possible,
/// framed otherwise, parameters looked up per row — the seed interpreter's
/// cost profile.
fn resolve_preds(preds: &[Expr], bindings: &[Binding]) -> Vec<ResidualPred> {
    preds
        .iter()
        .map(|e| match eval::compile_expr(e, bindings) {
            Some(c) => ResidualPred::Compiled(c),
            None => ResidualPred::Framed(e.clone()),
        })
        .collect()
}

/// Batch-exec predicate resolution: bound parameters are folded into the
/// program once per execution and the `col <cmp> literal` shape is
/// specialized. Values and errors are identical to [`resolve_preds`]'
/// output; only the per-row cost differs.
fn resolve_preds_batch(
    preds: &[Expr],
    bindings: &[Binding],
    ctx: &ExecContext<'_>,
) -> Vec<ResidualPred> {
    preds
        .iter()
        .map(|e| match eval::compile_expr(e, bindings) {
            Some(c) => ResidualPred::from_compiled(eval::prebind_params(&c, ctx)),
            None => ResidualPred::Framed(e.clone()),
        })
        .collect()
}

/// One row through a conjunctive predicate list: `charge` is called before
/// each evaluation and the list short-circuits on the first non-true,
/// exactly like the interpreter's scan/filter loops. The caller chooses
/// whether charges land on the context per row (legacy mode) or in a local
/// counter flushed per batch (batch-exec mode) — totals are identical.
fn keep_row_charged(
    row: &Row,
    bindings: &[Binding],
    preds: &[ResidualPred],
    outer: &[Frame<'_>],
    ctx: &ExecContext<'_>,
    mut charge: impl FnMut(),
) -> EngineResult<bool> {
    let mut frames: Option<Vec<Frame<'_>>> = None;
    for pred in preds {
        charge();
        let keep = match pred {
            ResidualPred::FastCmp { col, op, lit } => {
                let v = &row[*col];
                if v.is_null() || lit.is_null() {
                    false // NULL comparison result is never true.
                } else {
                    match v.sql_cmp(lit) {
                        None => {
                            return Err(EngineError::TypeError(format!(
                                "cannot compare {v} with {lit}"
                            )))
                        }
                        Some(ord) => cmp_matches(*op, ord),
                    }
                }
            }
            ResidualPred::Compiled(c) => {
                truthiness(&eval::eval_compiled(c, row, ctx)?) == Some(true)
            }
            ResidualPred::Framed(e) => {
                let frames = frames.get_or_insert_with(|| {
                    let mut f = Vec::with_capacity(outer.len() + 1);
                    f.push(Frame { bindings, row });
                    f.extend_from_slice(outer);
                    f
                });
                truthiness(&eval_expr(e, frames, ctx)?) == Some(true)
            }
        };
        if !keep {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Legacy per-row form: `cpu_tuple_ops` bumped on the context before each
/// predicate evaluation.
fn keep_row(
    row: &Row,
    bindings: &[Binding],
    preds: &[ResidualPred],
    outer: &[Frame<'_>],
    ctx: &ExecContext<'_>,
) -> EngineResult<bool> {
    keep_row_charged(row, bindings, preds, outer, ctx, || ctx.bump_cpu(1))
}

// ---------------------------------------------------------------------------
// Zone-map page pruning
// ---------------------------------------------------------------------------

/// The `col <cmp> literal` residual conjuncts eligible for zone-map page
/// pruning on `table`: exactly the [`ResidualPred::FastCmp`] shape,
/// restricted to columns the heap keeps zone maps for. Extraction is
/// independent of the execution mode — it recompiles from the raw
/// expressions with bound parameters folded in — so every scan path
/// (legacy, batch-exec, fused kernel, DML) prunes the same pages and the
/// cross-mode counter identity holds.
fn zone_prune_preds(
    table: &Table,
    bindings: &[Binding],
    residual_exprs: &[&Expr],
    ctx: &ExecContext<'_>,
) -> Vec<(usize, BinOp, Value)> {
    let zone_cols = table.heap.zone_columns();
    if zone_cols.is_empty() {
        return Vec::new();
    }
    residual_exprs
        .iter()
        .filter_map(|e| {
            let c = eval::compile_expr(e, bindings)?;
            match ResidualPred::from_compiled(eval::prebind_params(&c, ctx)) {
                ResidualPred::FastCmp { col, op, lit } if zone_cols.contains(&col) => {
                    Some((col, op, lit))
                }
                _ => None,
            }
        })
        .collect()
}

/// Does `page`'s zone map prove no live row can satisfy `col <op> lit`?
///
/// Decisions mirror the row-level `FastCmp` semantics ([`Value::sql_cmp`]):
/// a NULL literal or an all-NULL page can never produce a `true`
/// comparison (NULL operands short-circuit to false before comparing), so
/// both always prune; an incomparable min or max means some row might
/// raise a type error, so the page is kept and row-level evaluation
/// surfaces the same error it always did. Comparable min/max bounds are
/// safe because [`Value::sort_cmp`]'s type ranks coincide with
/// `sql_cmp`'s comparability classes: if both bounds compare with the
/// literal, every value between them does too (NaN sorts above all floats
/// and is itself incomparable, so a page containing one is never pruned).
fn zone_page_refutes(
    heap: &apuama_storage::Heap,
    page: u64,
    preds: &[(usize, BinOp, Value)],
) -> bool {
    use apuama_storage::ZoneRange;
    preds.iter().any(|(col, op, lit)| {
        match heap.zone_range(*col, page) {
            None => false,
            Some(ZoneRange::Empty) => true,
            Some(ZoneRange::Range { min, max }) => {
                if lit.is_null() {
                    return true;
                }
                let (Some(lo), Some(hi)) = (min.sql_cmp(lit), max.sql_cmp(lit)) else {
                    return false;
                };
                match op {
                    BinOp::Eq => lo == Ordering::Greater || hi == Ordering::Less,
                    // Only refutable when the page holds a single value.
                    BinOp::NotEq => lo == Ordering::Equal && hi == Ordering::Equal,
                    BinOp::Lt => lo != Ordering::Less,
                    BinOp::LtEq => lo == Ordering::Greater,
                    BinOp::Gt => hi != Ordering::Greater,
                    BinOp::GtEq => hi == Ordering::Less,
                    _ => false,
                }
            }
        }
    })
}

/// Builds the heap iterator for a sequential scan, skipping — and counting
/// as `pages_pruned` — pages whose zone maps refute a residual conjunct.
/// Pruned pages are never iterated: no page charge, no `rows_scanned`.
pub(crate) fn seq_scan_iter<'e>(
    table: &'e Table,
    bindings: &[Binding],
    residual_exprs: &[&Expr],
    ctx: &ExecContext<'_>,
) -> Box<dyn Iterator<Item = (RowId, &'e Row)> + 'e> {
    let preds = zone_prune_preds(table, bindings, residual_exprs, ctx);
    if preds.is_empty() {
        return Box::new(table.heap.iter());
    }
    let mut allowed: Vec<u64> = Vec::new();
    let mut pruned = 0u64;
    for page in 0..table.heap.pages() {
        if zone_page_refutes(&table.heap, page, &preds) {
            pruned += 1;
        } else {
            allowed.push(page);
        }
    }
    ctx.bump_pages_pruned(pruned);
    let heap = &table.heap;
    let rpp = heap.geometry().rows_per_page;
    Box::new(
        allowed
            .into_iter()
            .flat_map(move |p| heap.iter_range(p * rpp, (p + 1) * rpp)),
    )
}

// ---------------------------------------------------------------------------
// Morsel-driven parallel scans (intra-node parallelism)
// ---------------------------------------------------------------------------

/// One morsel's row source: a slice of a sequential scan's page list or a
/// slice of an index range's row-id list. Morsels tile the scan in global
/// row order — concatenating their row streams in morsel-index order
/// reproduces the serial scan exactly.
enum MorselInput {
    Pages(Vec<u64>),
    Rids(Vec<RowId>),
}

/// The morsel decomposition of one base-table scan, planned without
/// charging any statistics so the caller can still fall back to the serial
/// operator (which does its own accounting). On commit the coordinator
/// applies `pages_pruned` / `index_probes` itself and replays the page
/// charges via [`precharge_morsel_pages`].
struct ScanMorsels<'e> {
    table: &'e Table,
    kind: AccessKind,
    morsels: Vec<MorselInput>,
    pages_pruned: u64,
    index_probes: u64,
}

/// Splits a scan into ~[`exec::SCAN_BATCH_ROWS`]-row morsels: page-aligned
/// chunks of the zone-allowed page list for sequential scans, row-id
/// slices for index ranges. Zone-map pruning is evaluated here with the
/// same predicates the serial path uses, so both modes skip — and count —
/// the same pages.
fn plan_scan_morsels<'e>(
    table: &'e Table,
    bindings: &[Binding],
    residual_exprs: &[&Expr],
    choice: &planner::ScanChoice,
    ctx: &ExecContext<'_>,
) -> ScanMorsels<'e> {
    match &choice.path {
        AccessPath::SeqScan => {
            let preds = zone_prune_preds(table, bindings, residual_exprs, ctx);
            let mut pages: Vec<u64> = Vec::new();
            let mut pruned = 0u64;
            for page in 0..table.heap.pages() {
                if !preds.is_empty() && zone_page_refutes(&table.heap, page, &preds) {
                    pruned += 1;
                } else {
                    pages.push(page);
                }
            }
            let rpp = table.heap.geometry().rows_per_page;
            let per = (exec::SCAN_BATCH_ROWS.div_ceil(rpp.max(1)).max(1)) as usize;
            ScanMorsels {
                table,
                kind: AccessKind::Sequential,
                morsels: pages
                    .chunks(per)
                    .map(|c| MorselInput::Pages(c.to_vec()))
                    .collect(),
                pages_pruned: pruned,
                index_probes: 0,
            }
        }
        AccessPath::IndexRange {
            column,
            low,
            high,
            clustered,
        } => {
            let idx = table
                .index_on(*column)
                .expect("planner only chooses existing indexes");
            let rids: Vec<RowId> = idx
                .range(exec::bound_ref(low), exec::bound_ref(high))
                .map(|(_, rid)| rid)
                .collect();
            ScanMorsels {
                table,
                kind: if *clustered {
                    AccessKind::Sequential
                } else {
                    AccessKind::Random
                },
                morsels: rids
                    .chunks(exec::SCAN_BATCH_ROWS as usize)
                    .map(|c| MorselInput::Rids(c.to_vec()))
                    .collect(),
                pages_pruned: 0,
                index_probes: 1,
            }
        }
    }
}

/// Replays the serial scan's buffer-pool traffic on the coordinator:
/// pages are touched in exactly the order and multiplicity the serial
/// operator produces — ascending page order for sequential scans, row-id
/// order for index ranges, one charge per page change, pages with no live
/// row skipped — so the LRU state and hit/miss counters after a parallel
/// scan are byte-identical to the serial ones. Workers never touch the
/// pool.
fn precharge_morsel_pages(sm: &ScanMorsels<'_>, ctx: &ExecContext<'_>) {
    let table = sm.table;
    let rpp = table.heap.geometry().rows_per_page;
    let mut last_page = u64::MAX;
    for m in &sm.morsels {
        match m {
            MorselInput::Pages(pages) => {
                for &p in pages {
                    let live = table
                        .heap
                        .iter_range(p * rpp, (p + 1) * rpp)
                        .next()
                        .is_some();
                    if live && p != last_page {
                        ctx.charge_page(table.schema.id, p, sm.kind);
                        last_page = p;
                    }
                }
            }
            MorselInput::Rids(rids) => {
                for &rid in rids {
                    if table.heap.get(rid).is_none() {
                        continue; // dead row ids cost nothing, as in the serial path
                    }
                    let p = table.heap.geometry().page_of(rid);
                    if p != last_page {
                        ctx.charge_page(table.schema.id, p, sm.kind);
                        last_page = p;
                    }
                }
            }
        }
    }
}

/// Iterates one morsel's live rows in scan order.
fn morsel_rows<'a>(table: &'a Table, m: &'a MorselInput) -> Box<dyn Iterator<Item = &'a Row> + 'a> {
    match m {
        MorselInput::Pages(pages) => {
            let heap = &table.heap;
            let rpp = heap.geometry().rows_per_page;
            Box::new(
                pages.iter().flat_map(move |&p| {
                    heap.iter_range(p * rpp, (p + 1) * rpp).map(|(_, row)| row)
                }),
            )
        }
        MorselInput::Rids(rids) => Box::new(rids.iter().filter_map(|&rid| table.heap.get(rid))),
    }
}

/// Per-worker execution tally, recorded as an `EXPLAIN ANALYZE` child
/// probe: rows scanned, morsels processed, wall-clock nanoseconds.
type WorkerTally = (u64, u64, u128);

/// Registers one child probe per worker under a parallel operator's
/// `[parallel ×N]` node, so `EXPLAIN ANALYZE` shows the per-worker
/// row/morsel/time breakdown.
fn record_worker_probes(az: Option<&Analyze>, probe: Option<usize>, tallies: &[WorkerTally]) {
    let (Some(az), Some(parent)) = (az, probe) else {
        return;
    };
    for (w, &(rows, morsels, nanos)) in tallies.iter().enumerate() {
        let child = az.register(format!("parallel worker {w}"), Vec::new());
        az.add_child(parent, child);
        az.record(child, rows, morsels, nanos);
    }
}

// ---------------------------------------------------------------------------
// Group table
// ---------------------------------------------------------------------------

/// One group-by key component program: a direct column read (no clone per
/// row) or a compiled expression evaluated into a per-row scratch slot.
enum KeyProg {
    Col(usize),
    Expr { expr: CompiledExpr, slot: usize },
}

/// Compiles group-by expressions into [`KeyProg`]s; `None` when any key
/// needs framed evaluation (the caller falls back to the legacy fold).
fn compile_key_progs(
    exprs: &[Expr],
    bindings: &[Binding],
    ctx: &ExecContext<'_>,
) -> Option<Vec<KeyProg>> {
    let mut progs = Vec::with_capacity(exprs.len());
    let mut slots = 0usize;
    for e in exprs {
        let c = eval::prebind_params(&eval::compile_expr(e, bindings)?, ctx);
        progs.push(match c {
            CompiledExpr::Col(i) => KeyProg::Col(i),
            other => {
                let slot = slots;
                slots += 1;
                KeyProg::Expr { expr: other, slot }
            }
        });
    }
    Some(progs)
}

/// Prebound [`KeyProg`]s from already-compiled group-by programs (the
/// fused plan carries those from lowering).
fn key_progs_from_compiled(exprs: &[CompiledExpr], ctx: &ExecContext<'_>) -> Vec<KeyProg> {
    let mut slots = 0usize;
    exprs
        .iter()
        .map(|c| match eval::prebind_params(c, ctx) {
            CompiledExpr::Col(i) => KeyProg::Col(i),
            other => {
                let slot = slots;
                slots += 1;
                KeyProg::Expr { expr: other, slot }
            }
        })
        .collect()
}

/// Evaluates the expression-valued key components into `scratch` (cleared
/// first); `Col` components are read straight from the row at lookup time.
fn eval_key_scratch(
    progs: &[KeyProg],
    row: &[Value],
    ctx: &ExecContext<'_>,
    scratch: &mut Vec<Value>,
) -> EngineResult<()> {
    scratch.clear();
    for p in progs {
        if let KeyProg::Expr { expr, .. } = p {
            scratch.push(eval::eval_compiled(expr, row, ctx)?);
        }
    }
    Ok(())
}

fn key_component<'a>(
    progs: &[KeyProg],
    i: usize,
    row: &'a [Value],
    scratch: &'a [Value],
) -> &'a Value {
    match &progs[i] {
        KeyProg::Col(c) => &row[*c],
        KeyProg::Expr { slot, .. } => &scratch[*slot],
    }
}

/// Hash-grouping table replacing `HashMap<Vec<HashableValue>, GroupState>`
/// on the hot aggregation paths: groups are matched by *borrowed* key
/// components (no per-row key `Vec` or `Value` clones — the key is cloned
/// exactly once, when its group is first seen) and states come out in
/// first-seen order, ready for [`exec::project_groups`]. Hashing uses the
/// same canonicalization as [`HashableValue`] and equality is
/// `sort_cmp == Equal` per component, so grouping is identical to the
/// legacy map (NULLs form one group, `1` and `1.0` share a group).
struct GroupTable {
    /// Canonical hash → indices into `keys`/`states` (collision list).
    index: HashMap<u64, Vec<u32>>,
    keys: Vec<Vec<Value>>,
    states: Vec<GroupState>,
}

impl GroupTable {
    fn new() -> Self {
        GroupTable {
            index: HashMap::new(),
            keys: Vec::new(),
            states: Vec::new(),
        }
    }

    fn find_or_insert(
        &mut self,
        progs: &[KeyProg],
        row: &[Value],
        scratch: &[Value],
        new_state: impl FnOnce() -> GroupState,
    ) -> &mut GroupState {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        for i in 0..progs.len() {
            hash_value(key_component(progs, i, row, scratch), &mut hasher);
        }
        let h = hasher.finish();
        if let Some(bucket) = self.index.get(&h) {
            for &gi in bucket {
                let stored = &self.keys[gi as usize];
                if stored.iter().enumerate().all(|(i, s)| {
                    s.sort_cmp(key_component(progs, i, row, scratch)) == Ordering::Equal
                }) {
                    return &mut self.states[gi as usize];
                }
            }
        }
        let gi = self.states.len() as u32;
        self.index.entry(h).or_default().push(gi);
        self.keys.push(
            (0..progs.len())
                .map(|i| key_component(progs, i, row, scratch).clone())
                .collect(),
        );
        self.states.push(new_state());
        self.states.last_mut().expect("just pushed")
    }

    /// The accumulated group states, in first-seen order.
    fn into_states(self) -> Vec<GroupState> {
        self.states
    }

    fn len(&self) -> usize {
        self.states.len()
    }
}

/// FNV-1a, the fused kernel's bucketing hash. Only bucket placement
/// depends on the hash — grouping equality is `sort_cmp` and output order
/// is first-seen — so the kernel is free to use a cheaper function than
/// the general table's SipHash.
struct FnvHasher(u64);

impl FnvHasher {
    fn new() -> Self {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for FnvHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// How many groups the fused kernel matches by linear scan before cutting
/// over to a hashed index.
const LINEAR_GROUPS_MAX: usize = 16;

/// The fused kernel's group table. Grouping semantics are identical to
/// [`GroupTable`] (equality is `sort_cmp == Equal` per component, states
/// come out in first-seen order), but the lookup is specialized for the
/// kernel's profile: the scan→filter→aggregate shape the fusion rule
/// accepts almost always has tiny group cardinality (TPC-H Q1 has four),
/// where a couple of direct comparisons beat hashing the key on every row.
/// The table runs hash-free until the group count outgrows
/// [`LINEAR_GROUPS_MAX`], then builds an FNV index once and probes it from
/// there on.
struct FusedGroups {
    keys: Vec<Vec<Value>>,
    states: Vec<GroupState>,
    /// FNV hash → group indices (collision list); `None` in the linear
    /// regime, built exactly once at cut-over.
    index: Option<HashMap<u64, Vec<u32>>>,
}

impl FusedGroups {
    fn new() -> Self {
        FusedGroups {
            keys: Vec::new(),
            states: Vec::new(),
            index: None,
        }
    }

    fn probe_hash(progs: &[KeyProg], row: &[Value], scratch: &[Value]) -> u64 {
        let mut hasher = FnvHasher::new();
        for i in 0..progs.len() {
            hash_value(key_component(progs, i, row, scratch), &mut hasher);
        }
        hasher.finish()
    }

    fn stored_hash(key: &[Value]) -> u64 {
        let mut hasher = FnvHasher::new();
        for v in key {
            hash_value(v, &mut hasher);
        }
        hasher.finish()
    }

    fn matches(stored: &[Value], progs: &[KeyProg], row: &[Value], scratch: &[Value]) -> bool {
        stored
            .iter()
            .enumerate()
            .all(|(i, s)| s.sort_cmp(key_component(progs, i, row, scratch)) == Ordering::Equal)
    }

    fn find_or_insert(
        &mut self,
        progs: &[KeyProg],
        row: &[Value],
        scratch: &[Value],
        new_state: impl FnOnce() -> GroupState,
    ) -> &mut GroupState {
        let gi = match &self.index {
            None => self
                .keys
                .iter()
                .position(|stored| Self::matches(stored, progs, row, scratch)),
            Some(index) => {
                let h = Self::probe_hash(progs, row, scratch);
                index.get(&h).and_then(|bucket| {
                    bucket
                        .iter()
                        .map(|&gi| gi as usize)
                        .find(|&gi| Self::matches(&self.keys[gi], progs, row, scratch))
                })
            }
        };
        if let Some(gi) = gi {
            return &mut self.states[gi];
        }
        let gi = self.states.len() as u32;
        self.keys.push(
            (0..progs.len())
                .map(|i| key_component(progs, i, row, scratch).clone())
                .collect(),
        );
        self.states.push(new_state());
        if let Some(index) = &mut self.index {
            let h = Self::stored_hash(&self.keys[gi as usize]);
            index.entry(h).or_default().push(gi);
        } else if self.keys.len() > LINEAR_GROUPS_MAX {
            // Cut over: index every group seen so far, once.
            let mut index: HashMap<u64, Vec<u32>> = HashMap::new();
            for (i, key) in self.keys.iter().enumerate() {
                index
                    .entry(Self::stored_hash(key))
                    .or_default()
                    .push(i as u32);
            }
            self.index = Some(index);
        }
        self.states.last_mut().expect("just pushed")
    }

    /// The accumulated group states, in first-seen order.
    fn into_states(self) -> Vec<GroupState> {
        self.states
    }

    fn len(&self) -> usize {
        self.states.len()
    }

    /// Folds another group table — one morsel's partial aggregate — into
    /// this one. The parallel coordinator calls this in morsel order, which
    /// preserves global first-seen group order: a group's first occurrence
    /// lives in the earliest morsel containing it, so it is either already
    /// present (keeping its earlier representative row) or appended here
    /// exactly when the serial scan would have created it. Lookup follows
    /// the same regime as [`Self::find_or_insert`] — linear `sort_cmp`
    /// matching until the cut-over, the FNV index after — and
    /// [`hash_value`] normalizes numerics, so hash and linear probes agree
    /// on which keys are equal.
    fn merge(&mut self, other: FusedGroups) {
        for (key, state) in other.keys.into_iter().zip(other.states) {
            let gi = {
                let matches_key = |stored: &[Value]| {
                    stored
                        .iter()
                        .zip(&key)
                        .all(|(s, k)| s.sort_cmp(k) == Ordering::Equal)
                };
                match &self.index {
                    None => self.keys.iter().position(|stored| matches_key(stored)),
                    Some(index) => index.get(&Self::stored_hash(&key)).and_then(|bucket| {
                        bucket
                            .iter()
                            .map(|&gi| gi as usize)
                            .find(|&gi| matches_key(&self.keys[gi]))
                    }),
                }
            };
            match gi {
                Some(gi) => {
                    for (acc, o) in self.states[gi].accs.iter_mut().zip(state.accs) {
                        acc.merge(o);
                    }
                }
                None => {
                    let gi = self.states.len() as u32;
                    self.keys.push(key);
                    self.states.push(state);
                    if let Some(index) = &mut self.index {
                        let h = Self::stored_hash(&self.keys[gi as usize]);
                        index.entry(h).or_default().push(gi);
                    } else if self.keys.len() > LINEAR_GROUPS_MAX {
                        let mut index: HashMap<u64, Vec<u32>> = HashMap::new();
                        for (i, key) in self.keys.iter().enumerate() {
                            index
                                .entry(Self::stored_hash(key))
                                .or_default()
                                .push(i as u32);
                        }
                        self.index = Some(index);
                    }
                }
            }
        }
    }
}

/// Keeps only rows satisfying every predicate (materialized form, used by
/// the join phase and derived tables).
fn filter_rows(
    rel: Relation,
    preds: &[Expr],
    outer: &[Frame<'_>],
    ctx: &ExecContext<'_>,
) -> EngineResult<Relation> {
    let bindings = rel.bindings;
    let mut rows = Vec::with_capacity(rel.rows.len());
    'rows: for row in rel.rows {
        let mut frames = Vec::with_capacity(outer.len() + 1);
        frames.push(Frame {
            bindings: &bindings,
            row: &row,
        });
        frames.extend_from_slice(outer);
        for p in preds {
            ctx.bump_cpu(1);
            if truthiness(&eval_expr(p, &frames, ctx)?) != Some(true) {
                continue 'rows;
            }
        }
        rows.push(row);
    }
    Ok(Relation { bindings, rows })
}

// ---------------------------------------------------------------------------
// Scan operators (SeqScan / IndexRangeScan)
// ---------------------------------------------------------------------------

enum ScanIter<'e> {
    Heap(Box<dyn Iterator<Item = (RowId, &'e Row)> + 'e>),
    /// Index ranges pre-collect their row ids (index traversal is
    /// charge-free); heap pages are still touched lazily, per batch, in
    /// range order — identical LRU traffic to the interpreter.
    Rids(std::vec::IntoIter<RowId>),
}

struct ScanState<'e> {
    table: &'e Table,
    iter: ScanIter<'e>,
    kind: AccessKind,
    last_page: u64,
    residual: Vec<ResidualPred>,
    scanned: BatchedCounter<'e, 'e>,
}

/// Base-table scan: chooses the access path at open (from the actual bound
/// parameter values), then streams surviving rows in batches.
struct ScanExec<'e> {
    name: &'e str,
    alias: Option<&'e str>,
    single: &'e [Expr],
    outer: &'e [Frame<'e>],
    ctx: &'e ExecContext<'e>,
    batch_mode: bool,
    bindings: Vec<Binding>,
    state: Option<ScanState<'e>>,
}

impl<'e> ScanExec<'e> {
    fn new(
        name: &'e str,
        alias: Option<&'e str>,
        single: &'e [Expr],
        outer: &'e [Frame<'e>],
        ctx: &'e ExecContext<'e>,
        batch_mode: bool,
    ) -> Self {
        ScanExec {
            name,
            alias,
            single,
            outer,
            ctx,
            batch_mode,
            bindings: Vec::new(),
            state: None,
        }
    }
}

impl<'e> Operator<'e> for ScanExec<'e> {
    fn open(&mut self) -> EngineResult<Vec<Binding>> {
        let ctx = self.ctx;
        let table = ctx
            .db
            .table(self.name)
            .ok_or_else(|| EngineError::UnknownTable(self.name.to_string()))?;
        let binding_name = self.alias.unwrap_or(self.name);
        let eval_const = |e: &Expr| -> Option<Value> {
            if exec::expr_has_columns(e) {
                None
            } else {
                eval_expr(e, &[], ctx).ok()
            }
        };
        let choice = planner::choose_access_path(
            table,
            binding_name,
            self.single,
            ctx.db.seqscan_enabled(),
            ctx.db.indexscan_enabled(),
            &eval_const,
        );
        let bindings = exec::bindings_for_table(&table.schema, self.alias);
        // Predicates consumed by the index range are implied by the scan
        // bounds; only the rest are re-checked per row.
        let residual_exprs: Vec<&Expr> = self
            .single
            .iter()
            .enumerate()
            .filter(|(i, _)| !choice.consumed.contains(i))
            .map(|(_, e)| e)
            .collect();
        let residual = residual_exprs
            .iter()
            .map(|e| match eval::compile_expr(e, &bindings) {
                Some(c) if self.batch_mode => {
                    ResidualPred::from_compiled(eval::prebind_params(&c, ctx))
                }
                Some(c) => ResidualPred::Compiled(c),
                None => ResidualPred::Framed((*e).clone()),
            })
            .collect();
        let (iter, kind) = match &choice.path {
            AccessPath::SeqScan => (
                ScanIter::Heap(seq_scan_iter(table, &bindings, &residual_exprs, ctx)),
                AccessKind::Sequential,
            ),
            AccessPath::IndexRange {
                column,
                low,
                high,
                clustered,
            } => {
                let idx = table
                    .index_on(*column)
                    .expect("planner only chooses existing indexes");
                ctx.bump_index_probes(1);
                let rids: Vec<RowId> = idx
                    .range(exec::bound_ref(low), exec::bound_ref(high))
                    .map(|(_, rid)| rid)
                    .collect();
                (
                    ScanIter::Rids(rids.into_iter()),
                    if *clustered {
                        AccessKind::Sequential
                    } else {
                        AccessKind::Random
                    },
                )
            }
        };
        self.state = Some(ScanState {
            table,
            iter,
            kind,
            last_page: u64::MAX,
            residual,
            scanned: BatchedCounter::new(ctx),
        });
        self.bindings = bindings;
        Ok(self.bindings.clone())
    }

    fn next_batch(&mut self) -> EngineResult<Option<RowBatch<'e>>> {
        self.ctx.check_interrupt()?;
        let Some(state) = self.state.as_mut() else {
            return Ok(None);
        };
        let ScanState {
            table,
            iter,
            kind,
            last_page,
            residual,
            scanned,
        } = state;
        if self.batch_mode {
            // Batch-exec path: survivors are *borrowed* from the heap —
            // no per-row clone — and cpu charges accumulate locally,
            // flushed to the context once per batch (totals identical).
            let mut rows: Vec<&'e Row> = Vec::new();
            let mut exhausted = false;
            let mut cpu = 0u64;
            loop {
                let fetched = match iter {
                    ScanIter::Heap(it) => it.next(),
                    ScanIter::Rids(it) => match it.next() {
                        None => None,
                        Some(rid) => match table.heap.get(rid) {
                            // A dead row id costs nothing, as in the interpreter.
                            None => continue,
                            Some(row) => Some((rid, row)),
                        },
                    },
                };
                let Some((rid, row)) = fetched else {
                    exhausted = true;
                    break;
                };
                let page = table.heap.geometry().page_of(rid);
                if page != *last_page {
                    self.ctx.charge_page(table.schema.id, page, *kind);
                    *last_page = page;
                }
                scanned.row_scanned();
                if residual.is_empty()
                    || keep_row_charged(
                        row,
                        &self.bindings,
                        residual,
                        self.outer,
                        self.ctx,
                        || cpu += 1,
                    )?
                {
                    rows.push(row);
                }
                if rows.len() as u64 == exec::SCAN_BATCH_ROWS {
                    break;
                }
            }
            self.ctx.bump_cpu(cpu);
            if exhausted {
                // Dropping the state flushes the batched row_scanned counter.
                self.state = None;
            }
            if rows.is_empty() {
                Ok(None)
            } else {
                Ok(Some(RowBatch::borrowed(rows)))
            }
        } else {
            // Legacy (seed-profile) path: rows cloned out of the heap,
            // cpu bumped on the shared context per predicate evaluation.
            let mut rows: Vec<Row> = Vec::new();
            let mut exhausted = false;
            loop {
                let fetched = match iter {
                    ScanIter::Heap(it) => it.next(),
                    ScanIter::Rids(it) => match it.next() {
                        None => None,
                        Some(rid) => match table.heap.get(rid) {
                            // A dead row id costs nothing, as in the interpreter.
                            None => continue,
                            Some(row) => Some((rid, row)),
                        },
                    },
                };
                let Some((rid, row)) = fetched else {
                    exhausted = true;
                    break;
                };
                let page = table.heap.geometry().page_of(rid);
                if page != *last_page {
                    self.ctx.charge_page(table.schema.id, page, *kind);
                    *last_page = page;
                }
                scanned.row_scanned();
                if residual.is_empty()
                    || keep_row(row, &self.bindings, residual, self.outer, self.ctx)?
                {
                    rows.push(row.clone());
                }
                if rows.len() as u64 == exec::SCAN_BATCH_ROWS {
                    break;
                }
            }
            if exhausted {
                // Dropping the state flushes the batched row_scanned counter.
                self.state = None;
            }
            if rows.is_empty() {
                Ok(None)
            } else {
                Ok(Some(RowBatch::owned(rows, Vec::new())))
            }
        }
    }
}

/// A planned-and-committed parallel scan, produced by
/// [`ParallelScanExec::open`] when the scan is wide enough to split.
struct PreparedScan<'e> {
    sm: ScanMorsels<'e>,
    residual: Vec<ResidualPred>,
    bindings: Vec<Binding>,
}

/// Morsel-driven parallel base-table scan: workers pull morsels, filter
/// rows against the pushed-down conjuncts, and clone survivors; the
/// coordinator replays the serial page-charge sequence, sums the workers'
/// counter tallies, and re-emits the survivors in morsel order as owned
/// [`exec::SCAN_BATCH_ROWS`]-row batches — the same row stream, batch
/// boundaries, and statistics the serial [`ScanExec`] produces. Safe under
/// joins and streaming operators because non-breaker operators never touch
/// heap pages and every subquery-evaluating operator is a pipeline breaker
/// (the build layer only chooses this operator when the scan's own
/// conjuncts are subquery-free and compile positionally).
///
/// Holds the serial [`ScanExec`] and delegates to it whenever the parallel
/// decomposition is not viable (residual needs frame evaluation, or fewer
/// than two morsels), so planner errors and small-table behavior are
/// untouched.
struct ParallelScanExec<'e> {
    inner: ScanExec<'e>,
    workers: usize,
    az: Option<&'e Analyze>,
    probe: Option<usize>,
    prepared: Option<PreparedScan<'e>>,
    emitter: Option<BatchEmitter>,
}

impl<'e> ParallelScanExec<'e> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        name: &'e str,
        alias: Option<&'e str>,
        single: &'e [Expr],
        outer: &'e [Frame<'e>],
        ctx: &'e ExecContext<'e>,
        batch_mode: bool,
        workers: usize,
        az: Option<&'e Analyze>,
        probe: Option<usize>,
    ) -> Self {
        ParallelScanExec {
            inner: ScanExec::new(name, alias, single, outer, ctx, batch_mode),
            workers,
            az,
            probe,
            prepared: None,
            emitter: None,
        }
    }

    fn run_parallel(&self, prep: PreparedScan<'e>) -> EngineResult<BatchEmitter> {
        let ctx = self.inner.ctx;
        let sm = prep.sm;
        let n_morsels = sm.morsels.len();
        // Commit the decomposition's accounting and replay the serial
        // page-touch sequence before any worker runs.
        ctx.bump_pages_pruned(sm.pages_pruned);
        ctx.bump_index_probes(sm.index_probes);
        precharge_morsel_pages(&sm, ctx);

        let next = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        type MorselOut = (Vec<Row>, u64, u64); // survivors, rows scanned, cpu
        let results: Mutex<Vec<Option<EngineResult<MorselOut>>>> =
            Mutex::new((0..n_morsels).map(|_| None).collect());
        let tallies: Mutex<Vec<WorkerTally>> = Mutex::new(vec![(0, 0, 0); self.workers]);
        let db = ctx.db;
        let params = ctx.params_snapshot();
        let width = prep.bindings.len();

        let pool = db.worker_pool(self.workers);
        let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(self.workers);
        for w in 0..self.workers {
            let params = params.clone();
            let gov = ctx.child_governor();
            let (next, abort, results, tallies) = (&next, &abort, &results, &tallies);
            let (sm, residual, bindings) = (&sm, &prep.residual, &prep.bindings);
            tasks.push(Box::new(move || {
                let start = Instant::now();
                let wctx = ExecContext::governed(db, params, gov);
                let (mut wrows, mut wmorsels) = (0u64, 0u64);
                loop {
                    let i = next.fetch_add(1, AtomicOrd::Relaxed);
                    if i >= n_morsels || abort.load(AtomicOrd::Relaxed) {
                        break;
                    }
                    let r: EngineResult<MorselOut> = (|| {
                        wctx.check_interrupt()?;
                        let mut out: Vec<Row> = Vec::new();
                        let (mut scanned, mut cpu) = (0u64, 0u64);
                        for row in morsel_rows(sm.table, &sm.morsels[i]) {
                            scanned += 1;
                            if residual.is_empty()
                                || keep_row_charged(row, bindings, residual, &[], &wctx, || {
                                    cpu += 1
                                })?
                            {
                                out.push(row.clone());
                            }
                        }
                        // Transient survivor materialization, released when
                        // this worker's context drops.
                        wctx.charge_mem(exec::approx_state_bytes(out.len() as u64, width))?;
                        Ok((out, scanned, cpu))
                    })();
                    let failed = r.is_err();
                    if let Ok((_, scanned, _)) = &r {
                        wrows += scanned;
                    }
                    wmorsels += 1;
                    results.lock()[i] = Some(r);
                    if failed {
                        abort.store(true, AtomicOrd::Relaxed);
                    }
                }
                tallies.lock()[w] = (wrows, wmorsels, start.elapsed().as_nanos());
            }));
        }
        pool.scoped_run(tasks);

        // Morsel-order merge; see ParallelFusedExec::run for why the first
        // non-Ok slot is the earliest failure in scan order.
        let mut rows: Vec<Row> = Vec::new();
        let (mut total_scanned, mut total_cpu) = (0u64, 0u64);
        for slot in results.into_inner() {
            ctx.check_interrupt()?;
            match slot {
                Some(Ok((out, scanned, cpu))) => {
                    total_scanned += scanned;
                    total_cpu += cpu;
                    rows.extend(out);
                }
                Some(Err(e)) => return Err(e),
                None => unreachable!("abandoned morsel precedes the slot that aborted it"),
            }
        }
        ctx.bump_rows_scanned(total_scanned);
        ctx.bump_scan_batches(total_scanned.div_ceil(exec::SCAN_BATCH_ROWS));
        ctx.bump_cpu(total_cpu);
        record_worker_probes(self.az, self.probe, &tallies.into_inner());
        Ok(BatchEmitter::rows_only(rows))
    }
}

impl<'e> Operator<'e> for ParallelScanExec<'e> {
    fn open(&mut self) -> EngineResult<Vec<Binding>> {
        let ctx = self.inner.ctx;
        let table = ctx
            .db
            .table(self.inner.name)
            .ok_or_else(|| EngineError::UnknownTable(self.inner.name.to_string()))?;
        let binding_name = self.inner.alias.unwrap_or(self.inner.name);
        let eval_const = |e: &Expr| -> Option<Value> {
            if exec::expr_has_columns(e) {
                None
            } else {
                eval_expr(e, &[], ctx).ok()
            }
        };
        let choice = planner::choose_access_path(
            table,
            binding_name,
            self.inner.single,
            ctx.db.seqscan_enabled(),
            ctx.db.indexscan_enabled(),
            &eval_const,
        );
        let bindings = exec::bindings_for_table(&table.schema, self.inner.alias);
        let residual_exprs: Vec<&Expr> = self
            .inner
            .single
            .iter()
            .enumerate()
            .filter(|(i, _)| !choice.consumed.contains(i))
            .map(|(_, e)| e)
            .collect();
        // Parallel workers evaluate predicates positionally; results and
        // cpu charges are identical to both serial modes (one charge per
        // evaluation, same values, same errors). A residual that needs
        // frame evaluation falls back to the serial operator.
        let residual: Option<Vec<ResidualPred>> = residual_exprs
            .iter()
            .map(|e| {
                eval::compile_expr(e, &bindings)
                    .map(|c| ResidualPred::from_compiled(eval::prebind_params(&c, ctx)))
            })
            .collect();
        if let Some(residual) = residual {
            let sm = plan_scan_morsels(table, &bindings, &residual_exprs, &choice, ctx);
            if sm.morsels.len() >= 2 {
                self.prepared = Some(PreparedScan {
                    sm,
                    residual,
                    bindings: bindings.clone(),
                });
                return Ok(bindings);
            }
        }
        self.inner.open()
    }

    fn next_batch(&mut self) -> EngineResult<Option<RowBatch<'e>>> {
        if let Some(prep) = self.prepared.take() {
            self.inner.ctx.check_interrupt()?;
            self.emitter = Some(self.run_parallel(prep)?);
        }
        match &mut self.emitter {
            Some(em) => Ok(em.next()),
            None => self.inner.next_batch(),
        }
    }
}

/// Derived table (FROM subquery): executes the lowered inner plan — a
/// pipeline breaker by construction — requalifies its bindings to the
/// alias, applies the pushed-down conjuncts, and re-emits batches.
struct DerivedExec<'e> {
    alias: &'e str,
    plan: &'e PhysicalPlan,
    single: &'e [Expr],
    outer: &'e [Frame<'e>],
    ctx: &'e ExecContext<'e>,
    emitter: Option<BatchEmitter>,
}

impl<'e> DerivedExec<'e> {
    fn new(
        alias: &'e str,
        plan: &'e PhysicalPlan,
        single: &'e [Expr],
        outer: &'e [Frame<'e>],
        ctx: &'e ExecContext<'e>,
    ) -> Self {
        DerivedExec {
            alias,
            plan,
            single,
            outer,
            ctx,
            emitter: None,
        }
    }
}

impl<'e> Operator<'e> for DerivedExec<'e> {
    fn open(&mut self) -> EngineResult<Vec<Binding>> {
        let mut rel = execute(self.plan, self.outer, self.ctx)?;
        for b in &mut rel.bindings {
            b.qualifier = Some(self.alias.to_string());
        }
        if !self.single.is_empty() {
            rel = filter_rows(rel, self.single, self.outer, self.ctx)?;
        }
        let Relation { bindings, rows } = rel;
        self.emitter = Some(BatchEmitter::rows_only(rows));
        Ok(bindings)
    }

    fn next_batch(&mut self) -> EngineResult<Option<RowBatch<'e>>> {
        Ok(self.emitter.as_mut().and_then(BatchEmitter::next))
    }
}

// ---------------------------------------------------------------------------
// Filter
// ---------------------------------------------------------------------------

/// Streaming conjunctive filter. Subquery-bearing predicates make it a
/// pipeline breaker: the child is drained first, then filtered in order,
/// so the subqueries' page touches land after the child's — exactly the
/// interpreter's sequencing.
struct FilterExec<'e> {
    child: Box<dyn Operator<'e> + 'e>,
    preds: Vec<Expr>,
    breaker: bool,
    batch_mode: bool,
    outer: &'e [Frame<'e>],
    ctx: &'e ExecContext<'e>,
    in_bindings: Vec<Binding>,
    resolved: Vec<ResidualPred>,
    emitter: Option<BatchEmitter>,
}

impl<'e> FilterExec<'e> {
    fn new(
        child: Box<dyn Operator<'e> + 'e>,
        preds: Vec<Expr>,
        outer: &'e [Frame<'e>],
        ctx: &'e ExecContext<'e>,
        batch_mode: bool,
    ) -> Self {
        let breaker = preds.iter().any(exec::contains_subquery);
        FilterExec {
            child,
            preds,
            breaker,
            batch_mode,
            outer,
            ctx,
            in_bindings: Vec::new(),
            resolved: Vec::new(),
            emitter: None,
        }
    }

    /// Legacy per-row filtering over an owned batch, compacted in place —
    /// the batch's allocation flows through instead of a fresh output
    /// vector per batch.
    fn filter_batch(&self, mut rows: Vec<Row>) -> EngineResult<Vec<Row>> {
        let mut kept = 0;
        for i in 0..rows.len() {
            if keep_row(
                &rows[i],
                &self.in_bindings,
                &self.resolved,
                self.outer,
                self.ctx,
            )? {
                rows.swap(kept, i);
                kept += 1;
            }
        }
        rows.truncate(kept);
        Ok(rows)
    }

    /// Batch-exec filtering: preserves the batch's ownership (borrowed
    /// rows stay borrowed), compacts survivors into the batch's own
    /// allocation, and flushes cpu charges once per batch.
    fn filter_batch_fast(&self, rows: BatchRows<'e>) -> EngineResult<BatchRows<'e>> {
        let mut cpu = 0u64;
        let out = match rows {
            BatchRows::Owned(mut v) => {
                let mut kept = 0;
                for i in 0..v.len() {
                    if keep_row_charged(
                        &v[i],
                        &self.in_bindings,
                        &self.resolved,
                        self.outer,
                        self.ctx,
                        || cpu += 1,
                    )? {
                        v.swap(kept, i);
                        kept += 1;
                    }
                }
                v.truncate(kept);
                BatchRows::Owned(v)
            }
            BatchRows::Borrowed(mut v) => {
                let mut kept = 0;
                for i in 0..v.len() {
                    if keep_row_charged(
                        v[i],
                        &self.in_bindings,
                        &self.resolved,
                        self.outer,
                        self.ctx,
                        || cpu += 1,
                    )? {
                        v.swap(kept, i);
                        kept += 1;
                    }
                }
                v.truncate(kept);
                BatchRows::Borrowed(v)
            }
        };
        self.ctx.bump_cpu(cpu);
        Ok(out)
    }
}

impl<'e> Operator<'e> for FilterExec<'e> {
    fn open(&mut self) -> EngineResult<Vec<Binding>> {
        self.in_bindings = self.child.open()?;
        self.resolved = if self.batch_mode {
            resolve_preds_batch(&self.preds, &self.in_bindings, self.ctx)
        } else {
            resolve_preds(&self.preds, &self.in_bindings)
        };
        Ok(self.in_bindings.clone())
    }

    fn next_batch(&mut self) -> EngineResult<Option<RowBatch<'e>>> {
        if self.breaker {
            if self.emitter.is_none() {
                // Drain first (the subqueries' page touches must land
                // after the child's), then filter in order; borrowed rows
                // are cloned only when they survive.
                let mut batches: Vec<BatchRows<'e>> = Vec::new();
                while let Some(batch) = self.child.next_batch()? {
                    self.ctx.check_interrupt()?;
                    batches.push(batch.rows);
                }
                let mut kept: Vec<Row> = Vec::new();
                for b in batches {
                    match b {
                        BatchRows::Owned(v) => {
                            for row in v {
                                if keep_row(
                                    &row,
                                    &self.in_bindings,
                                    &self.resolved,
                                    self.outer,
                                    self.ctx,
                                )? {
                                    kept.push(row);
                                }
                            }
                        }
                        BatchRows::Borrowed(v) => {
                            for row in v {
                                if keep_row(
                                    row,
                                    &self.in_bindings,
                                    &self.resolved,
                                    self.outer,
                                    self.ctx,
                                )? {
                                    kept.push(row.clone());
                                }
                            }
                        }
                    }
                }
                self.emitter = Some(BatchEmitter::rows_only(kept));
            }
            return Ok(self.emitter.as_mut().and_then(BatchEmitter::next));
        }
        loop {
            self.ctx.check_interrupt()?;
            let Some(batch) = self.child.next_batch()? else {
                return Ok(None);
            };
            if self.batch_mode {
                let rows = self.filter_batch_fast(batch.rows)?;
                if !rows.is_empty() {
                    return Ok(Some(RowBatch {
                        rows,
                        keys: Vec::new(),
                    }));
                }
            } else {
                let rows = self.filter_batch(batch.rows.into_owned())?;
                if !rows.is_empty() {
                    return Ok(Some(RowBatch::owned(rows, Vec::new())));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// HashJoin
// ---------------------------------------------------------------------------

/// Multi-input join block: materializes every FROM item in order, then
/// runs the greedy join phase (largest input drives; each step picks the
/// connected input minimizing the classic output-cardinality estimate),
/// applying post-filters as soon as their scopes are bound.
struct JoinExec<'e> {
    general: &'e GeneralPlan,
    outer: &'e [Frame<'e>],
    ctx: &'e ExecContext<'e>,
    az: Option<&'e Analyze>,
    idx: Option<usize>,
    emitter: Option<BatchEmitter>,
}

impl<'e> JoinExec<'e> {
    fn new(
        general: &'e GeneralPlan,
        outer: &'e [Frame<'e>],
        ctx: &'e ExecContext<'e>,
        az: Option<&'e Analyze>,
        idx: Option<usize>,
    ) -> Self {
        JoinExec {
            general,
            outer,
            ctx,
            az,
            idx,
            emitter: None,
        }
    }
}

impl<'e> Operator<'e> for JoinExec<'e> {
    fn open(&mut self) -> EngineResult<Vec<Binding>> {
        let g = self.general;
        let (outer, ctx) = (self.outer, self.ctx);
        let batch_mode = ctx.db.batch_exec_enabled();
        let names: Vec<String> = g
            .inputs
            .iter()
            .map(|n| n.scope_name().to_string())
            .collect();

        // Materialize each FROM item, in FROM order. (Borrowed scan
        // batches are cloned here — the same clone the legacy scan path
        // paid per row, deferred to the materialization boundary.)
        let mut inputs: Vec<Relation> = Vec::with_capacity(g.inputs.len());
        for node in &g.inputs {
            let (mut op, cidx) = build_input(node, outer, ctx, batch_mode, self.az);
            if let (Some(a), Some(i), Some(ci)) = (self.az, self.idx, cidx) {
                a.add_child(i, ci);
            }
            let bindings = op.open()?;
            let mut rows = Vec::new();
            while let Some(batch) = op.next_batch()? {
                ctx.check_interrupt()?;
                // Join inputs are materialized in full: charge the build-
                // side growth against the memory budget at batch grain.
                ctx.charge_mem(exec::approx_state_bytes(
                    batch.rows.len() as u64,
                    bindings.len(),
                ))?;
                rows.extend(batch.rows.into_owned());
            }
            inputs.push(Relation { bindings, rows });
        }

        let mut post = g.post.clone();
        let mut current = if inputs.is_empty() {
            Relation {
                bindings: vec![],
                rows: vec![vec![]],
            }
        } else {
            let driving = inputs
                .iter()
                .enumerate()
                .max_by_key(|(_, r)| r.rows.len())
                .map(|(i, _)| i)
                .expect("inputs nonempty");
            let mut bound: Vec<usize> = vec![driving];
            // The driving input is never revisited: move it out instead of
            // cloning the whole relation.
            let mut current = std::mem::take(&mut inputs[driving]);
            current = apply_ready_post_filters(current, &mut post, &names, &bound, outer, ctx)?;
            while bound.len() < inputs.len() {
                let next = pick_next_input(
                    current.rows.len(),
                    &inputs,
                    &names,
                    &g.edges,
                    &bound,
                    outer,
                    ctx,
                );
                let next_rel = &inputs[next];
                let my_edges: Vec<&planner::JoinEdge> = g
                    .edges
                    .iter()
                    .filter(|e| {
                        let l_bound = bound.iter().any(|&b| names[b] == e.left);
                        let r_bound = bound.iter().any(|&b| names[b] == e.right);
                        (l_bound && e.right == names[next]) || (r_bound && e.left == names[next])
                    })
                    .collect();
                ctx.check_interrupt()?;
                current = if my_edges.is_empty() {
                    cross_join(current, next_rel, ctx)
                } else {
                    hash_join(
                        current,
                        next_rel,
                        &my_edges,
                        &names[next],
                        outer,
                        ctx,
                        batch_mode,
                    )?
                };
                // Each greedy join step materializes a fresh intermediate;
                // charge its size (a conservative running total — earlier
                // intermediates are freed but stay charged until the
                // statement completes).
                ctx.charge_mem(exec::approx_state_bytes(
                    current.rows.len() as u64,
                    current.bindings.len(),
                ))?;
                bound.push(next);
                current = apply_ready_post_filters(current, &mut post, &names, &bound, outer, ctx)?;
            }
            current
        };

        // Any post filters left reference nothing in FROM (constant or
        // purely correlated predicates): apply them row-wise now.
        if !post.is_empty() {
            let leftovers: Vec<Expr> = post.drain(..).map(|(e, _)| e).collect();
            current = filter_rows(current, &leftovers, outer, ctx)?;
        }

        let Relation { bindings, rows } = current;
        self.emitter = Some(BatchEmitter::rows_only(rows));
        Ok(bindings)
    }

    fn next_batch(&mut self) -> EngineResult<Option<RowBatch<'e>>> {
        Ok(self.emitter.as_mut().and_then(BatchEmitter::next))
    }
}

/// Picks the next FROM-item to join in: among inputs connected to the
/// current result by an equi-join edge, the one minimizing the classic
/// output-cardinality estimate `current × candidate / distinct(candidate
/// join keys)` — which keeps low-distinct edges (TPC-H's nation-key joins)
/// from exploding the intermediate result.
fn pick_next_input(
    current_rows: usize,
    inputs: &[Relation],
    names: &[String],
    edges: &[planner::JoinEdge],
    bound: &[usize],
    outer: &[Frame<'_>],
    ctx: &ExecContext<'_>,
) -> usize {
    let is_bound = |i: usize| bound.contains(&i);
    let candidate_edges = |i: usize| -> Vec<&planner::JoinEdge> {
        edges
            .iter()
            .filter(|e| {
                (e.left == names[i] && bound.iter().any(|&b| names[b] == e.right))
                    || (e.right == names[i] && bound.iter().any(|&b| names[b] == e.left))
            })
            .collect()
    };
    let mut best: Option<(usize, f64)> = None;
    for i in 0..inputs.len() {
        if is_bound(i) {
            continue;
        }
        let my_edges = candidate_edges(i);
        if my_edges.is_empty() {
            continue;
        }
        let distinct = distinct_join_keys(&inputs[i], &my_edges, &names[i], outer, ctx).max(1);
        let est = current_rows as f64 * inputs[i].rows.len() as f64 / distinct as f64;
        if best.is_none_or(|(_, b)| est < b) {
            best = Some((i, est));
        }
    }
    if let Some((b, _)) = best {
        return b;
    }
    // No connected input: fall back to the smallest unbound one (cross join).
    (0..inputs.len())
        .filter(|&i| !is_bound(i))
        .min_by_key(|&i| inputs[i].rows.len())
        .expect("caller ensures an unbound input exists")
}

/// Number of distinct composite join keys a candidate input exposes over
/// the given edges (evaluation errors degrade to "all distinct", which
/// simply keeps the old smallest-input heuristic).
fn distinct_join_keys(
    input: &Relation,
    edges: &[&planner::JoinEdge],
    my_name: &str,
    outer: &[Frame<'_>],
    ctx: &ExecContext<'_>,
) -> usize {
    let key_exprs: Vec<&Expr> = edges
        .iter()
        .map(|e| {
            if e.right == my_name {
                &e.right_expr
            } else {
                &e.left_expr
            }
        })
        .collect();
    let mut set: HashSet<Vec<HashableValue>> = HashSet::with_capacity(input.rows.len());
    for row in &input.rows {
        let mut frames = Vec::with_capacity(outer.len() + 1);
        frames.push(Frame {
            bindings: &input.bindings,
            row,
        });
        frames.extend_from_slice(outer);
        let mut key = Vec::with_capacity(key_exprs.len());
        let mut ok = true;
        for k in &key_exprs {
            match eval_expr(k, &frames, ctx) {
                Ok(v) => key.push(v.hash_key()),
                Err(_) => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            return input.rows.len();
        }
        set.insert(key);
    }
    set.len()
}

/// Computes one side's composite join key for a row; `None` when any key
/// component is NULL (NULL keys never match, per SQL semantics).
fn join_key(
    row: &Row,
    bindings: &[Binding],
    keys: &[&Expr],
    outer: &[Frame<'_>],
    ctx: &ExecContext<'_>,
) -> EngineResult<Option<Vec<HashableValue>>> {
    let mut frames = Vec::with_capacity(outer.len() + 1);
    frames.push(Frame { bindings, row });
    frames.extend_from_slice(outer);
    let mut key = Vec::with_capacity(keys.len());
    for k in keys {
        let v = eval_expr(k, &frames, ctx)?;
        if v.is_null() {
            return Ok(None);
        }
        key.push(v.hash_key());
    }
    Ok(Some(key))
}

/// Concatenates a probe row with a matched build row, cloning each value
/// exactly once into a right-sized output row (no intermediate clone of
/// the probe side).
fn splice(left: &Row, right: &Row) -> Row {
    let mut combined = Vec::with_capacity(left.len() + right.len());
    combined.extend_from_slice(left);
    combined.extend_from_slice(right);
    combined
}

/// One join side's key program: compiled column-resolved programs with
/// parameters prebound (batch-exec mode, when every key expression
/// compiles) or the framed expressions (legacy mode and fallback).
fn compile_join_side(
    keys: &[&Expr],
    bindings: &[Binding],
    ctx: &ExecContext<'_>,
) -> Option<Vec<CompiledExpr>> {
    keys.iter()
        .map(|k| eval::compile_expr(k, bindings).map(|c| eval::prebind_params(&c, ctx)))
        .collect()
}

/// Composite join key via whichever program is available; `None` when any
/// component is NULL, exactly like [`join_key`].
fn side_key(
    row: &Row,
    prog: &Option<Vec<CompiledExpr>>,
    keys: &[&Expr],
    bindings: &[Binding],
    outer: &[Frame<'_>],
    ctx: &ExecContext<'_>,
) -> EngineResult<Option<Vec<HashableValue>>> {
    match prog {
        Some(cs) => {
            let mut key = Vec::with_capacity(cs.len());
            for c in cs {
                let v = eval::eval_compiled(c, row, ctx)?;
                if v.is_null() {
                    return Ok(None);
                }
                key.push(v.hash_key());
            }
            Ok(Some(key))
        }
        None => join_key(row, bindings, keys, outer, ctx),
    }
}

/// Hash join of `current` with the newly added `right` input. The hash
/// table is built on whichever side is smaller; output rows are always
/// `current ++ right` columns, emitted current-major with right matches in
/// ascending right-row order — identical to always building on `right`.
/// In batch-exec mode the key expressions are compiled once per side and
/// cpu charges accumulate locally, flushed once at the end — same totals,
/// no per-row `RefCell` traffic or frame construction.
fn hash_join(
    current: Relation,
    right: &Relation,
    edges: &[&planner::JoinEdge],
    right_name: &str,
    outer: &[Frame<'_>],
    ctx: &ExecContext<'_>,
    batch_mode: bool,
) -> EngineResult<Relation> {
    // For each edge, which side belongs to the right input?
    let mut right_keys: Vec<&Expr> = Vec::with_capacity(edges.len());
    let mut left_keys: Vec<&Expr> = Vec::with_capacity(edges.len());
    for e in edges {
        if e.right == right_name {
            left_keys.push(&e.left_expr);
            right_keys.push(&e.right_expr);
        } else {
            left_keys.push(&e.right_expr);
            right_keys.push(&e.left_expr);
        }
    }
    let left_prog = if batch_mode {
        compile_join_side(&left_keys, &current.bindings, ctx)
    } else {
        None
    };
    let right_prog = if batch_mode {
        compile_join_side(&right_keys, &right.bindings, ctx)
    } else {
        None
    };
    let mut cpu = 0u64;
    let charge = |cpu: &mut u64| {
        if batch_mode {
            *cpu += 1;
        } else {
            ctx.bump_cpu(1);
        }
    };

    let mut bindings = current.bindings.clone();
    bindings.extend(right.bindings.iter().cloned());
    let mut rows = Vec::new();

    if current.rows.len() < right.rows.len() {
        // Build on `current` (the smaller side), probe with `right`. To
        // keep the output order current-major, matches are collected per
        // current row and emitted afterwards; probing in ascending right
        // order makes each match list ascending for free.
        let mut built: HashMap<Vec<HashableValue>, Vec<usize>> =
            HashMap::with_capacity(current.rows.len());
        for (i, row) in current.rows.iter().enumerate() {
            charge(&mut cpu);
            if let Some(key) = side_key(row, &left_prog, &left_keys, &current.bindings, outer, ctx)?
            {
                built.entry(key).or_default().push(i);
            }
        }
        let mut matches: Vec<Vec<usize>> = vec![Vec::new(); current.rows.len()];
        for (ri, row) in right.rows.iter().enumerate() {
            charge(&mut cpu);
            if let Some(key) = side_key(row, &right_prog, &right_keys, &right.bindings, outer, ctx)?
            {
                if let Some(hits) = built.get(&key) {
                    for &ci in hits {
                        matches[ci].push(ri);
                    }
                }
            }
        }
        for (row, right_rows) in current.rows.iter().zip(&matches) {
            for &ri in right_rows {
                charge(&mut cpu);
                rows.push(splice(row, &right.rows[ri]));
            }
        }
    } else {
        // Build on `right`, probe with `current`.
        let mut built: HashMap<Vec<HashableValue>, Vec<usize>> =
            HashMap::with_capacity(right.rows.len());
        for (i, row) in right.rows.iter().enumerate() {
            charge(&mut cpu);
            if let Some(key) = side_key(row, &right_prog, &right_keys, &right.bindings, outer, ctx)?
            {
                built.entry(key).or_default().push(i);
            }
        }
        for row in &current.rows {
            charge(&mut cpu);
            let Some(key) = side_key(row, &left_prog, &left_keys, &current.bindings, outer, ctx)?
            else {
                continue;
            };
            if let Some(matches) = built.get(&key) {
                for &ri in matches {
                    charge(&mut cpu);
                    rows.push(splice(row, &right.rows[ri]));
                }
            }
        }
    }
    ctx.bump_cpu(cpu);
    Ok(Relation { bindings, rows })
}

/// Cartesian product (only reached for disconnected FROM items, which the
/// TPC-H workload never produces but the engine stays total for).
fn cross_join(current: Relation, right: &Relation, ctx: &ExecContext<'_>) -> Relation {
    let mut bindings = current.bindings.clone();
    bindings.extend(right.bindings.iter().cloned());
    let mut rows = Vec::with_capacity(current.rows.len() * right.rows.len());
    for l in &current.rows {
        for r in &right.rows {
            ctx.bump_cpu(1);
            rows.push(splice(l, r));
        }
    }
    Relation { bindings, rows }
}

fn apply_ready_post_filters(
    current: Relation,
    post: &mut Vec<(Expr, Vec<String>)>,
    names: &[String],
    bound: &[usize],
    outer: &[Frame<'_>],
    ctx: &ExecContext<'_>,
) -> EngineResult<Relation> {
    let bound_names: Vec<&str> = bound.iter().map(|&b| names[b].as_str()).collect();
    let mut ready = Vec::new();
    post.retain(|(e, needs)| {
        if needs.iter().all(|n| bound_names.contains(&n.as_str())) {
            ready.push(e.clone());
            false
        } else {
            true
        }
    });
    if ready.is_empty() {
        Ok(current)
    } else {
        filter_rows(current, &ready, outer, ctx)
    }
}

// ---------------------------------------------------------------------------
// Project
// ---------------------------------------------------------------------------

/// Projects the SELECT list and computes ORDER BY keys per row. Streams
/// unless an item or ORDER BY expression contains a subquery. A pure
/// `SELECT *` moves each input row into the output instead of cloning its
/// values.
/// One SELECT item, pre-compiled for the batch-exec fast path.
enum ItemProg {
    Wildcard,
    Expr(CompiledExpr),
}

/// One ORDER BY key, pre-compiled: a position in the output row (the
/// bare-column-names-the-output rule of [`exec::sort_key_for_row`], which
/// takes precedence over input-scope resolution) or a compiled expression
/// over the input row.
enum OrderKeyProg {
    Output(usize),
    Expr(CompiledExpr),
}

struct ProjectExec<'e> {
    q: &'e Select,
    child: Box<dyn Operator<'e> + 'e>,
    outer: &'e [Frame<'e>],
    ctx: &'e ExecContext<'e>,
    breaker: bool,
    batch_mode: bool,
    wildcard_only: bool,
    in_bindings: Vec<Binding>,
    out_bindings: Vec<Binding>,
    out_names: Vec<String>,
    /// Compiled item + order-key programs; `Some` only in batch-exec mode
    /// when every expression compiles (else the framed path runs).
    progs: Option<(Vec<ItemProg>, Vec<OrderKeyProg>)>,
    emitter: Option<BatchEmitter>,
}

impl<'e> ProjectExec<'e> {
    fn new(
        q: &'e Select,
        child: Box<dyn Operator<'e> + 'e>,
        outer: &'e [Frame<'e>],
        ctx: &'e ExecContext<'e>,
        batch_mode: bool,
    ) -> Self {
        let item_subquery = q.items.iter().any(|i| match i {
            SelectItem::Expr { expr, .. } => exec::contains_subquery(expr),
            SelectItem::Wildcard => false,
        });
        let order_subquery = q.order_by.iter().any(|o| exec::contains_subquery(&o.expr));
        ProjectExec {
            q,
            child,
            outer,
            ctx,
            breaker: item_subquery || order_subquery,
            batch_mode,
            wildcard_only: matches!(q.items.as_slice(), [SelectItem::Wildcard]),
            in_bindings: Vec::new(),
            out_bindings: Vec::new(),
            out_names: Vec::new(),
            progs: None,
            emitter: None,
        }
    }

    /// Compiles every SELECT item and ORDER BY key into positional
    /// programs (parameters folded in); `None` when anything needs framed
    /// evaluation.
    fn compile_progs(&self) -> Option<(Vec<ItemProg>, Vec<OrderKeyProg>)> {
        let mut items = Vec::with_capacity(self.q.items.len());
        for item in &self.q.items {
            items.push(match item {
                SelectItem::Wildcard => ItemProg::Wildcard,
                SelectItem::Expr { expr, .. } => ItemProg::Expr(eval::prebind_params(
                    &eval::compile_expr(expr, &self.in_bindings)?,
                    self.ctx,
                )),
            });
        }
        let mut order = Vec::with_capacity(self.q.order_by.len());
        for o in &self.q.order_by {
            if let Expr::Column(c) = &o.expr {
                if c.table.is_none() {
                    if let Some(pos) = self.out_names.iter().position(|n| n == &c.column) {
                        order.push(OrderKeyProg::Output(pos));
                        continue;
                    }
                }
            }
            order.push(OrderKeyProg::Expr(eval::prebind_params(
                &eval::compile_expr(&o.expr, &self.in_bindings)?,
                self.ctx,
            )));
        }
        Some((items, order))
    }

    fn order_key(
        progs: &[OrderKeyProg],
        in_row: &[Value],
        out_row: &[Value],
        ctx: &ExecContext<'_>,
    ) -> EngineResult<Vec<Value>> {
        let mut key = Vec::with_capacity(progs.len());
        for p in progs {
            match p {
                OrderKeyProg::Output(pos) => key.push(out_row[*pos].clone()),
                OrderKeyProg::Expr(c) => key.push(eval::eval_compiled(c, in_row, ctx)?),
            }
        }
        Ok(key)
    }

    /// Batch-exec projection: one output row built per input row (no
    /// intermediate frame vectors), cpu flushed once per batch.
    fn project_batch_fast(
        &self,
        rows: BatchRows<'e>,
        items: &[ItemProg],
        order: &[OrderKeyProg],
    ) -> EngineResult<(Vec<Row>, Vec<Vec<Value>>)> {
        let mut cpu = 0u64;
        let mut out_rows = Vec::with_capacity(rows.len());
        let mut keys = Vec::with_capacity(rows.len());
        if self.wildcard_only {
            // `SELECT *`: the output row IS the input row — owned rows are
            // moved, borrowed rows cloned exactly once here.
            match rows {
                BatchRows::Owned(v) => {
                    for row in v {
                        cpu += 1;
                        keys.push(Self::order_key(order, &row, &row, self.ctx)?);
                        out_rows.push(row);
                    }
                }
                BatchRows::Borrowed(v) => {
                    for row in v {
                        cpu += 1;
                        keys.push(Self::order_key(order, row, row, self.ctx)?);
                        out_rows.push(row.clone());
                    }
                }
            }
        } else {
            for row in rows.iter() {
                cpu += 1;
                let mut out_row = Vec::with_capacity(self.out_bindings.len());
                for item in items {
                    match item {
                        ItemProg::Wildcard => out_row.extend(row.iter().cloned()),
                        ItemProg::Expr(c) => out_row.push(eval::eval_compiled(c, row, self.ctx)?),
                    }
                }
                keys.push(Self::order_key(order, row, &out_row, self.ctx)?);
                out_rows.push(out_row);
            }
        }
        self.ctx.bump_cpu(cpu);
        Ok((out_rows, keys))
    }

    fn project_batch(&self, in_rows: Vec<Row>) -> EngineResult<(Vec<Row>, Vec<Vec<Value>>)> {
        let names: Vec<&str> = self.out_names.iter().map(|s| s.as_str()).collect();
        let mut rows = Vec::with_capacity(in_rows.len());
        let mut keys = Vec::with_capacity(in_rows.len());
        for row in in_rows {
            self.ctx.bump_cpu(1);
            let mut frames = Vec::with_capacity(self.outer.len() + 1);
            frames.push(Frame {
                bindings: &self.in_bindings,
                row: &row,
            });
            frames.extend_from_slice(self.outer);
            if self.wildcard_only {
                // `SELECT *`: the output row IS the input row — compute the
                // sort key against it and move it, no per-value clone.
                let key = exec::sort_key_for_row(
                    &self.q.order_by,
                    &names,
                    &row,
                    &frames,
                    self.ctx,
                    None,
                )?;
                keys.push(key);
                drop(frames);
                rows.push(row);
            } else {
                let mut out_row = Vec::with_capacity(self.out_bindings.len());
                for item in &self.q.items {
                    match item {
                        SelectItem::Wildcard => out_row.extend(row.iter().cloned()),
                        SelectItem::Expr { expr, .. } => {
                            out_row.push(eval_expr(expr, &frames, self.ctx)?)
                        }
                    }
                }
                let key = exec::sort_key_for_row(
                    &self.q.order_by,
                    &names,
                    &out_row,
                    &frames,
                    self.ctx,
                    None,
                )?;
                keys.push(key);
                rows.push(out_row);
            }
        }
        Ok((rows, keys))
    }

    /// [`Self::project_batch`] over borrowed rows: the input row is cloned
    /// only when the select list actually re-emits it (a wildcard), never
    /// just to feed expression evaluation. Charges are identical.
    fn project_borrowed(&self, in_rows: &[&Row]) -> EngineResult<(Vec<Row>, Vec<Vec<Value>>)> {
        let names: Vec<&str> = self.out_names.iter().map(|s| s.as_str()).collect();
        let mut rows = Vec::with_capacity(in_rows.len());
        let mut keys = Vec::with_capacity(in_rows.len());
        for &row in in_rows {
            self.ctx.bump_cpu(1);
            let mut frames = Vec::with_capacity(self.outer.len() + 1);
            frames.push(Frame {
                bindings: &self.in_bindings,
                row,
            });
            frames.extend_from_slice(self.outer);
            if self.wildcard_only {
                let key =
                    exec::sort_key_for_row(&self.q.order_by, &names, row, &frames, self.ctx, None)?;
                keys.push(key);
                rows.push(row.clone());
            } else {
                let mut out_row = Vec::with_capacity(self.out_bindings.len());
                for item in &self.q.items {
                    match item {
                        SelectItem::Wildcard => out_row.extend(row.iter().cloned()),
                        SelectItem::Expr { expr, .. } => {
                            out_row.push(eval_expr(expr, &frames, self.ctx)?)
                        }
                    }
                }
                let key = exec::sort_key_for_row(
                    &self.q.order_by,
                    &names,
                    &out_row,
                    &frames,
                    self.ctx,
                    None,
                )?;
                keys.push(key);
                rows.push(out_row);
            }
        }
        Ok((rows, keys))
    }
}

impl<'e> Operator<'e> for ProjectExec<'e> {
    fn open(&mut self) -> EngineResult<Vec<Binding>> {
        self.in_bindings = self.child.open()?;
        self.out_bindings = exec::output_bindings(self.q, &self.in_bindings);
        self.out_names = self.out_bindings.iter().map(|b| b.name.clone()).collect();
        if self.batch_mode && !self.breaker {
            self.progs = self.compile_progs();
        }
        Ok(self.out_bindings.clone())
    }

    fn next_batch(&mut self) -> EngineResult<Option<RowBatch<'e>>> {
        if self.breaker {
            if self.emitter.is_none() {
                // Drain first, then project in order; borrowed batches are
                // projected by reference instead of being cloned wholesale.
                let mut batches: Vec<BatchRows<'e>> = Vec::new();
                while let Some(batch) = self.child.next_batch()? {
                    self.ctx.check_interrupt()?;
                    batches.push(batch.rows);
                }
                let mut rows = Vec::new();
                let mut keys = Vec::new();
                for b in batches {
                    let (mut r, mut k) = match b {
                        BatchRows::Owned(v) => self.project_batch(v)?,
                        BatchRows::Borrowed(v) => self.project_borrowed(&v)?,
                    };
                    rows.append(&mut r);
                    keys.append(&mut k);
                }
                self.emitter = Some(BatchEmitter::new(rows, keys));
            }
            return Ok(self.emitter.as_mut().and_then(BatchEmitter::next));
        }
        let Some(batch) = self.child.next_batch()? else {
            return Ok(None);
        };
        let (rows, keys) = match &self.progs {
            Some((items, order)) => self.project_batch_fast(batch.rows, items, order)?,
            None => self.project_batch(batch.rows.into_owned())?,
        };
        Ok(Some(RowBatch::owned(rows, keys)))
    }
}

// ---------------------------------------------------------------------------
// HashAggregate
// ---------------------------------------------------------------------------

/// Hash aggregation: folds input batches into group accumulators, then
/// finalizes through [`exec::project_groups`] (HAVING, the select-list
/// projection with aggregates substituted, ORDER BY keys). Folding streams
/// unless a group-by key or aggregate argument contains a subquery.
/// One aggregate argument, pre-compiled for the batch-exec fast fold:
/// `None` covers both `count(*)` and zero-argument aggregates.
enum AggArg {
    None,
    Expr(CompiledExpr),
}

struct AggregateExec<'e> {
    q: &'e Select,
    child: Box<dyn Operator<'e> + 'e>,
    outer: &'e [Frame<'e>],
    ctx: &'e ExecContext<'e>,
    breaker: bool,
    batch_mode: bool,
    specs: Vec<AggSpec>,
    in_bindings: Vec<Binding>,
    /// Compiled group-key + aggregate-argument programs; `Some` only in
    /// batch-exec mode when everything compiles (else the framed fold runs).
    progs: Option<(Vec<KeyProg>, Vec<AggArg>)>,
    emitter: Option<BatchEmitter>,
}

impl<'e> AggregateExec<'e> {
    fn new(
        q: &'e Select,
        child: Box<dyn Operator<'e> + 'e>,
        outer: &'e [Frame<'e>],
        ctx: &'e ExecContext<'e>,
        batch_mode: bool,
    ) -> Self {
        let specs = exec::collect_agg_specs(q);
        let breaker = q.group_by.iter().any(exec::contains_subquery)
            || specs
                .iter()
                .any(|s| s.arg.as_ref().is_some_and(exec::contains_subquery));
        AggregateExec {
            q,
            child,
            outer,
            ctx,
            breaker,
            batch_mode,
            specs,
            in_bindings: Vec::new(),
            progs: None,
            emitter: None,
        }
    }

    fn compile_agg_progs(&self) -> Option<(Vec<KeyProg>, Vec<AggArg>)> {
        let keys = compile_key_progs(&self.q.group_by, &self.in_bindings, self.ctx)?;
        let mut args = Vec::with_capacity(self.specs.len());
        for spec in &self.specs {
            args.push(match (&spec.arg, spec.star) {
                (_, true) | (None, _) => AggArg::None,
                (Some(arg), false) => AggArg::Expr(eval::prebind_params(
                    &eval::compile_expr(arg, &self.in_bindings)?,
                    self.ctx,
                )),
            });
        }
        Some((keys, args))
    }

    fn fold_row(
        &self,
        row: &Row,
        specs: &[AggSpec],
        groups: &mut HashMap<Vec<HashableValue>, GroupState>,
        order: &mut Vec<Vec<HashableValue>>,
    ) -> EngineResult<()> {
        self.ctx.bump_cpu(1);
        let mut frames = Vec::with_capacity(self.outer.len() + 1);
        frames.push(Frame {
            bindings: &self.in_bindings,
            row,
        });
        frames.extend_from_slice(self.outer);
        let mut key = Vec::with_capacity(self.q.group_by.len());
        for g in &self.q.group_by {
            key.push(eval_expr(g, &frames, self.ctx)?.hash_key());
        }
        let group = match groups.entry(key.clone()) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                order.push(key);
                e.insert(GroupState {
                    rep_row: row.clone(),
                    accs: specs.iter().map(Acc::new).collect(),
                })
            }
        };
        for (spec, acc) in specs.iter().zip(group.accs.iter_mut()) {
            let v = match (&spec.arg, spec.star) {
                (_, true) | (None, _) => None,
                (Some(arg), false) => Some(eval_expr(arg, &frames, self.ctx)?),
            };
            acc.update(v)?;
        }
        Ok(())
    }
}

impl<'e> Operator<'e> for AggregateExec<'e> {
    fn open(&mut self) -> EngineResult<Vec<Binding>> {
        self.in_bindings = self.child.open()?;
        if self.batch_mode && !self.breaker {
            self.progs = self.compile_agg_progs();
        }
        Ok(exec::output_bindings(self.q, &self.in_bindings))
    }

    fn next_batch(&mut self) -> EngineResult<Option<RowBatch<'e>>> {
        if self.emitter.is_none() {
            // Group-state growth is charged against the memory budget at
            // batch grain: one charge per batch covering the groups it
            // created (state width ≈ rep row + one accumulator per spec).
            let state_width = self.in_bindings.len() + self.specs.len();
            let mut charged_groups = 0u64;
            let states: Vec<GroupState> = if let Some((key_progs, arg_progs)) = &self.progs {
                // Batch-exec fold: positional key/argument programs over
                // borrowed rows, group lookup without key clones, cpu
                // flushed once per batch (one op per row, as legacy).
                let mut table = GroupTable::new();
                let mut scratch: Vec<Value> = Vec::new();
                while let Some(batch) = self.child.next_batch()? {
                    self.ctx.check_interrupt()?;
                    let mut cpu = 0u64;
                    for row in batch.rows.iter() {
                        cpu += 1;
                        eval_key_scratch(key_progs, row, self.ctx, &mut scratch)?;
                        let specs = &self.specs;
                        let group = table.find_or_insert(key_progs, row, &scratch, || GroupState {
                            rep_row: row.to_vec(),
                            accs: specs.iter().map(Acc::new).collect(),
                        });
                        for (prog, acc) in arg_progs.iter().zip(group.accs.iter_mut()) {
                            let v = match prog {
                                AggArg::None => None,
                                AggArg::Expr(c) => Some(eval::eval_compiled(c, row, self.ctx)?),
                            };
                            acc.update(v)?;
                        }
                    }
                    self.ctx.bump_cpu(cpu);
                    let groups = table.len() as u64;
                    self.ctx.charge_mem(exec::approx_state_bytes(
                        groups - charged_groups,
                        state_width,
                    ))?;
                    charged_groups = groups;
                }
                table.into_states()
            } else {
                let mut groups: HashMap<Vec<HashableValue>, GroupState> = HashMap::new();
                let mut order: Vec<Vec<HashableValue>> = Vec::new();
                if self.breaker {
                    // Drain first (subquery page touches land after the
                    // child's), then fold each row by reference — borrowed
                    // batches are never cloned just to be read once. The
                    // memory charges are unchanged: the buffered input is
                    // charged per batch as it arrives.
                    let mut batches: Vec<BatchRows<'e>> = Vec::new();
                    while let Some(batch) = self.child.next_batch()? {
                        self.ctx.check_interrupt()?;
                        self.ctx.charge_mem(exec::approx_state_bytes(
                            batch.rows.len() as u64,
                            self.in_bindings.len(),
                        ))?;
                        batches.push(batch.rows);
                    }
                    for b in &batches {
                        for row in b.iter() {
                            self.fold_row(row, &self.specs, &mut groups, &mut order)?;
                        }
                    }
                    self.ctx
                        .charge_mem(exec::approx_state_bytes(groups.len() as u64, state_width))?;
                } else {
                    while let Some(batch) = self.child.next_batch()? {
                        self.ctx.check_interrupt()?;
                        for row in batch.rows.iter() {
                            self.fold_row(row, &self.specs, &mut groups, &mut order)?;
                        }
                        let n = groups.len() as u64;
                        self.ctx.charge_mem(exec::approx_state_bytes(
                            n - charged_groups,
                            state_width,
                        ))?;
                        charged_groups = n;
                    }
                }
                order
                    .into_iter()
                    .map(|k| groups.remove(&k).expect("order tracks the map's keys"))
                    .collect()
            };
            let (rel, keys) = exec::project_groups(
                self.q,
                &self.in_bindings,
                &self.specs,
                states,
                self.outer,
                self.ctx,
            )?;
            self.emitter = Some(BatchEmitter::new(rel.rows, keys));
        }
        Ok(self.emitter.as_mut().and_then(BatchEmitter::next))
    }
}

// ---------------------------------------------------------------------------
// Fused scan→filter→aggregate
// ---------------------------------------------------------------------------

/// One aggregate input, pre-resolved: no per-row work for `count(*)`,
/// a direct positional read for plain-column arguments (the common
/// kernel case), a compiled program otherwise.
enum FusedArg {
    None,
    Col(usize),
    Expr(CompiledExpr),
}

/// Specializes the fused plan's aggregate-argument programs for one
/// execution (parameters folded in).
fn resolve_fused_args(plan: &FusedPlan, ctx: &ExecContext<'_>) -> Vec<FusedArg> {
    plan.agg_args
        .iter()
        .map(|a| match a.as_ref().map(|c| eval::prebind_params(c, ctx)) {
            None => FusedArg::None,
            Some(CompiledExpr::Col(i)) => FusedArg::Col(i),
            Some(other) => FusedArg::Expr(other),
        })
        .collect()
}

/// The fused plan's residual predicate programs: scan conjuncts the access
/// path didn't consume, then post predicates, in plan order, with bound
/// parameters folded in and `col <cmp> literal` sunk to direct
/// comparisons.
fn resolve_fused_preds(
    plan: &FusedPlan,
    choice: &planner::ScanChoice,
    ctx: &ExecContext<'_>,
) -> Vec<ResidualPred> {
    plan.compiled_single
        .iter()
        .enumerate()
        .filter(|(i, _)| !choice.consumed.contains(i))
        .map(|(_, c)| c)
        .chain(plan.compiled_post.iter())
        .map(|c| ResidualPred::from_compiled(eval::prebind_params(c, ctx)))
        .collect()
}

/// The fusion rule's executor: one pass over the base table in borrowed
/// [`exec::SCAN_BATCH_ROWS`]-row batches, predicates and aggregate updates
/// evaluated positionally against borrowed rows, statistics charged once
/// per batch. Finishes through the same [`exec::project_groups`] as the
/// general tree, which is what keeps the two shapes byte-identical.
struct FusedExec<'e> {
    q: &'e Select,
    plan: &'e FusedPlan,
    outer: &'e [Frame<'e>],
    ctx: &'e ExecContext<'e>,
    emitter: Option<BatchEmitter>,
}

impl<'e> FusedExec<'e> {
    fn new(
        q: &'e Select,
        plan: &'e FusedPlan,
        outer: &'e [Frame<'e>],
        ctx: &'e ExecContext<'e>,
    ) -> Self {
        FusedExec {
            q,
            plan,
            outer,
            ctx,
            emitter: None,
        }
    }

    fn run(&self) -> EngineResult<(Relation, Vec<Vec<Value>>)> {
        let (plan, ctx) = (self.plan, self.ctx);
        let table = ctx
            .db
            .table(&plan.table)
            .ok_or_else(|| EngineError::UnknownTable(plan.table.clone()))?;
        let eval_const = |e: &Expr| -> Option<Value> {
            if exec::expr_has_columns(e) {
                None
            } else {
                eval_expr(e, &[], ctx).ok()
            }
        };
        let choice = planner::choose_access_path(
            table,
            &plan.binding_name,
            &plan.single,
            ctx.db.seqscan_enabled(),
            ctx.db.indexscan_enabled(),
            &eval_const,
        );
        // All four compiled program sets are specialized once per
        // execution: parameters folded in, `col <cmp> literal` predicates
        // sunk to direct comparisons, group keys turned into positional
        // programs. Residual scan predicates run before post predicates,
        // in plan order, exactly as before.
        let preds = resolve_fused_preds(plan, &choice, ctx);
        let key_progs = key_progs_from_compiled(&plan.group_by, ctx);
        let agg_args = resolve_fused_args(plan, ctx);

        let mut table_groups = FusedGroups::new();
        let mut scratch: Vec<Value> = Vec::new();
        let state_width = plan.bindings.len() + plan.specs.len();
        let mut charged_groups = 0u64;

        // Folds one batch of borrowed rows: predicate pass, then
        // accumulator updates, with the statistics for the whole batch
        // charged in one go. Also the kernel's cancellation point and
        // memory-charge boundary.
        let mut fold_batch = |batch: &[&Row]| -> EngineResult<()> {
            ctx.check_interrupt()?;
            ctx.bump_rows_scanned(batch.len() as u64);
            ctx.bump_scan_batches(1);
            let mut cpu = 0u64;
            for row in batch {
                if !preds.is_empty()
                    && !keep_row_charged(row, &plan.bindings, &preds, self.outer, ctx, || cpu += 1)?
                {
                    continue;
                }
                cpu += 1; // the aggregation update the general loop charges
                eval_key_scratch(&key_progs, row, ctx, &mut scratch)?;
                let group = table_groups.find_or_insert(&key_progs, row, &scratch, || GroupState {
                    rep_row: row.to_vec(),
                    accs: plan.specs.iter().map(Acc::new).collect(),
                });
                for (arg, acc) in agg_args.iter().zip(group.accs.iter_mut()) {
                    let v = match arg {
                        FusedArg::None => None,
                        FusedArg::Col(i) => Some(row[*i].clone()),
                        FusedArg::Expr(a) => Some(eval::eval_compiled(a, row, ctx)?),
                    };
                    acc.update(v)?;
                }
            }
            ctx.bump_cpu(cpu);
            let groups = table_groups.len() as u64;
            ctx.charge_mem(exec::approx_state_bytes(
                groups - charged_groups,
                state_width,
            ))?;
            charged_groups = groups;
            Ok(())
        };

        let batch_cap = exec::SCAN_BATCH_ROWS as usize;
        let mut batch: Vec<&Row> = Vec::with_capacity(batch_cap);
        match &choice.path {
            AccessPath::SeqScan => {
                let residual_exprs: Vec<&Expr> = plan
                    .single
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !choice.consumed.contains(i))
                    .map(|(_, e)| e)
                    .collect();
                let mut last_page = u64::MAX;
                for (rid, row) in seq_scan_iter(table, &plan.bindings, &residual_exprs, ctx) {
                    let page = table.heap.geometry().page_of(rid);
                    if page != last_page {
                        ctx.charge_page(table.schema.id, page, AccessKind::Sequential);
                        last_page = page;
                    }
                    batch.push(row);
                    if batch.len() == batch_cap {
                        fold_batch(&batch)?;
                        batch.clear();
                    }
                }
            }
            AccessPath::IndexRange {
                column,
                low,
                high,
                clustered,
            } => {
                let idx = table
                    .index_on(*column)
                    .expect("planner only chooses existing indexes");
                ctx.bump_index_probes(1);
                let kind = if *clustered {
                    AccessKind::Sequential
                } else {
                    AccessKind::Random
                };
                let mut last_page = u64::MAX;
                for (_, rid) in idx.range(exec::bound_ref(low), exec::bound_ref(high)) {
                    let Some(row) = table.heap.get(rid) else {
                        continue;
                    };
                    let page = table.heap.geometry().page_of(rid);
                    if page != last_page {
                        ctx.charge_page(table.schema.id, page, kind);
                        last_page = page;
                    }
                    batch.push(row);
                    if batch.len() == batch_cap {
                        fold_batch(&batch)?;
                        batch.clear();
                    }
                }
            }
        }
        if !batch.is_empty() {
            fold_batch(&batch)?;
        }

        let (rel, keys) = exec::project_groups(
            self.q,
            &plan.bindings,
            &plan.specs,
            table_groups.into_states(),
            self.outer,
            ctx,
        )?;
        Ok((rel, keys))
    }
}

impl<'e> Operator<'e> for FusedExec<'e> {
    fn open(&mut self) -> EngineResult<Vec<Binding>> {
        Ok(exec::output_bindings(self.q, &self.plan.bindings))
    }

    fn next_batch(&mut self) -> EngineResult<Option<RowBatch<'e>>> {
        if self.emitter.is_none() {
            let (rel, keys) = self.run()?;
            self.emitter = Some(BatchEmitter::new(rel.rows, keys));
        }
        Ok(self.emitter.as_mut().and_then(BatchEmitter::next))
    }
}

// ---------------------------------------------------------------------------
// Parallel fused scan→filter→partial-aggregate
// ---------------------------------------------------------------------------

/// Morsel-driven parallel variant of [`FusedExec`] — the engine's third
/// parallelism tier (intra-node), below the cluster's inter-query and
/// intra-query tiers. The scan is split into page-aligned morsels
/// ([`plan_scan_morsels`]); each worker pulls morsel indices from a shared
/// atomic and folds its morsels into private [`FusedGroups`] partials,
/// which the coordinator merges **in morsel-index order** — preserving the
/// serial first-seen group order — before finishing through the same
/// [`exec::project_groups`].
///
/// Byte-identity with serial execution, counters included, is maintained
/// by construction:
/// - page charges are replayed on the coordinator in serial order
///   ([`precharge_morsel_pages`]); workers never touch the buffer pool or
///   the statement's stats;
/// - workers tally `rows_scanned` / `cpu_tuple_ops` in plain integers that
///   the coordinator sums and bumps once (addition is order-free), with
///   `scan_batches = ceil(rows/SCAN_BATCH_ROWS)` exactly as the serial
///   batch loop produces;
/// - each worker runs under a child [`crate::governor::QueryGovernor`]
///   (statement cancel reaches workers; a worker failure aborts peers) and
///   charges its transient partial state to the shared memory gauge
///   through its own context, released when the worker finishes.
///
/// Falls back to [`FusedExec`] at run time when the scan yields fewer than
/// two morsels, so small tables pay no dispatch cost and errors (unknown
/// table, type errors) surface identically.
struct ParallelFusedExec<'e> {
    q: &'e Select,
    plan: &'e FusedPlan,
    outer: &'e [Frame<'e>],
    ctx: &'e ExecContext<'e>,
    workers: usize,
    az: Option<&'e Analyze>,
    probe: Option<usize>,
    emitter: Option<BatchEmitter>,
}

impl<'e> ParallelFusedExec<'e> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        q: &'e Select,
        plan: &'e FusedPlan,
        outer: &'e [Frame<'e>],
        ctx: &'e ExecContext<'e>,
        workers: usize,
        az: Option<&'e Analyze>,
        probe: Option<usize>,
    ) -> Self {
        ParallelFusedExec {
            q,
            plan,
            outer,
            ctx,
            workers,
            az,
            probe,
            emitter: None,
        }
    }

    fn run(&self) -> EngineResult<(Relation, Vec<Vec<Value>>)> {
        let (plan, ctx) = (self.plan, self.ctx);
        let table = ctx
            .db
            .table(&plan.table)
            .ok_or_else(|| EngineError::UnknownTable(plan.table.clone()))?;
        let eval_const = |e: &Expr| -> Option<Value> {
            if exec::expr_has_columns(e) {
                None
            } else {
                eval_expr(e, &[], ctx).ok()
            }
        };
        let choice = planner::choose_access_path(
            table,
            &plan.binding_name,
            &plan.single,
            ctx.db.seqscan_enabled(),
            ctx.db.indexscan_enabled(),
            &eval_const,
        );
        let residual_exprs: Vec<&Expr> = plan
            .single
            .iter()
            .enumerate()
            .filter(|(i, _)| !choice.consumed.contains(i))
            .map(|(_, e)| e)
            .collect();
        let sm = plan_scan_morsels(table, &plan.bindings, &residual_exprs, &choice, ctx);
        let n_morsels = sm.morsels.len();
        if n_morsels < 2 {
            return FusedExec::new(self.q, plan, self.outer, ctx).run();
        }
        // Committed to the parallel decomposition: apply its accounting and
        // replay the serial page-touch sequence up front (safe because no
        // other page touches can interleave — every subquery-evaluating
        // operator is a pipeline breaker, and the fused shape has none).
        ctx.bump_pages_pruned(sm.pages_pruned);
        ctx.bump_index_probes(sm.index_probes);
        precharge_morsel_pages(&sm, ctx);

        let preds = resolve_fused_preds(plan, &choice, ctx);
        let key_progs = key_progs_from_compiled(&plan.group_by, ctx);
        let agg_args = resolve_fused_args(plan, ctx);
        let state_width = plan.bindings.len() + plan.specs.len();

        let next = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        type MorselOut = (FusedGroups, u64, u64); // partial groups, rows, cpu
        let results: Mutex<Vec<Option<EngineResult<MorselOut>>>> =
            Mutex::new((0..n_morsels).map(|_| None).collect());
        let tallies: Mutex<Vec<WorkerTally>> = Mutex::new(vec![(0, 0, 0); self.workers]);
        let db = ctx.db;
        let params = ctx.params_snapshot();

        let pool = db.worker_pool(self.workers);
        let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(self.workers);
        for w in 0..self.workers {
            let params = params.clone();
            let gov = ctx.child_governor();
            let (next, abort, results, tallies) = (&next, &abort, &results, &tallies);
            let (sm, preds, key_progs, agg_args) = (&sm, &preds, &key_progs, &agg_args);
            tasks.push(Box::new(move || {
                let start = Instant::now();
                let wctx = ExecContext::governed(db, params, gov);
                let mut scratch: Vec<Value> = Vec::new();
                let (mut wrows, mut wmorsels) = (0u64, 0u64);
                loop {
                    let i = next.fetch_add(1, AtomicOrd::Relaxed);
                    if i >= n_morsels || abort.load(AtomicOrd::Relaxed) {
                        break;
                    }
                    let r: EngineResult<MorselOut> = (|| {
                        wctx.check_interrupt()?;
                        let mut groups = FusedGroups::new();
                        let (mut rows, mut cpu) = (0u64, 0u64);
                        for row in morsel_rows(sm.table, &sm.morsels[i]) {
                            rows += 1;
                            if !preds.is_empty()
                                && !keep_row_charged(
                                    row,
                                    &plan.bindings,
                                    preds,
                                    &[],
                                    &wctx,
                                    || cpu += 1,
                                )?
                            {
                                continue;
                            }
                            cpu += 1; // the aggregation update charge
                            eval_key_scratch(key_progs, row, &wctx, &mut scratch)?;
                            let group =
                                groups.find_or_insert(key_progs, row, &scratch, || GroupState {
                                    rep_row: row.to_vec(),
                                    accs: plan.specs.iter().map(Acc::new).collect(),
                                });
                            for (arg, acc) in agg_args.iter().zip(group.accs.iter_mut()) {
                                let v = match arg {
                                    FusedArg::None => None,
                                    FusedArg::Col(i) => Some(row[*i].clone()),
                                    FusedArg::Expr(a) => Some(eval::eval_compiled(a, row, &wctx)?),
                                };
                                acc.update(v)?;
                            }
                        }
                        // Transient partial-state accounting: charged to the
                        // shared gauge here, released when this worker's
                        // context drops; the coordinator charges the merged
                        // total exactly as the serial operator does.
                        wctx.charge_mem(exec::approx_state_bytes(
                            groups.len() as u64,
                            state_width,
                        ))?;
                        Ok((groups, rows, cpu))
                    })();
                    let failed = r.is_err();
                    if let Ok((_, rows, _)) = &r {
                        wrows += rows;
                    }
                    wmorsels += 1;
                    results.lock()[i] = Some(r);
                    if failed {
                        abort.store(true, AtomicOrd::Relaxed);
                    }
                }
                tallies.lock()[w] = (wrows, wmorsels, start.elapsed().as_nanos());
            }));
        }
        pool.scoped_run(tasks);

        // Merge in morsel-index order. Walking in order also makes error
        // reporting deterministic: morsel indices are claimed in increasing
        // order and abandoned slots (after an abort) always sit beyond the
        // erroring one, so the first non-Ok slot is the earliest failure in
        // scan order. The per-morsel interrupt check mirrors the serial
        // once-per-batch cancellation cadence.
        let mut merged = FusedGroups::new();
        let (mut total_rows, mut total_cpu) = (0u64, 0u64);
        for slot in results.into_inner() {
            ctx.check_interrupt()?;
            match slot {
                Some(Ok((groups, rows, cpu))) => {
                    total_rows += rows;
                    total_cpu += cpu;
                    merged.merge(groups);
                }
                Some(Err(e)) => return Err(e),
                None => unreachable!("abandoned morsel precedes the slot that aborted it"),
            }
        }
        ctx.bump_rows_scanned(total_rows);
        ctx.bump_scan_batches(total_rows.div_ceil(exec::SCAN_BATCH_ROWS));
        ctx.bump_cpu(total_cpu);
        ctx.charge_mem(exec::approx_state_bytes(merged.len() as u64, state_width))?;
        record_worker_probes(self.az, self.probe, &tallies.into_inner());

        exec::project_groups(
            self.q,
            &plan.bindings,
            &plan.specs,
            merged.into_states(),
            self.outer,
            ctx,
        )
    }
}

impl<'e> Operator<'e> for ParallelFusedExec<'e> {
    fn open(&mut self) -> EngineResult<Vec<Binding>> {
        Ok(exec::output_bindings(self.q, &self.plan.bindings))
    }

    fn next_batch(&mut self) -> EngineResult<Option<RowBatch<'e>>> {
        if self.emitter.is_none() {
            let (rel, keys) = self.run()?;
            self.emitter = Some(BatchEmitter::new(rel.rows, keys));
        }
        Ok(self.emitter.as_mut().and_then(BatchEmitter::next))
    }
}

// ---------------------------------------------------------------------------
// Distinct, Sort, Limit
// ---------------------------------------------------------------------------

/// Streaming DISTINCT over whole output rows, preserving first-seen order
/// and the row-parallel sort keys. Charges no cpu, like the interpreter,
/// but its seen-set growth counts against the memory budget.
struct DistinctExec<'e> {
    child: Box<dyn Operator<'e> + 'e>,
    ctx: &'e ExecContext<'e>,
    seen: HashSet<Vec<HashableValue>>,
}

impl<'e> DistinctExec<'e> {
    fn new(child: Box<dyn Operator<'e> + 'e>, ctx: &'e ExecContext<'e>) -> Self {
        DistinctExec {
            child,
            ctx,
            seen: HashSet::new(),
        }
    }
}

impl<'e> Operator<'e> for DistinctExec<'e> {
    fn open(&mut self) -> EngineResult<Vec<Binding>> {
        self.child.open()
    }

    fn next_batch(&mut self) -> EngineResult<Option<RowBatch<'e>>> {
        loop {
            self.ctx.check_interrupt()?;
            let Some(batch) = self.child.next_batch()? else {
                return Ok(None);
            };
            let in_rows = batch.rows.into_owned();
            let width = in_rows.first().map_or(0, Vec::len);
            let mut rows = Vec::with_capacity(in_rows.len());
            let mut keys = Vec::with_capacity(batch.keys.len());
            for (row, key) in in_rows.into_iter().zip(batch.keys) {
                let k: Vec<HashableValue> = row.iter().map(Value::hash_key).collect();
                if self.seen.insert(k) {
                    rows.push(row);
                    keys.push(key);
                }
            }
            // Every emitted row added one key to the seen set.
            self.ctx
                .charge_mem(exec::approx_state_bytes(rows.len() as u64, width))?;
            if !rows.is_empty() {
                return Ok(Some(RowBatch::owned(rows, keys)));
            }
        }
    }
}

/// Sorts an index permutation on the worker pool: each worker stable-sorts
/// one contiguous chunk, then the coordinator k-way merges the chunks. On
/// equal keys the earlier chunk wins, and within a chunk `sort_by` keeps
/// input order — since the chunks partition the (initially ascending)
/// index vector in order, the result is exactly what a stable sort of the
/// whole vector produces, so parallel and serial sorts emit identical row
/// orders.
fn parallel_sort_indices(
    idx: &mut Vec<usize>,
    workers: usize,
    db: &Database,
    cmp: &(dyn Fn(usize, usize) -> std::cmp::Ordering + Sync),
) {
    let n = idx.len();
    let chunk = n.div_ceil(workers).max(1);
    let pool = db.worker_pool(workers);
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = idx
        .chunks_mut(chunk)
        .map(|part| {
            Box::new(move || part.sort_by(|&a, &b| cmp(a, b))) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    pool.scoped_run(tasks);

    let bounds: Vec<(usize, usize)> = (0..n)
        .step_by(chunk)
        .map(|s| (s, (s + chunk).min(n)))
        .collect();
    let mut heads: Vec<usize> = bounds.iter().map(|&(s, _)| s).collect();
    let mut merged = Vec::with_capacity(n);
    loop {
        let mut best: Option<usize> = None;
        for (c, &(_, end)) in bounds.iter().enumerate() {
            if heads[c] >= end {
                continue;
            }
            match best {
                None => best = Some(c),
                // Strict `Less` only: ties keep the earliest chunk.
                Some(b) => {
                    if cmp(idx[heads[c]], idx[heads[b]]) == std::cmp::Ordering::Less {
                        best = Some(c);
                    }
                }
            }
        }
        let Some(b) = best else { break };
        merged.push(idx[heads[b]]);
        heads[b] += 1;
    }
    *idx = merged;
}

/// Pipeline breaker: drains the child, charges the interpreter's `n·log n`
/// comparison estimate once, and re-emits rows in key order. The sort keys
/// were computed by the projection stage; they are consumed here.
///
/// The sort is **stable**: rows whose keys compare equal on every ORDER BY
/// component (per [`Value::sort_cmp`], including its NULL and NaN ranking)
/// keep their input order — `sort_by` over an index vector never reorders
/// equal elements, and DESC reverses each key comparison, not the tie
/// order. Tests rely on this for deterministic output on duplicate keys.
struct SortExec<'e> {
    q: &'e Select,
    child: Box<dyn Operator<'e> + 'e>,
    ctx: &'e ExecContext<'e>,
    emitter: Option<BatchEmitter>,
}

impl<'e> SortExec<'e> {
    fn new(q: &'e Select, child: Box<dyn Operator<'e> + 'e>, ctx: &'e ExecContext<'e>) -> Self {
        SortExec {
            q,
            child,
            ctx,
            emitter: None,
        }
    }
}

impl<'e> Operator<'e> for SortExec<'e> {
    fn open(&mut self) -> EngineResult<Vec<Binding>> {
        self.child.open()
    }

    fn next_batch(&mut self) -> EngineResult<Option<RowBatch<'e>>> {
        if self.emitter.is_none() {
            let mut rows: Vec<Row> = Vec::new();
            let mut sort_keys: Vec<Vec<Value>> = Vec::new();
            let n_keys = self.q.order_by.len();
            while let Some(batch) = self.child.next_batch()? {
                self.ctx.check_interrupt()?;
                let width = batch.rows.iter().next().map_or(0, Vec::len);
                self.ctx.charge_mem(exec::approx_state_bytes(
                    batch.rows.len() as u64,
                    width + n_keys,
                ))?;
                rows.extend(batch.rows.into_owned());
                sort_keys.extend(batch.keys);
            }
            let descs: Vec<bool> = self.q.order_by.iter().map(|o| o.desc).collect();
            let n = rows.len();
            self.ctx
                .bump_cpu((n as f64 * (n.max(2) as f64).log2()) as u64);
            let mut idx: Vec<usize> = (0..rows.len()).collect();
            let cmp = |a: usize, b: usize| -> std::cmp::Ordering {
                for (k, desc) in sort_keys[a].iter().zip(sort_keys[b].iter()).zip(&descs) {
                    let ((x, y), desc) = (k, *desc);
                    let ord = x.sort_cmp(y);
                    let ord = if desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            };
            let workers = self.ctx.db.parallel_workers();
            if workers >= 2 && n >= 2 * exec::SCAN_BATCH_ROWS as usize {
                parallel_sort_indices(&mut idx, workers, self.ctx.db, &cmp);
            } else {
                idx.sort_by(|&a, &b| cmp(a, b));
            }
            let mut sorted = Vec::with_capacity(rows.len());
            for i in idx {
                sorted.push(std::mem::take(&mut rows[i]));
            }
            self.emitter = Some(BatchEmitter::rows_only(sorted));
        }
        Ok(self.emitter.as_mut().and_then(BatchEmitter::next))
    }
}

/// LIMIT truncates after its input is fully produced — the interpreter
/// never terminated upstream work early, and row/page counters must not
/// change, so neither does the pipeline.
struct LimitExec<'e> {
    limit: u64,
    child: Box<dyn Operator<'e> + 'e>,
    ctx: &'e ExecContext<'e>,
    emitter: Option<BatchEmitter>,
}

impl<'e> LimitExec<'e> {
    fn new(limit: u64, child: Box<dyn Operator<'e> + 'e>, ctx: &'e ExecContext<'e>) -> Self {
        LimitExec {
            limit,
            child,
            ctx,
            emitter: None,
        }
    }
}

impl<'e> Operator<'e> for LimitExec<'e> {
    fn open(&mut self) -> EngineResult<Vec<Binding>> {
        self.child.open()
    }

    fn next_batch(&mut self) -> EngineResult<Option<RowBatch<'e>>> {
        if self.emitter.is_none() {
            // The child is still drained in full (counters must not
            // change), but rows past the limit are dropped on arrival
            // instead of being materialized and truncated afterwards.
            let limit = self.limit as usize;
            let mut rows: Vec<Row> = Vec::new();
            while let Some(batch) = self.child.next_batch()? {
                self.ctx.check_interrupt()?;
                let room = limit.saturating_sub(rows.len());
                if room > 0 {
                    match batch.rows {
                        BatchRows::Owned(v) => rows.extend(v.into_iter().take(room)),
                        BatchRows::Borrowed(v) => rows.extend(v.into_iter().take(room).cloned()),
                    }
                }
            }
            self.emitter = Some(BatchEmitter::rows_only(rows));
        }
        Ok(self.emitter.as_mut().and_then(BatchEmitter::next))
    }
}

// ---------------------------------------------------------------------------
// EXPLAIN ANALYZE instrumentation
// ---------------------------------------------------------------------------

/// One operator's runtime probe, filled in by [`TimedExec`].
struct ProbeNode {
    label: String,
    children: Vec<usize>,
    rows: u64,
    batches: u64,
    nanos: u128,
}

/// The `EXPLAIN ANALYZE` collector: a flat arena of probe nodes built as
/// the operator tree is assembled. Most parents register after their
/// children; the join block registers first and attaches its input probes
/// while it materializes them in `open`.
struct Analyze {
    nodes: RefCell<Vec<ProbeNode>>,
}

impl Analyze {
    fn new() -> Self {
        Analyze {
            nodes: RefCell::new(Vec::new()),
        }
    }

    fn register(&self, label: String, children: Vec<usize>) -> usize {
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(ProbeNode {
            label,
            children,
            rows: 0,
            batches: 0,
            nanos: 0,
        });
        nodes.len() - 1
    }

    fn add_child(&self, parent: usize, child: usize) {
        self.nodes.borrow_mut()[parent].children.push(child);
    }

    fn record(&self, idx: usize, rows: u64, batches: u64, nanos: u128) {
        let mut nodes = self.nodes.borrow_mut();
        let n = &mut nodes[idx];
        n.rows += rows;
        n.batches += batches;
        n.nanos += nanos;
    }
}

/// Wraps an operator, timing `open` and `next_batch` inclusively and
/// counting the rows and batches it emits.
struct TimedExec<'e> {
    inner: Box<dyn Operator<'e> + 'e>,
    az: &'e Analyze,
    idx: usize,
}

impl<'e> Operator<'e> for TimedExec<'e> {
    fn open(&mut self) -> EngineResult<Vec<Binding>> {
        let start = Instant::now();
        let r = self.inner.open();
        self.az.record(self.idx, 0, 0, start.elapsed().as_nanos());
        r
    }

    fn next_batch(&mut self) -> EngineResult<Option<RowBatch<'e>>> {
        let start = Instant::now();
        let r = self.inner.next_batch();
        let nanos = start.elapsed().as_nanos();
        let (rows, batches) = match &r {
            Ok(Some(b)) => (b.rows.len() as u64, 1),
            _ => (0, 0),
        };
        self.az.record(self.idx, rows, batches, nanos);
        r
    }
}

/// `EXPLAIN ANALYZE`: executes the query with every operator wrapped in a
/// timing probe, then renders the tree with actual row/batch counts and
/// per-operator times. `self_ms` is the node's inclusive time minus its
/// children's inclusive time (probe timings nest); `total_ms` is
/// inclusive. The footer reports wall-clock time for the whole execution,
/// so the per-operator `self_ms` values sum to at most (roughly) the
/// footer time.
pub(crate) fn explain_analyze(q: &Select, ctx: &ExecContext<'_>) -> EngineResult<Vec<String>> {
    let shape = lower_shape(q, ctx.db, ctx.db.kernel_enabled());
    let az = Analyze::new();
    let total = Instant::now();
    {
        let (mut root, _) = build_tree(q, &shape, &[], ctx, Some(&az));
        root.open()?;
        while root.next_batch()?.is_some() {}
    }
    let total_ms = total.elapsed().as_nanos() as f64 / 1e6;
    let nodes = az.nodes.into_inner();
    // The root is the highest-numbered node no other node claims as a child.
    let mut is_child = vec![false; nodes.len()];
    for n in &nodes {
        for &c in &n.children {
            is_child[c] = true;
        }
    }
    let root = (0..nodes.len()).rev().find(|&i| !is_child[i]).unwrap_or(0);
    let mut out = Vec::new();
    render_probe(&nodes, root, 0, &mut out);
    out.push(format!("execution time: {total_ms:.3} ms"));
    Ok(out)
}

fn render_probe(nodes: &[ProbeNode], idx: usize, depth: usize, out: &mut Vec<String>) {
    let n = &nodes[idx];
    let child_nanos: u128 = n.children.iter().map(|&c| nodes[c].nanos).sum();
    let total_ms = n.nanos as f64 / 1e6;
    let self_ms = n.nanos.saturating_sub(child_nanos) as f64 / 1e6;
    out.push(format!(
        "{}{} (actual rows={} batches={} self_ms={:.3} total_ms={:.3})",
        "  ".repeat(depth),
        n.label,
        n.rows,
        n.batches,
        self_ms,
        total_ms
    ));
    for &c in &n.children {
        render_probe(nodes, c, depth + 1, out);
    }
}

// ---------------------------------------------------------------------------
// EXPLAIN
// ---------------------------------------------------------------------------

/// Indented plan lines: (depth, text).
type Lines = Vec<(usize, String)>;

fn wrap(line: String, child: Lines) -> Lines {
    let mut out = vec![(0, line)];
    out.extend(child.into_iter().map(|(d, l)| (d + 1, l)));
    out
}

/// Renders the physical operator tree for a SELECT without executing it:
/// one output row per operator, children indented under their parent, each
/// with its estimated row count, and the fusion rule marked where applied.
///
/// Access paths are the planner's real choices; the join order shown is
/// the *estimated* order (execution refines it with actual cardinalities,
/// so an `(estimated)` marker is included).
pub(crate) fn explain(q: &Select, ctx: &ExecContext<'_>) -> EngineResult<Vec<String>> {
    let shape = lower_shape(q, ctx.db, ctx.db.kernel_enabled());
    let (lines, _) = explain_shape(q, &shape, ctx)?;
    Ok(lines
        .into_iter()
        .map(|(d, l)| format!("{}{}", "  ".repeat(d), l))
        .collect())
}

fn explain_shape(q: &Select, shape: &Shape, ctx: &ExecContext<'_>) -> EngineResult<(Lines, f64)> {
    let (mut block, mut est) = match shape {
        Shape::Fused(f) => explain_fused(q, f, ctx)?,
        Shape::General(g) => explain_general(q, g, ctx)?,
    };
    if q.quantifier == SetQuantifier::Distinct {
        block = wrap(format!("distinct, ~{est:.0} rows"), block);
    }
    if !q.order_by.is_empty() {
        block = wrap(
            format!("sort: {} key(s), ~{est:.0} rows", q.order_by.len()),
            block,
        );
    }
    if let Some(l) = q.limit {
        est = est.min(l as f64);
        block = wrap(format!("limit {l}, ~{est:.0} rows"), block);
    }
    Ok((block, est))
}

fn path_desc(table: &Table, path: &AccessPath) -> String {
    match path {
        AccessPath::SeqScan => "seq scan".to_string(),
        AccessPath::IndexRange {
            column,
            low,
            high,
            clustered,
        } => {
            let col = &table.schema.columns[*column].name;
            let fmt_bound = |b: &std::ops::Bound<Value>, open: &str| match b {
                std::ops::Bound::Unbounded => open.to_string(),
                std::ops::Bound::Included(v) => format!("{v}="),
                std::ops::Bound::Excluded(v) => format!("{v}"),
            };
            format!(
                "{} index range on {col} [{} .. {})",
                if *clustered { "clustered" } else { "secondary" },
                fmt_bound(low, "-inf"),
                fmt_bound(high, "+inf"),
            )
        }
    }
}

/// One scan line in the interpreter's long-standing format.
fn scan_line(
    name: &str,
    binding_name: &str,
    single: &[Expr],
    ctx: &ExecContext<'_>,
) -> EngineResult<(String, f64)> {
    let table = ctx
        .db
        .table(name)
        .ok_or_else(|| EngineError::UnknownTable(name.to_string()))?;
    let eval_const = |e: &Expr| -> Option<Value> {
        if exec::expr_has_columns(e) {
            None
        } else {
            eval_expr(e, &[], ctx).ok()
        }
    };
    let choice = planner::choose_access_path(
        table,
        binding_name,
        single,
        ctx.db.seqscan_enabled(),
        ctx.db.indexscan_enabled(),
        &eval_const,
    );
    let alias_note = if binding_name != name {
        format!(" as {binding_name}")
    } else {
        String::new()
    };
    Ok((
        format!(
            "scan {name}{alias_note}: {}, {} filter(s), ~{:.0} rows (cost {:.1})",
            path_desc(table, &choice.path),
            single.len().saturating_sub(choice.consumed.len()),
            choice.estimated_rows,
            choice.cost,
        ),
        choice.estimated_rows,
    ))
}

fn explain_general(
    q: &Select,
    g: &GeneralPlan,
    ctx: &ExecContext<'_>,
) -> EngineResult<(Lines, f64)> {
    let names: Vec<&str> = g.inputs.iter().map(InputNode::scope_name).collect();
    let mut input_blocks: Vec<Option<Lines>> = Vec::with_capacity(g.inputs.len());
    let mut estimates: Vec<f64> = Vec::with_capacity(g.inputs.len());
    for node in &g.inputs {
        match node {
            InputNode::Table { name, single, .. } => {
                let (line, est) = scan_line(name, node.scope_name(), single, ctx)?;
                input_blocks.push(Some(vec![(0, line)]));
                estimates.push(est);
            }
            InputNode::Derived { alias, plan, .. } => {
                let (sub, _) = explain_shape(&plan.select, &plan.shape, ctx)?;
                input_blocks.push(Some(wrap(
                    format!("derived table {alias}: subquery materialization"),
                    sub,
                )));
                estimates.push(1000.0);
            }
        }
    }

    let (mut block, mut est) = if g.inputs.is_empty() {
        (Lines::new(), 1.0)
    } else if g.inputs.len() == 1 {
        (input_blocks[0].take().expect("just built"), estimates[0])
    } else {
        // Estimated greedy join order.
        let driving = estimates
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.total_cmp(b))
            .map(|(i, _)| i)
            .expect("from nonempty");
        let mut block = wrap(
            format!("drive with {} (estimated)", names[driving]),
            input_blocks[driving].take().expect("just built"),
        );
        let mut est = estimates[driving];
        let mut bound = vec![driving];
        while bound.len() < g.inputs.len() {
            let next = (0..g.inputs.len())
                .filter(|i| !bound.contains(i))
                .filter(|&i| {
                    g.edges.iter().any(|e| {
                        (e.left == names[i] && bound.iter().any(|&b| names[b] == e.right))
                            || (e.right == names[i] && bound.iter().any(|&b| names[b] == e.left))
                    })
                })
                .min_by(|&a, &b| estimates[a].total_cmp(&estimates[b]))
                .or_else(|| (0..g.inputs.len()).find(|i| !bound.contains(i)));
            let Some(next) = next else { break };
            let keys: Vec<String> = g
                .edges
                .iter()
                .filter(|e| e.left == names[next] || e.right == names[next])
                .map(|e| format!("{} = {}", e.left_expr, e.right_expr))
                .collect();
            let mut children = block;
            children.extend(input_blocks[next].take().expect("unbound until now"));
            if keys.is_empty() {
                est *= estimates[next];
                block = wrap(
                    format!("cross join {}, ~{est:.0} rows", names[next]),
                    children,
                );
            } else {
                est = est.max(estimates[next]);
                block = wrap(
                    format!(
                        "hash join {} on {}, ~{est:.0} rows",
                        names[next],
                        keys.join(" and ")
                    ),
                    children,
                );
            }
            bound.push(next);
        }
        (block, est)
    };

    if !g.post.is_empty() {
        block = wrap(
            format!("post-filter: {} residual predicate(s)", g.post.len()),
            block,
        );
    }

    if g.aggregated {
        if q.group_by.is_empty() {
            est = 1.0;
            block = wrap("aggregate: global, ~1 rows".to_string(), block);
        } else {
            let groups: Vec<String> = q.group_by.iter().map(|g| g.to_string()).collect();
            block = wrap(
                format!(
                    "aggregate: hash group by {}, ~{est:.0} rows",
                    groups.join(", ")
                ),
                block,
            );
        }
    } else {
        block = wrap(
            format!("project: {} column(s), ~{est:.0} rows", q.items.len()),
            block,
        );
    }
    Ok((block, est))
}

fn explain_fused(q: &Select, f: &FusedPlan, ctx: &ExecContext<'_>) -> EngineResult<(Lines, f64)> {
    let (line, scan_est) = scan_line(&f.table, &f.binding_name, &f.single, ctx)?;
    let mut child = vec![(0, line)];
    if !f.compiled_post.is_empty() {
        child = wrap(
            format!(
                "post-filter: {} residual predicate(s)",
                f.compiled_post.len()
            ),
            child,
        );
    }
    let (agg_line, est) = if q.group_by.is_empty() {
        (
            "aggregate: global [fused scan→filter→aggregate], ~1 rows".to_string(),
            1.0,
        )
    } else {
        let groups: Vec<String> = q.group_by.iter().map(|g| g.to_string()).collect();
        (
            format!(
                "aggregate: hash group by {} [fused scan→filter→aggregate], ~{scan_est:.0} rows",
                groups.join(", ")
            ),
            scan_est,
        )
    };
    Ok((wrap(agg_line, child), est))
}
