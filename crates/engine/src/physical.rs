//! The batch-at-a-time physical operator pipeline.
//!
//! The planner lowers every SELECT to a [`PhysicalPlan`]: a tree of
//! operators (`SeqScan`/`IndexRangeScan`, `Filter`, `Project`, `HashJoin`,
//! `HashAggregate`, `Sort`, `Limit`, `Distinct`) each implementing
//! [`Operator::next_batch`] over [`RowBatch`]es of up to
//! [`exec::SCAN_BATCH_ROWS`] rows. One executor serves every shape; the old
//! fused aggregation kernel survives as the scan→filter→aggregate *fusion
//! rule* applied during lowering ([`Shape::Fused`]), so `SET enable_kernel`
//! toggles a plan rewrite, not a second executor, and there is no
//! "unsupported shape" fallback left to take.
//!
//! # Byte-identity with the seed interpreter
//!
//! Query answers and [`crate::ExecStats`] counters are byte-identical to
//! the fully-materialized interpreter this module replaced. Two invariants
//! make that hold:
//!
//! * **Charging contracts are ported verbatim** — each operator charges the
//!   same counters in the same per-row pattern the interpreter did (scan
//!   pages once per page change, `cpu_tuple_ops` before each predicate
//!   evaluation, one `n·log n` charge per sort, ...). Totals are sums, so
//!   batching never changes them.
//! * **Pipeline breakers are explicit.** Streaming an operator is
//!   order-safe only when its per-row expressions are subquery-free: then
//!   the only interleaved charges are CPU counters, which commute. An
//!   expression containing a subquery can touch buffer-pool pages, and the
//!   pool's LRU makes the hit/miss *order* observable — so subquery-bearing
//!   `Filter`/`Project`/`Aggregate` stages materialize their input first,
//!   which is exactly when the interpreter evaluated them. `Sort` and
//!   `Limit` are always breakers (the interpreter never terminated a scan
//!   early), and join inputs are materialized in FROM order before the
//!   greedy join phase, again matching the interpreter's phases.
//!
//! The one accepted divergence: when a query *errors*, the streaming
//! pipeline may surface a projection error from an early batch before a
//! scan error from a later row, where the interpreter would surface the
//! scan error first. Which error wins can differ; successful results and
//! their statistics never do.

use std::collections::{HashMap, HashSet};

use apuama_sql::ast::{Expr, Select, SelectItem, SetQuantifier, TableRef};
use apuama_sql::value::HashableValue;
use apuama_sql::Value;
use apuama_storage::{AccessKind, Row, RowId};

use crate::db::Database;
use crate::error::{EngineError, EngineResult};
use crate::eval::{self, eval_expr, truthiness, CompiledExpr, Frame};
use crate::exec::{self, Acc, AggSpec, BatchedCounter, Binding, ExecContext, GroupState, Relation};
use crate::planner::{self, AccessPath};
use crate::table::Table;

// ---------------------------------------------------------------------------
// Plan
// ---------------------------------------------------------------------------

/// A lowered SELECT: the original statement plus the operator shape the
/// planner chose for it. Cached plans store this tree; the access path of
/// each scan is still chosen per execution from the actual bound values.
#[derive(Debug, Clone)]
pub(crate) struct PhysicalPlan {
    pub(crate) select: Select,
    pub(crate) shape: Shape,
}

/// The two lowering outcomes: the fused scan→filter→aggregate pipeline
/// (the old kernel, now a rewrite rule) or the general operator tree.
#[derive(Debug, Clone)]
pub(crate) enum Shape {
    Fused(FusedPlan),
    General(GeneralPlan),
}

/// General shape: one node per FROM item, the equi-join edges between
/// them, and the residual (post-join) predicates with the scope names each
/// one needs.
#[derive(Debug, Clone)]
pub(crate) struct GeneralPlan {
    inputs: Vec<InputNode>,
    edges: Vec<planner::JoinEdge>,
    post: Vec<(Expr, Vec<String>)>,
    aggregated: bool,
}

/// One FROM item with its pushed-down single-scope conjuncts.
#[derive(Debug, Clone)]
enum InputNode {
    Table {
        name: String,
        alias: Option<String>,
        single: Vec<Expr>,
    },
    Derived {
        alias: String,
        plan: Box<PhysicalPlan>,
        single: Vec<Expr>,
    },
}

impl InputNode {
    fn scope_name(&self) -> &str {
        match self {
            InputNode::Table { name, alias, .. } => alias.as_deref().unwrap_or(name),
            InputNode::Derived { alias, .. } => alias,
        }
    }
}

/// The fusion rule's compiled form: a single-table aggregation whose
/// predicates, group-by keys, and aggregate arguments are pre-resolved to
/// positional programs. Built once at lowering, reused across executions.
#[derive(Debug, Clone)]
pub(crate) struct FusedPlan {
    table: String,
    binding_name: String,
    bindings: Vec<Binding>,
    /// Single-table conjuncts in classification order — the planner input.
    single: Vec<Expr>,
    compiled_single: Vec<CompiledExpr>,
    /// Conjuncts the general path would defer to post-filters (constant or
    /// parameter-only predicates), applied after the single-table ones.
    compiled_post: Vec<CompiledExpr>,
    specs: Vec<AggSpec>,
    /// Compiled aggregate arguments, aligned with `specs`; `None` for
    /// `count(*)` and argument-less specs.
    agg_args: Vec<Option<CompiledExpr>>,
    group_by: Vec<CompiledExpr>,
}

/// Lowers a SELECT to its physical shape. Infallible by design: unknown
/// tables and other execution-time errors surface when the tree is opened,
/// exactly where the interpreter surfaced them.
pub(crate) fn lower(q: &Select, db: &Database, kernel_on: bool) -> PhysicalPlan {
    PhysicalPlan {
        select: q.clone(),
        shape: lower_shape(q, db, kernel_on),
    }
}

pub(crate) fn lower_shape(q: &Select, db: &Database, kernel_on: bool) -> Shape {
    if kernel_on {
        if let Some(f) = compile_fused(q, db) {
            return Shape::Fused(f);
        }
    }
    Shape::General(lower_general(q, db, kernel_on))
}

/// The general lowering: classify WHERE conjuncts against the FROM scopes
/// (single-scope → pushed into that scan, equality across two scopes → a
/// join edge, the rest → post-filters) and lower derived tables
/// recursively.
fn lower_general(q: &Select, db: &Database, kernel_on: bool) -> GeneralPlan {
    let catalog = db.catalog();
    let scopes = planner::scopes_for_from(&q.from, catalog);

    let conjuncts = eval::split_conjuncts(q.selection.as_ref());
    let mut single: Vec<Vec<Expr>> = vec![Vec::new(); q.from.len()];
    let mut edges: Vec<planner::JoinEdge> = Vec::new();
    let mut post: Vec<(Expr, Vec<String>)> = Vec::new();
    for c in conjuncts {
        let refs = planner::conjunct_bindings(&c, &scopes, catalog);
        if refs.len() == 1 {
            let name = refs.iter().next().expect("len checked");
            let idx = scopes
                .iter()
                .position(|s| &s.name == name)
                .expect("binding came from scopes");
            single[idx].push(c);
        } else if let Some(edge) = planner::as_join_edge(&c, &scopes, catalog) {
            edges.push(edge);
        } else {
            post.push((c, refs.into_iter().collect()));
        }
    }
    // Evaluate subquery-bearing residuals last within each scan.
    for list in &mut single {
        list.sort_by_key(exec::contains_subquery);
    }

    let inputs = q
        .from
        .iter()
        .zip(single)
        .map(|(item, single)| match item {
            TableRef::Table { name, alias } => InputNode::Table {
                name: name.clone(),
                alias: alias.clone(),
                single,
            },
            TableRef::Subquery { query, alias } => InputNode::Derived {
                alias: alias.clone(),
                plan: Box::new(lower(query, db, kernel_on)),
                single,
            },
        })
        .collect();

    GeneralPlan {
        inputs,
        edges,
        post,
        aggregated: !q.group_by.is_empty() || exec::select_has_aggregates(q),
    }
}

/// The fusion rule: a single-table aggregation with no subqueries anywhere
/// and every expression compilable to a positional program collapses to
/// [`Shape::Fused`]. `None` means the shape stays on the general tree.
fn compile_fused(q: &Select, db: &Database) -> Option<FusedPlan> {
    if q.quantifier != SetQuantifier::All {
        return None;
    }
    let [TableRef::Table { name, alias }] = q.from.as_slice() else {
        return None;
    };
    // Aggregated single-table shape only; plain scans stay general.
    if q.group_by.is_empty() && !exec::select_has_aggregates(q) {
        return None;
    }
    if q.items.iter().any(|i| matches!(i, SelectItem::Wildcard)) {
        return None;
    }
    // No subqueries anywhere (selection, items, having, order by, ...).
    let mut has_subquery = false;
    apuama_sql::visit::walk_select_exprs(q, &mut |e| {
        if matches!(
            e,
            Expr::Exists { .. } | Expr::InSubquery { .. } | Expr::ScalarSubquery(_)
        ) {
            has_subquery = true;
        }
    });
    if has_subquery {
        return None;
    }

    let table = db.table(name)?;
    let bindings = exec::bindings_for_table(&table.schema, alias.as_deref());
    let binding_name = alias.clone().unwrap_or_else(|| name.clone());

    // Classify WHERE conjuncts the way the general lowering does:
    // table-bound ones feed the access-path choice, binding-free ones
    // become post-filters.
    let catalog = db.catalog();
    let scopes = planner::scopes_for_from(&q.from, catalog);
    let mut single: Vec<Expr> = Vec::new();
    let mut post: Vec<Expr> = Vec::new();
    for c in eval::split_conjuncts(q.selection.as_ref()) {
        let refs = planner::conjunct_bindings(&c, &scopes, catalog);
        if refs.len() == 1 && refs.contains(&scopes[0].name) {
            single.push(c);
        } else if refs.is_empty() {
            post.push(c);
        } else {
            // A conjunct resolving outside the one scope means correlation
            // or a planner corner the general tree should handle.
            return None;
        }
    }

    let compiled_single = single
        .iter()
        .map(|c| eval::compile_expr(c, &bindings))
        .collect::<Option<Vec<_>>>()?;
    let compiled_post = post
        .iter()
        .map(|c| eval::compile_expr(c, &bindings))
        .collect::<Option<Vec<_>>>()?;
    let group_by = q
        .group_by
        .iter()
        .map(|g| eval::compile_expr(g, &bindings))
        .collect::<Option<Vec<_>>>()?;
    let specs = exec::collect_agg_specs(q);
    let agg_args = specs
        .iter()
        .map(|s| match (&s.arg, s.star) {
            (_, true) | (None, _) => Some(None),
            (Some(a), false) => eval::compile_expr(a, &bindings).map(Some),
        })
        .collect::<Option<Vec<_>>>()?;

    Some(FusedPlan {
        table: name.clone(),
        binding_name,
        bindings,
        single,
        compiled_single,
        compiled_post,
        specs,
        agg_args,
        group_by,
    })
}

// ---------------------------------------------------------------------------
// Operator contract
// ---------------------------------------------------------------------------

/// A batch of rows flowing between operators, with the ORDER BY sort keys
/// computed alongside them. `keys` is row-parallel above the projection
/// stage and empty below it.
pub(crate) struct RowBatch {
    rows: Vec<Row>,
    keys: Vec<Vec<Value>>,
}

/// The batch-at-a-time operator contract. `open` is called exactly once,
/// before the first `next_batch`, and returns the operator's output
/// bindings; `next_batch` returns a non-empty batch or `None` once the
/// stream is exhausted.
trait Operator {
    fn open(&mut self) -> EngineResult<Vec<Binding>>;
    fn next_batch(&mut self) -> EngineResult<Option<RowBatch>>;
}

/// Executes a lowered plan, draining the operator tree into a materialized
/// relation (the statement boundary — results cross the network whole).
pub(crate) fn execute(
    plan: &PhysicalPlan,
    outer: &[Frame<'_>],
    ctx: &ExecContext<'_>,
) -> EngineResult<Relation> {
    execute_shape(&plan.select, &plan.shape, outer, ctx)
}

pub(crate) fn execute_shape<'e>(
    q: &'e Select,
    shape: &'e Shape,
    outer: &'e [Frame<'e>],
    ctx: &'e ExecContext<'e>,
) -> EngineResult<Relation> {
    let mut root = build_tree(q, shape, outer, ctx);
    let bindings = root.open()?;
    let mut rows = Vec::new();
    while let Some(batch) = root.next_batch()? {
        rows.extend(batch.rows);
    }
    Ok(Relation { bindings, rows })
}

/// Assembles the operator tree for one shape: the source block (fused
/// pipeline, streamed single scan, or materializing join), the projection
/// or aggregation stage, then the uniform DISTINCT → Sort → Limit tail.
fn build_tree<'e>(
    q: &'e Select,
    shape: &'e Shape,
    outer: &'e [Frame<'e>],
    ctx: &'e ExecContext<'e>,
) -> Box<dyn Operator + 'e> {
    let mut op: Box<dyn Operator + 'e> = match shape {
        Shape::Fused(f) => Box::new(FusedExec::new(q, f, outer, ctx)),
        Shape::General(g) => {
            let source = build_source(g, outer, ctx);
            if g.aggregated {
                Box::new(AggregateExec::new(q, source, outer, ctx))
            } else {
                Box::new(ProjectExec::new(q, source, outer, ctx))
            }
        }
    };
    if q.quantifier == SetQuantifier::Distinct {
        op = Box::new(DistinctExec::new(op));
    }
    if !q.order_by.is_empty() {
        op = Box::new(SortExec::new(q, op, ctx));
    }
    if let Some(l) = q.limit {
        op = Box::new(LimitExec::new(l, op));
    }
    op
}

/// The source block under projection/aggregation. A single FROM item
/// streams through a `Filter`; several are materialized and joined by
/// `HashJoin` (the greedy join phase needs full cardinalities, exactly as
/// the interpreter did).
fn build_source<'e>(
    g: &'e GeneralPlan,
    outer: &'e [Frame<'e>],
    ctx: &'e ExecContext<'e>,
) -> Box<dyn Operator + 'e> {
    if g.inputs.len() == 1 {
        let base = build_input(&g.inputs[0], outer, ctx);
        // With one scope every post predicate is scope-free (single-scope
        // conjuncts were pushed into the scan), so all of them apply here.
        if g.post.is_empty() {
            base
        } else {
            let preds: Vec<Expr> = g.post.iter().map(|(e, _)| e.clone()).collect();
            Box::new(FilterExec::new(base, preds, outer, ctx))
        }
    } else {
        Box::new(JoinExec::new(g, outer, ctx))
    }
}

fn build_input<'e>(
    node: &'e InputNode,
    outer: &'e [Frame<'e>],
    ctx: &'e ExecContext<'e>,
) -> Box<dyn Operator + 'e> {
    match node {
        InputNode::Table {
            name,
            alias,
            single,
        } => Box::new(ScanExec::new(name, alias.as_deref(), single, outer, ctx)),
        InputNode::Derived {
            alias,
            plan,
            single,
        } => Box::new(DerivedExec::new(alias, plan, single, outer, ctx)),
    }
}

// ---------------------------------------------------------------------------
// Shared pieces
// ---------------------------------------------------------------------------

/// Re-emits a materialized row set (a pipeline breaker's output) in
/// [`exec::SCAN_BATCH_ROWS`]-row batches.
struct BatchEmitter {
    rows: std::vec::IntoIter<Row>,
    keys: std::vec::IntoIter<Vec<Value>>,
}

impl BatchEmitter {
    fn new(rows: Vec<Row>, keys: Vec<Vec<Value>>) -> Self {
        BatchEmitter {
            rows: rows.into_iter(),
            keys: keys.into_iter(),
        }
    }

    fn rows_only(rows: Vec<Row>) -> Self {
        Self::new(rows, Vec::new())
    }

    fn next(&mut self) -> Option<RowBatch> {
        let rows: Vec<Row> = self
            .rows
            .by_ref()
            .take(exec::SCAN_BATCH_ROWS as usize)
            .collect();
        if rows.is_empty() {
            return None;
        }
        let keys: Vec<Vec<Value>> = self.keys.by_ref().take(rows.len()).collect();
        Some(RowBatch { rows, keys })
    }
}

/// A filter predicate, pre-resolved to positional form where possible.
/// Compilation succeeds exactly when every column resolves uniquely in the
/// operator's own bindings and no subquery appears — in which case the
/// compiled program is value- and error-identical to frame evaluation —
/// so falling back to `Framed` never changes semantics.
enum ResidualPred {
    Compiled(CompiledExpr),
    Framed(Expr),
}

fn resolve_preds(preds: &[Expr], bindings: &[Binding]) -> Vec<ResidualPred> {
    preds
        .iter()
        .map(|e| match eval::compile_expr(e, bindings) {
            Some(c) => ResidualPred::Compiled(c),
            None => ResidualPred::Framed(e.clone()),
        })
        .collect()
}

/// One row through a conjunctive predicate list: `cpu_tuple_ops` is bumped
/// before each evaluation and the list short-circuits on the first
/// non-true, exactly like the interpreter's scan/filter loops.
fn keep_row(
    row: &Row,
    bindings: &[Binding],
    preds: &[ResidualPred],
    outer: &[Frame<'_>],
    ctx: &ExecContext<'_>,
) -> EngineResult<bool> {
    let mut frames: Option<Vec<Frame<'_>>> = None;
    for pred in preds {
        ctx.bump_cpu(1);
        let v = match pred {
            ResidualPred::Compiled(c) => eval::eval_compiled(c, row, ctx)?,
            ResidualPred::Framed(e) => {
                let frames = frames.get_or_insert_with(|| {
                    let mut f = Vec::with_capacity(outer.len() + 1);
                    f.push(Frame { bindings, row });
                    f.extend_from_slice(outer);
                    f
                });
                eval_expr(e, frames, ctx)?
            }
        };
        if truthiness(&v) != Some(true) {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Keeps only rows satisfying every predicate (materialized form, used by
/// the join phase and derived tables).
fn filter_rows(
    rel: Relation,
    preds: &[Expr],
    outer: &[Frame<'_>],
    ctx: &ExecContext<'_>,
) -> EngineResult<Relation> {
    let bindings = rel.bindings;
    let mut rows = Vec::with_capacity(rel.rows.len());
    'rows: for row in rel.rows {
        let mut frames = Vec::with_capacity(outer.len() + 1);
        frames.push(Frame {
            bindings: &bindings,
            row: &row,
        });
        frames.extend_from_slice(outer);
        for p in preds {
            ctx.bump_cpu(1);
            if truthiness(&eval_expr(p, &frames, ctx)?) != Some(true) {
                continue 'rows;
            }
        }
        rows.push(row);
    }
    Ok(Relation { bindings, rows })
}

// ---------------------------------------------------------------------------
// Scan operators (SeqScan / IndexRangeScan)
// ---------------------------------------------------------------------------

enum ScanIter<'e> {
    Heap(Box<dyn Iterator<Item = (RowId, &'e Row)> + 'e>),
    /// Index ranges pre-collect their row ids (index traversal is
    /// charge-free); heap pages are still touched lazily, per batch, in
    /// range order — identical LRU traffic to the interpreter.
    Rids(std::vec::IntoIter<RowId>),
}

struct ScanState<'e> {
    table: &'e Table,
    iter: ScanIter<'e>,
    kind: AccessKind,
    last_page: u64,
    residual: Vec<ResidualPred>,
    scanned: BatchedCounter<'e, 'e>,
}

/// Base-table scan: chooses the access path at open (from the actual bound
/// parameter values), then streams surviving rows in batches.
struct ScanExec<'e> {
    name: &'e str,
    alias: Option<&'e str>,
    single: &'e [Expr],
    outer: &'e [Frame<'e>],
    ctx: &'e ExecContext<'e>,
    bindings: Vec<Binding>,
    state: Option<ScanState<'e>>,
}

impl<'e> ScanExec<'e> {
    fn new(
        name: &'e str,
        alias: Option<&'e str>,
        single: &'e [Expr],
        outer: &'e [Frame<'e>],
        ctx: &'e ExecContext<'e>,
    ) -> Self {
        ScanExec {
            name,
            alias,
            single,
            outer,
            ctx,
            bindings: Vec::new(),
            state: None,
        }
    }
}

impl Operator for ScanExec<'_> {
    fn open(&mut self) -> EngineResult<Vec<Binding>> {
        let ctx = self.ctx;
        let table = ctx
            .db
            .table(self.name)
            .ok_or_else(|| EngineError::UnknownTable(self.name.to_string()))?;
        let binding_name = self.alias.unwrap_or(self.name);
        let eval_const = |e: &Expr| -> Option<Value> {
            if exec::expr_has_columns(e) {
                None
            } else {
                eval_expr(e, &[], ctx).ok()
            }
        };
        let choice = planner::choose_access_path(
            table,
            binding_name,
            self.single,
            ctx.db.seqscan_enabled(),
            ctx.db.indexscan_enabled(),
            &eval_const,
        );
        let bindings = exec::bindings_for_table(&table.schema, self.alias);
        // Predicates consumed by the index range are implied by the scan
        // bounds; only the rest are re-checked per row.
        let residual_exprs: Vec<&Expr> = self
            .single
            .iter()
            .enumerate()
            .filter(|(i, _)| !choice.consumed.contains(i))
            .map(|(_, e)| e)
            .collect();
        let residual = residual_exprs
            .iter()
            .map(|e| match eval::compile_expr(e, &bindings) {
                Some(c) => ResidualPred::Compiled(c),
                None => ResidualPred::Framed((*e).clone()),
            })
            .collect();
        let (iter, kind) = match &choice.path {
            AccessPath::SeqScan => (
                ScanIter::Heap(Box::new(table.heap.iter())),
                AccessKind::Sequential,
            ),
            AccessPath::IndexRange {
                column,
                low,
                high,
                clustered,
            } => {
                let idx = table
                    .index_on(*column)
                    .expect("planner only chooses existing indexes");
                ctx.bump_index_probes(1);
                let rids: Vec<RowId> = idx
                    .range(exec::bound_ref(low), exec::bound_ref(high))
                    .map(|(_, rid)| rid)
                    .collect();
                (
                    ScanIter::Rids(rids.into_iter()),
                    if *clustered {
                        AccessKind::Sequential
                    } else {
                        AccessKind::Random
                    },
                )
            }
        };
        self.state = Some(ScanState {
            table,
            iter,
            kind,
            last_page: u64::MAX,
            residual,
            scanned: BatchedCounter::new(ctx),
        });
        self.bindings = bindings;
        Ok(self.bindings.clone())
    }

    fn next_batch(&mut self) -> EngineResult<Option<RowBatch>> {
        let Some(state) = self.state.as_mut() else {
            return Ok(None);
        };
        let ScanState {
            table,
            iter,
            kind,
            last_page,
            residual,
            scanned,
        } = state;
        let mut rows: Vec<Row> = Vec::new();
        let mut exhausted = false;
        loop {
            let fetched = match iter {
                ScanIter::Heap(it) => it.next(),
                ScanIter::Rids(it) => match it.next() {
                    None => None,
                    Some(rid) => match table.heap.get(rid) {
                        // A dead row id costs nothing, as in the interpreter.
                        None => continue,
                        Some(row) => Some((rid, row)),
                    },
                },
            };
            let Some((rid, row)) = fetched else {
                exhausted = true;
                break;
            };
            let page = table.heap.geometry().page_of(rid);
            if page != *last_page {
                self.ctx.charge_page(table.schema.id, page, *kind);
                *last_page = page;
            }
            scanned.row_scanned();
            if residual.is_empty() || keep_row(row, &self.bindings, residual, self.outer, self.ctx)?
            {
                rows.push(row.clone());
            }
            if rows.len() as u64 == exec::SCAN_BATCH_ROWS {
                break;
            }
        }
        if exhausted {
            // Dropping the state flushes the batched row_scanned counter.
            self.state = None;
        }
        if rows.is_empty() {
            Ok(None)
        } else {
            Ok(Some(RowBatch {
                rows,
                keys: Vec::new(),
            }))
        }
    }
}

/// Derived table (FROM subquery): executes the lowered inner plan — a
/// pipeline breaker by construction — requalifies its bindings to the
/// alias, applies the pushed-down conjuncts, and re-emits batches.
struct DerivedExec<'e> {
    alias: &'e str,
    plan: &'e PhysicalPlan,
    single: &'e [Expr],
    outer: &'e [Frame<'e>],
    ctx: &'e ExecContext<'e>,
    emitter: Option<BatchEmitter>,
}

impl<'e> DerivedExec<'e> {
    fn new(
        alias: &'e str,
        plan: &'e PhysicalPlan,
        single: &'e [Expr],
        outer: &'e [Frame<'e>],
        ctx: &'e ExecContext<'e>,
    ) -> Self {
        DerivedExec {
            alias,
            plan,
            single,
            outer,
            ctx,
            emitter: None,
        }
    }
}

impl Operator for DerivedExec<'_> {
    fn open(&mut self) -> EngineResult<Vec<Binding>> {
        let mut rel = execute(self.plan, self.outer, self.ctx)?;
        for b in &mut rel.bindings {
            b.qualifier = Some(self.alias.to_string());
        }
        if !self.single.is_empty() {
            rel = filter_rows(rel, self.single, self.outer, self.ctx)?;
        }
        let bindings = rel.bindings.clone();
        self.emitter = Some(BatchEmitter::rows_only(rel.rows));
        Ok(bindings)
    }

    fn next_batch(&mut self) -> EngineResult<Option<RowBatch>> {
        Ok(self.emitter.as_mut().and_then(BatchEmitter::next))
    }
}

// ---------------------------------------------------------------------------
// Filter
// ---------------------------------------------------------------------------

/// Streaming conjunctive filter. Subquery-bearing predicates make it a
/// pipeline breaker: the child is drained first, then filtered in order,
/// so the subqueries' page touches land after the child's — exactly the
/// interpreter's sequencing.
struct FilterExec<'e> {
    child: Box<dyn Operator + 'e>,
    preds: Vec<Expr>,
    breaker: bool,
    outer: &'e [Frame<'e>],
    ctx: &'e ExecContext<'e>,
    in_bindings: Vec<Binding>,
    resolved: Vec<ResidualPred>,
    emitter: Option<BatchEmitter>,
}

impl<'e> FilterExec<'e> {
    fn new(
        child: Box<dyn Operator + 'e>,
        preds: Vec<Expr>,
        outer: &'e [Frame<'e>],
        ctx: &'e ExecContext<'e>,
    ) -> Self {
        let breaker = preds.iter().any(exec::contains_subquery);
        FilterExec {
            child,
            preds,
            breaker,
            outer,
            ctx,
            in_bindings: Vec::new(),
            resolved: Vec::new(),
            emitter: None,
        }
    }

    fn filter_batch(&self, rows: Vec<Row>) -> EngineResult<Vec<Row>> {
        let mut out = Vec::with_capacity(rows.len());
        for row in rows {
            if keep_row(
                &row,
                &self.in_bindings,
                &self.resolved,
                self.outer,
                self.ctx,
            )? {
                out.push(row);
            }
        }
        Ok(out)
    }
}

impl Operator for FilterExec<'_> {
    fn open(&mut self) -> EngineResult<Vec<Binding>> {
        self.in_bindings = self.child.open()?;
        self.resolved = resolve_preds(&self.preds, &self.in_bindings);
        Ok(self.in_bindings.clone())
    }

    fn next_batch(&mut self) -> EngineResult<Option<RowBatch>> {
        if self.breaker {
            if self.emitter.is_none() {
                let mut all = Vec::new();
                while let Some(batch) = self.child.next_batch()? {
                    all.extend(batch.rows);
                }
                let kept = self.filter_batch(all)?;
                self.emitter = Some(BatchEmitter::rows_only(kept));
            }
            return Ok(self.emitter.as_mut().and_then(BatchEmitter::next));
        }
        loop {
            let Some(batch) = self.child.next_batch()? else {
                return Ok(None);
            };
            let rows = self.filter_batch(batch.rows)?;
            if !rows.is_empty() {
                return Ok(Some(RowBatch {
                    rows,
                    keys: Vec::new(),
                }));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// HashJoin
// ---------------------------------------------------------------------------

/// Multi-input join block: materializes every FROM item in order, then
/// runs the greedy join phase (largest input drives; each step picks the
/// connected input minimizing the classic output-cardinality estimate),
/// applying post-filters as soon as their scopes are bound.
struct JoinExec<'e> {
    general: &'e GeneralPlan,
    outer: &'e [Frame<'e>],
    ctx: &'e ExecContext<'e>,
    emitter: Option<BatchEmitter>,
}

impl<'e> JoinExec<'e> {
    fn new(general: &'e GeneralPlan, outer: &'e [Frame<'e>], ctx: &'e ExecContext<'e>) -> Self {
        JoinExec {
            general,
            outer,
            ctx,
            emitter: None,
        }
    }
}

impl Operator for JoinExec<'_> {
    fn open(&mut self) -> EngineResult<Vec<Binding>> {
        let g = self.general;
        let (outer, ctx) = (self.outer, self.ctx);
        let names: Vec<String> = g
            .inputs
            .iter()
            .map(|n| n.scope_name().to_string())
            .collect();

        // Materialize each FROM item, in FROM order.
        let mut inputs: Vec<Relation> = Vec::with_capacity(g.inputs.len());
        for node in &g.inputs {
            let mut op = build_input(node, outer, ctx);
            let bindings = op.open()?;
            let mut rows = Vec::new();
            while let Some(batch) = op.next_batch()? {
                rows.extend(batch.rows);
            }
            inputs.push(Relation { bindings, rows });
        }

        let mut post = g.post.clone();
        let mut current = if inputs.is_empty() {
            Relation {
                bindings: vec![],
                rows: vec![vec![]],
            }
        } else {
            let driving = inputs
                .iter()
                .enumerate()
                .max_by_key(|(_, r)| r.rows.len())
                .map(|(i, _)| i)
                .expect("inputs nonempty");
            let mut bound: Vec<usize> = vec![driving];
            // The driving input is never revisited: move it out instead of
            // cloning the whole relation.
            let mut current = std::mem::take(&mut inputs[driving]);
            current = apply_ready_post_filters(current, &mut post, &names, &bound, outer, ctx)?;
            while bound.len() < inputs.len() {
                let next = pick_next_input(
                    current.rows.len(),
                    &inputs,
                    &names,
                    &g.edges,
                    &bound,
                    outer,
                    ctx,
                );
                let next_rel = &inputs[next];
                let my_edges: Vec<&planner::JoinEdge> = g
                    .edges
                    .iter()
                    .filter(|e| {
                        let l_bound = bound.iter().any(|&b| names[b] == e.left);
                        let r_bound = bound.iter().any(|&b| names[b] == e.right);
                        (l_bound && e.right == names[next]) || (r_bound && e.left == names[next])
                    })
                    .collect();
                current = if my_edges.is_empty() {
                    cross_join(current, next_rel, ctx)
                } else {
                    hash_join(current, next_rel, &my_edges, &names[next], outer, ctx)?
                };
                bound.push(next);
                current = apply_ready_post_filters(current, &mut post, &names, &bound, outer, ctx)?;
            }
            current
        };

        // Any post filters left reference nothing in FROM (constant or
        // purely correlated predicates): apply them row-wise now.
        if !post.is_empty() {
            let leftovers: Vec<Expr> = post.drain(..).map(|(e, _)| e).collect();
            current = filter_rows(current, &leftovers, outer, ctx)?;
        }

        let bindings = current.bindings.clone();
        self.emitter = Some(BatchEmitter::rows_only(current.rows));
        Ok(bindings)
    }

    fn next_batch(&mut self) -> EngineResult<Option<RowBatch>> {
        Ok(self.emitter.as_mut().and_then(BatchEmitter::next))
    }
}

/// Picks the next FROM-item to join in: among inputs connected to the
/// current result by an equi-join edge, the one minimizing the classic
/// output-cardinality estimate `current × candidate / distinct(candidate
/// join keys)` — which keeps low-distinct edges (TPC-H's nation-key joins)
/// from exploding the intermediate result.
fn pick_next_input(
    current_rows: usize,
    inputs: &[Relation],
    names: &[String],
    edges: &[planner::JoinEdge],
    bound: &[usize],
    outer: &[Frame<'_>],
    ctx: &ExecContext<'_>,
) -> usize {
    let is_bound = |i: usize| bound.contains(&i);
    let candidate_edges = |i: usize| -> Vec<&planner::JoinEdge> {
        edges
            .iter()
            .filter(|e| {
                (e.left == names[i] && bound.iter().any(|&b| names[b] == e.right))
                    || (e.right == names[i] && bound.iter().any(|&b| names[b] == e.left))
            })
            .collect()
    };
    let mut best: Option<(usize, f64)> = None;
    for i in 0..inputs.len() {
        if is_bound(i) {
            continue;
        }
        let my_edges = candidate_edges(i);
        if my_edges.is_empty() {
            continue;
        }
        let distinct = distinct_join_keys(&inputs[i], &my_edges, &names[i], outer, ctx).max(1);
        let est = current_rows as f64 * inputs[i].rows.len() as f64 / distinct as f64;
        if best.is_none_or(|(_, b)| est < b) {
            best = Some((i, est));
        }
    }
    if let Some((b, _)) = best {
        return b;
    }
    // No connected input: fall back to the smallest unbound one (cross join).
    (0..inputs.len())
        .filter(|&i| !is_bound(i))
        .min_by_key(|&i| inputs[i].rows.len())
        .expect("caller ensures an unbound input exists")
}

/// Number of distinct composite join keys a candidate input exposes over
/// the given edges (evaluation errors degrade to "all distinct", which
/// simply keeps the old smallest-input heuristic).
fn distinct_join_keys(
    input: &Relation,
    edges: &[&planner::JoinEdge],
    my_name: &str,
    outer: &[Frame<'_>],
    ctx: &ExecContext<'_>,
) -> usize {
    let key_exprs: Vec<&Expr> = edges
        .iter()
        .map(|e| {
            if e.right == my_name {
                &e.right_expr
            } else {
                &e.left_expr
            }
        })
        .collect();
    let mut set: HashSet<Vec<HashableValue>> = HashSet::with_capacity(input.rows.len());
    for row in &input.rows {
        let mut frames = Vec::with_capacity(outer.len() + 1);
        frames.push(Frame {
            bindings: &input.bindings,
            row,
        });
        frames.extend_from_slice(outer);
        let mut key = Vec::with_capacity(key_exprs.len());
        let mut ok = true;
        for k in &key_exprs {
            match eval_expr(k, &frames, ctx) {
                Ok(v) => key.push(v.hash_key()),
                Err(_) => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            return input.rows.len();
        }
        set.insert(key);
    }
    set.len()
}

/// Computes one side's composite join key for a row; `None` when any key
/// component is NULL (NULL keys never match, per SQL semantics).
fn join_key(
    row: &Row,
    bindings: &[Binding],
    keys: &[&Expr],
    outer: &[Frame<'_>],
    ctx: &ExecContext<'_>,
) -> EngineResult<Option<Vec<HashableValue>>> {
    let mut frames = Vec::with_capacity(outer.len() + 1);
    frames.push(Frame { bindings, row });
    frames.extend_from_slice(outer);
    let mut key = Vec::with_capacity(keys.len());
    for k in keys {
        let v = eval_expr(k, &frames, ctx)?;
        if v.is_null() {
            return Ok(None);
        }
        key.push(v.hash_key());
    }
    Ok(Some(key))
}

/// Concatenates a probe row with a matched build row, cloning each value
/// exactly once into a right-sized output row (no intermediate clone of
/// the probe side).
fn splice(left: &Row, right: &Row) -> Row {
    let mut combined = Vec::with_capacity(left.len() + right.len());
    combined.extend_from_slice(left);
    combined.extend_from_slice(right);
    combined
}

/// Hash join of `current` with the newly added `right` input. The hash
/// table is built on whichever side is smaller; output rows are always
/// `current ++ right` columns, emitted current-major with right matches in
/// ascending right-row order — identical to always building on `right`.
fn hash_join(
    current: Relation,
    right: &Relation,
    edges: &[&planner::JoinEdge],
    right_name: &str,
    outer: &[Frame<'_>],
    ctx: &ExecContext<'_>,
) -> EngineResult<Relation> {
    // For each edge, which side belongs to the right input?
    let mut right_keys: Vec<&Expr> = Vec::with_capacity(edges.len());
    let mut left_keys: Vec<&Expr> = Vec::with_capacity(edges.len());
    for e in edges {
        if e.right == right_name {
            left_keys.push(&e.left_expr);
            right_keys.push(&e.right_expr);
        } else {
            left_keys.push(&e.right_expr);
            right_keys.push(&e.left_expr);
        }
    }

    let mut bindings = current.bindings.clone();
    bindings.extend(right.bindings.iter().cloned());
    let mut rows = Vec::new();

    if current.rows.len() < right.rows.len() {
        // Build on `current` (the smaller side), probe with `right`. To
        // keep the output order current-major, matches are collected per
        // current row and emitted afterwards; probing in ascending right
        // order makes each match list ascending for free.
        let mut built: HashMap<Vec<HashableValue>, Vec<usize>> =
            HashMap::with_capacity(current.rows.len());
        for (i, row) in current.rows.iter().enumerate() {
            ctx.bump_cpu(1);
            if let Some(key) = join_key(row, &current.bindings, &left_keys, outer, ctx)? {
                built.entry(key).or_default().push(i);
            }
        }
        let mut matches: Vec<Vec<usize>> = vec![Vec::new(); current.rows.len()];
        for (ri, row) in right.rows.iter().enumerate() {
            ctx.bump_cpu(1);
            if let Some(key) = join_key(row, &right.bindings, &right_keys, outer, ctx)? {
                if let Some(hits) = built.get(&key) {
                    for &ci in hits {
                        matches[ci].push(ri);
                    }
                }
            }
        }
        for (row, right_rows) in current.rows.iter().zip(&matches) {
            for &ri in right_rows {
                ctx.bump_cpu(1);
                rows.push(splice(row, &right.rows[ri]));
            }
        }
    } else {
        // Build on `right`, probe with `current`.
        let mut built: HashMap<Vec<HashableValue>, Vec<usize>> =
            HashMap::with_capacity(right.rows.len());
        for (i, row) in right.rows.iter().enumerate() {
            ctx.bump_cpu(1);
            if let Some(key) = join_key(row, &right.bindings, &right_keys, outer, ctx)? {
                built.entry(key).or_default().push(i);
            }
        }
        for row in &current.rows {
            ctx.bump_cpu(1);
            let Some(key) = join_key(row, &current.bindings, &left_keys, outer, ctx)? else {
                continue;
            };
            if let Some(matches) = built.get(&key) {
                for &ri in matches {
                    ctx.bump_cpu(1);
                    rows.push(splice(row, &right.rows[ri]));
                }
            }
        }
    }
    Ok(Relation { bindings, rows })
}

/// Cartesian product (only reached for disconnected FROM items, which the
/// TPC-H workload never produces but the engine stays total for).
fn cross_join(current: Relation, right: &Relation, ctx: &ExecContext<'_>) -> Relation {
    let mut bindings = current.bindings.clone();
    bindings.extend(right.bindings.iter().cloned());
    let mut rows = Vec::with_capacity(current.rows.len() * right.rows.len());
    for l in &current.rows {
        for r in &right.rows {
            ctx.bump_cpu(1);
            rows.push(splice(l, r));
        }
    }
    Relation { bindings, rows }
}

fn apply_ready_post_filters(
    current: Relation,
    post: &mut Vec<(Expr, Vec<String>)>,
    names: &[String],
    bound: &[usize],
    outer: &[Frame<'_>],
    ctx: &ExecContext<'_>,
) -> EngineResult<Relation> {
    let bound_names: Vec<&str> = bound.iter().map(|&b| names[b].as_str()).collect();
    let mut ready = Vec::new();
    post.retain(|(e, needs)| {
        if needs.iter().all(|n| bound_names.contains(&n.as_str())) {
            ready.push(e.clone());
            false
        } else {
            true
        }
    });
    if ready.is_empty() {
        Ok(current)
    } else {
        filter_rows(current, &ready, outer, ctx)
    }
}

// ---------------------------------------------------------------------------
// Project
// ---------------------------------------------------------------------------

/// Projects the SELECT list and computes ORDER BY keys per row. Streams
/// unless an item or ORDER BY expression contains a subquery. A pure
/// `SELECT *` moves each input row into the output instead of cloning its
/// values.
struct ProjectExec<'e> {
    q: &'e Select,
    child: Box<dyn Operator + 'e>,
    outer: &'e [Frame<'e>],
    ctx: &'e ExecContext<'e>,
    breaker: bool,
    wildcard_only: bool,
    in_bindings: Vec<Binding>,
    out_bindings: Vec<Binding>,
    out_names: Vec<String>,
    emitter: Option<BatchEmitter>,
}

impl<'e> ProjectExec<'e> {
    fn new(
        q: &'e Select,
        child: Box<dyn Operator + 'e>,
        outer: &'e [Frame<'e>],
        ctx: &'e ExecContext<'e>,
    ) -> Self {
        let item_subquery = q.items.iter().any(|i| match i {
            SelectItem::Expr { expr, .. } => exec::contains_subquery(expr),
            SelectItem::Wildcard => false,
        });
        let order_subquery = q.order_by.iter().any(|o| exec::contains_subquery(&o.expr));
        ProjectExec {
            q,
            child,
            outer,
            ctx,
            breaker: item_subquery || order_subquery,
            wildcard_only: matches!(q.items.as_slice(), [SelectItem::Wildcard]),
            in_bindings: Vec::new(),
            out_bindings: Vec::new(),
            out_names: Vec::new(),
            emitter: None,
        }
    }

    fn project_batch(&self, in_rows: Vec<Row>) -> EngineResult<(Vec<Row>, Vec<Vec<Value>>)> {
        let names: Vec<&str> = self.out_names.iter().map(|s| s.as_str()).collect();
        let mut rows = Vec::with_capacity(in_rows.len());
        let mut keys = Vec::with_capacity(in_rows.len());
        for row in in_rows {
            self.ctx.bump_cpu(1);
            let mut frames = Vec::with_capacity(self.outer.len() + 1);
            frames.push(Frame {
                bindings: &self.in_bindings,
                row: &row,
            });
            frames.extend_from_slice(self.outer);
            if self.wildcard_only {
                // `SELECT *`: the output row IS the input row — compute the
                // sort key against it and move it, no per-value clone.
                let key = exec::sort_key_for_row(
                    &self.q.order_by,
                    &names,
                    &row,
                    &frames,
                    self.ctx,
                    None,
                )?;
                keys.push(key);
                drop(frames);
                rows.push(row);
            } else {
                let mut out_row = Vec::with_capacity(self.out_bindings.len());
                for item in &self.q.items {
                    match item {
                        SelectItem::Wildcard => out_row.extend(row.iter().cloned()),
                        SelectItem::Expr { expr, .. } => {
                            out_row.push(eval_expr(expr, &frames, self.ctx)?)
                        }
                    }
                }
                let key = exec::sort_key_for_row(
                    &self.q.order_by,
                    &names,
                    &out_row,
                    &frames,
                    self.ctx,
                    None,
                )?;
                keys.push(key);
                rows.push(out_row);
            }
        }
        Ok((rows, keys))
    }
}

impl Operator for ProjectExec<'_> {
    fn open(&mut self) -> EngineResult<Vec<Binding>> {
        self.in_bindings = self.child.open()?;
        self.out_bindings = exec::output_bindings(self.q, &self.in_bindings);
        self.out_names = self.out_bindings.iter().map(|b| b.name.clone()).collect();
        Ok(self.out_bindings.clone())
    }

    fn next_batch(&mut self) -> EngineResult<Option<RowBatch>> {
        if self.breaker {
            if self.emitter.is_none() {
                let mut all = Vec::new();
                while let Some(batch) = self.child.next_batch()? {
                    all.extend(batch.rows);
                }
                let (rows, keys) = self.project_batch(all)?;
                self.emitter = Some(BatchEmitter::new(rows, keys));
            }
            return Ok(self.emitter.as_mut().and_then(BatchEmitter::next));
        }
        let Some(batch) = self.child.next_batch()? else {
            return Ok(None);
        };
        let (rows, keys) = self.project_batch(batch.rows)?;
        Ok(Some(RowBatch { rows, keys }))
    }
}

// ---------------------------------------------------------------------------
// HashAggregate
// ---------------------------------------------------------------------------

/// Hash aggregation: folds input batches into group accumulators, then
/// finalizes through [`exec::project_groups`] (HAVING, the select-list
/// projection with aggregates substituted, ORDER BY keys). Folding streams
/// unless a group-by key or aggregate argument contains a subquery.
struct AggregateExec<'e> {
    q: &'e Select,
    child: Box<dyn Operator + 'e>,
    outer: &'e [Frame<'e>],
    ctx: &'e ExecContext<'e>,
    breaker: bool,
    in_bindings: Vec<Binding>,
    emitter: Option<BatchEmitter>,
}

impl<'e> AggregateExec<'e> {
    fn new(
        q: &'e Select,
        child: Box<dyn Operator + 'e>,
        outer: &'e [Frame<'e>],
        ctx: &'e ExecContext<'e>,
    ) -> Self {
        let specs = exec::collect_agg_specs(q);
        let breaker = q.group_by.iter().any(exec::contains_subquery)
            || specs
                .iter()
                .any(|s| s.arg.as_ref().is_some_and(exec::contains_subquery));
        AggregateExec {
            q,
            child,
            outer,
            ctx,
            breaker,
            in_bindings: Vec::new(),
            emitter: None,
        }
    }

    fn fold_row(
        &self,
        row: &Row,
        specs: &[AggSpec],
        groups: &mut HashMap<Vec<HashableValue>, GroupState>,
        order: &mut Vec<Vec<HashableValue>>,
    ) -> EngineResult<()> {
        self.ctx.bump_cpu(1);
        let mut frames = Vec::with_capacity(self.outer.len() + 1);
        frames.push(Frame {
            bindings: &self.in_bindings,
            row,
        });
        frames.extend_from_slice(self.outer);
        let mut key = Vec::with_capacity(self.q.group_by.len());
        for g in &self.q.group_by {
            key.push(eval_expr(g, &frames, self.ctx)?.hash_key());
        }
        let group = match groups.entry(key.clone()) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                order.push(key);
                e.insert(GroupState {
                    rep_row: row.clone(),
                    accs: specs.iter().map(Acc::new).collect(),
                })
            }
        };
        for (spec, acc) in specs.iter().zip(group.accs.iter_mut()) {
            let v = match (&spec.arg, spec.star) {
                (_, true) | (None, _) => None,
                (Some(arg), false) => Some(eval_expr(arg, &frames, self.ctx)?),
            };
            acc.update(v)?;
        }
        Ok(())
    }
}

impl Operator for AggregateExec<'_> {
    fn open(&mut self) -> EngineResult<Vec<Binding>> {
        self.in_bindings = self.child.open()?;
        Ok(exec::output_bindings(self.q, &self.in_bindings))
    }

    fn next_batch(&mut self) -> EngineResult<Option<RowBatch>> {
        if self.emitter.is_none() {
            let specs = exec::collect_agg_specs(self.q);
            let mut groups: HashMap<Vec<HashableValue>, GroupState> = HashMap::new();
            let mut order: Vec<Vec<HashableValue>> = Vec::new();
            if self.breaker {
                let mut all = Vec::new();
                while let Some(batch) = self.child.next_batch()? {
                    all.extend(batch.rows);
                }
                for row in &all {
                    self.fold_row(row, &specs, &mut groups, &mut order)?;
                }
            } else {
                while let Some(batch) = self.child.next_batch()? {
                    for row in &batch.rows {
                        self.fold_row(row, &specs, &mut groups, &mut order)?;
                    }
                }
            }
            let (rel, keys) = exec::project_groups(
                self.q,
                &self.in_bindings,
                &specs,
                groups,
                order,
                self.outer,
                self.ctx,
            )?;
            self.emitter = Some(BatchEmitter::new(rel.rows, keys));
        }
        Ok(self.emitter.as_mut().and_then(BatchEmitter::next))
    }
}

// ---------------------------------------------------------------------------
// Fused scan→filter→aggregate
// ---------------------------------------------------------------------------

/// The fusion rule's executor: one pass over the base table in borrowed
/// [`exec::SCAN_BATCH_ROWS`]-row batches, predicates and aggregate updates
/// evaluated positionally against borrowed rows, statistics charged once
/// per batch. Finishes through the same [`exec::project_groups`] as the
/// general tree, which is what keeps the two shapes byte-identical.
struct FusedExec<'e> {
    q: &'e Select,
    plan: &'e FusedPlan,
    outer: &'e [Frame<'e>],
    ctx: &'e ExecContext<'e>,
    emitter: Option<BatchEmitter>,
}

impl<'e> FusedExec<'e> {
    fn new(
        q: &'e Select,
        plan: &'e FusedPlan,
        outer: &'e [Frame<'e>],
        ctx: &'e ExecContext<'e>,
    ) -> Self {
        FusedExec {
            q,
            plan,
            outer,
            ctx,
            emitter: None,
        }
    }

    fn run(&self) -> EngineResult<(Relation, Vec<Vec<Value>>)> {
        let (plan, ctx) = (self.plan, self.ctx);
        let table = ctx
            .db
            .table(&plan.table)
            .ok_or_else(|| EngineError::UnknownTable(plan.table.clone()))?;
        let eval_const = |e: &Expr| -> Option<Value> {
            if exec::expr_has_columns(e) {
                None
            } else {
                eval_expr(e, &[], ctx).ok()
            }
        };
        let choice = planner::choose_access_path(
            table,
            &plan.binding_name,
            &plan.single,
            ctx.db.seqscan_enabled(),
            ctx.db.indexscan_enabled(),
            &eval_const,
        );
        let residual: Vec<&CompiledExpr> = plan
            .compiled_single
            .iter()
            .enumerate()
            .filter(|(i, _)| !choice.consumed.contains(i))
            .map(|(_, c)| c)
            .collect();

        let mut groups: HashMap<Vec<HashableValue>, GroupState> = HashMap::new();
        let mut order: Vec<Vec<HashableValue>> = Vec::new();

        // Folds one batch of borrowed rows: predicate pass, then
        // accumulator updates, with the statistics for the whole batch
        // charged in one go.
        let mut fold_batch = |batch: &[&Row]| -> EngineResult<()> {
            ctx.bump_rows_scanned(batch.len() as u64);
            ctx.bump_scan_batches(1);
            let mut cpu = 0u64;
            'rows: for row in batch {
                for pred in &residual {
                    cpu += 1;
                    if truthiness(&eval::eval_compiled(pred, row, ctx)?) != Some(true) {
                        continue 'rows;
                    }
                }
                for pred in &plan.compiled_post {
                    cpu += 1;
                    if truthiness(&eval::eval_compiled(pred, row, ctx)?) != Some(true) {
                        continue 'rows;
                    }
                }
                cpu += 1; // the aggregation update the general loop charges
                let mut key = Vec::with_capacity(plan.group_by.len());
                for g in &plan.group_by {
                    key.push(eval::eval_compiled(g, row, ctx)?.hash_key());
                }
                let group = match groups.entry(key.clone()) {
                    std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                    std::collections::hash_map::Entry::Vacant(e) => {
                        order.push(key);
                        e.insert(GroupState {
                            rep_row: row.to_vec(),
                            accs: plan.specs.iter().map(Acc::new).collect(),
                        })
                    }
                };
                for (arg, acc) in plan.agg_args.iter().zip(group.accs.iter_mut()) {
                    let v = match arg {
                        None => None,
                        Some(a) => Some(eval::eval_compiled(a, row, ctx)?),
                    };
                    acc.update(v)?;
                }
            }
            ctx.bump_cpu(cpu);
            Ok(())
        };

        let batch_cap = exec::SCAN_BATCH_ROWS as usize;
        let mut batch: Vec<&Row> = Vec::with_capacity(batch_cap);
        match &choice.path {
            AccessPath::SeqScan => {
                let mut last_page = u64::MAX;
                for (rid, row) in table.heap.iter() {
                    let page = table.heap.geometry().page_of(rid);
                    if page != last_page {
                        ctx.charge_page(table.schema.id, page, AccessKind::Sequential);
                        last_page = page;
                    }
                    batch.push(row);
                    if batch.len() == batch_cap {
                        fold_batch(&batch)?;
                        batch.clear();
                    }
                }
            }
            AccessPath::IndexRange {
                column,
                low,
                high,
                clustered,
            } => {
                let idx = table
                    .index_on(*column)
                    .expect("planner only chooses existing indexes");
                ctx.bump_index_probes(1);
                let kind = if *clustered {
                    AccessKind::Sequential
                } else {
                    AccessKind::Random
                };
                let mut last_page = u64::MAX;
                for (_, rid) in idx.range(exec::bound_ref(low), exec::bound_ref(high)) {
                    let Some(row) = table.heap.get(rid) else {
                        continue;
                    };
                    let page = table.heap.geometry().page_of(rid);
                    if page != last_page {
                        ctx.charge_page(table.schema.id, page, kind);
                        last_page = page;
                    }
                    batch.push(row);
                    if batch.len() == batch_cap {
                        fold_batch(&batch)?;
                        batch.clear();
                    }
                }
            }
        }
        if !batch.is_empty() {
            fold_batch(&batch)?;
        }

        let (rel, keys) = exec::project_groups(
            self.q,
            &plan.bindings,
            &plan.specs,
            groups,
            order,
            self.outer,
            ctx,
        )?;
        Ok((rel, keys))
    }
}

impl Operator for FusedExec<'_> {
    fn open(&mut self) -> EngineResult<Vec<Binding>> {
        Ok(exec::output_bindings(self.q, &self.plan.bindings))
    }

    fn next_batch(&mut self) -> EngineResult<Option<RowBatch>> {
        if self.emitter.is_none() {
            let (rel, keys) = self.run()?;
            self.emitter = Some(BatchEmitter::new(rel.rows, keys));
        }
        Ok(self.emitter.as_mut().and_then(BatchEmitter::next))
    }
}

// ---------------------------------------------------------------------------
// Distinct, Sort, Limit
// ---------------------------------------------------------------------------

/// Streaming DISTINCT over whole output rows, preserving first-seen order
/// and the row-parallel sort keys. Charges nothing, like the interpreter.
struct DistinctExec<'e> {
    child: Box<dyn Operator + 'e>,
    seen: HashSet<Vec<HashableValue>>,
}

impl<'e> DistinctExec<'e> {
    fn new(child: Box<dyn Operator + 'e>) -> Self {
        DistinctExec {
            child,
            seen: HashSet::new(),
        }
    }
}

impl Operator for DistinctExec<'_> {
    fn open(&mut self) -> EngineResult<Vec<Binding>> {
        self.child.open()
    }

    fn next_batch(&mut self) -> EngineResult<Option<RowBatch>> {
        loop {
            let Some(batch) = self.child.next_batch()? else {
                return Ok(None);
            };
            let mut rows = Vec::with_capacity(batch.rows.len());
            let mut keys = Vec::with_capacity(batch.keys.len());
            for (row, key) in batch.rows.into_iter().zip(batch.keys) {
                let k: Vec<HashableValue> = row.iter().map(Value::hash_key).collect();
                if self.seen.insert(k) {
                    rows.push(row);
                    keys.push(key);
                }
            }
            if !rows.is_empty() {
                return Ok(Some(RowBatch { rows, keys }));
            }
        }
    }
}

/// Pipeline breaker: drains the child, charges the interpreter's `n·log n`
/// comparison estimate once, and re-emits rows in key order. The sort keys
/// were computed by the projection stage; they are consumed here.
struct SortExec<'e> {
    q: &'e Select,
    child: Box<dyn Operator + 'e>,
    ctx: &'e ExecContext<'e>,
    emitter: Option<BatchEmitter>,
}

impl<'e> SortExec<'e> {
    fn new(q: &'e Select, child: Box<dyn Operator + 'e>, ctx: &'e ExecContext<'e>) -> Self {
        SortExec {
            q,
            child,
            ctx,
            emitter: None,
        }
    }
}

impl Operator for SortExec<'_> {
    fn open(&mut self) -> EngineResult<Vec<Binding>> {
        self.child.open()
    }

    fn next_batch(&mut self) -> EngineResult<Option<RowBatch>> {
        if self.emitter.is_none() {
            let mut rows: Vec<Row> = Vec::new();
            let mut sort_keys: Vec<Vec<Value>> = Vec::new();
            while let Some(batch) = self.child.next_batch()? {
                rows.extend(batch.rows);
                sort_keys.extend(batch.keys);
            }
            let descs: Vec<bool> = self.q.order_by.iter().map(|o| o.desc).collect();
            let n = rows.len();
            self.ctx
                .bump_cpu((n as f64 * (n.max(2) as f64).log2()) as u64);
            let mut idx: Vec<usize> = (0..rows.len()).collect();
            idx.sort_by(|&a, &b| {
                for (k, desc) in sort_keys[a].iter().zip(sort_keys[b].iter()).zip(&descs) {
                    let ((x, y), desc) = (k, *desc);
                    let ord = x.sort_cmp(y);
                    let ord = if desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            let mut sorted = Vec::with_capacity(rows.len());
            for i in idx {
                sorted.push(std::mem::take(&mut rows[i]));
            }
            self.emitter = Some(BatchEmitter::rows_only(sorted));
        }
        Ok(self.emitter.as_mut().and_then(BatchEmitter::next))
    }
}

/// LIMIT truncates after its input is fully produced — the interpreter
/// never terminated upstream work early, and row/page counters must not
/// change, so neither does the pipeline.
struct LimitExec<'e> {
    limit: u64,
    child: Box<dyn Operator + 'e>,
    emitter: Option<BatchEmitter>,
}

impl<'e> LimitExec<'e> {
    fn new(limit: u64, child: Box<dyn Operator + 'e>) -> Self {
        LimitExec {
            limit,
            child,
            emitter: None,
        }
    }
}

impl Operator for LimitExec<'_> {
    fn open(&mut self) -> EngineResult<Vec<Binding>> {
        self.child.open()
    }

    fn next_batch(&mut self) -> EngineResult<Option<RowBatch>> {
        if self.emitter.is_none() {
            let mut rows: Vec<Row> = Vec::new();
            while let Some(batch) = self.child.next_batch()? {
                rows.extend(batch.rows);
            }
            rows.truncate(self.limit as usize);
            self.emitter = Some(BatchEmitter::rows_only(rows));
        }
        Ok(self.emitter.as_mut().and_then(BatchEmitter::next))
    }
}

// ---------------------------------------------------------------------------
// EXPLAIN
// ---------------------------------------------------------------------------

/// Indented plan lines: (depth, text).
type Lines = Vec<(usize, String)>;

fn wrap(line: String, child: Lines) -> Lines {
    let mut out = vec![(0, line)];
    out.extend(child.into_iter().map(|(d, l)| (d + 1, l)));
    out
}

/// Renders the physical operator tree for a SELECT without executing it:
/// one output row per operator, children indented under their parent, each
/// with its estimated row count, and the fusion rule marked where applied.
///
/// Access paths are the planner's real choices; the join order shown is
/// the *estimated* order (execution refines it with actual cardinalities,
/// so an `(estimated)` marker is included).
pub(crate) fn explain(q: &Select, ctx: &ExecContext<'_>) -> EngineResult<Vec<String>> {
    let shape = lower_shape(q, ctx.db, ctx.db.kernel_enabled());
    let (lines, _) = explain_shape(q, &shape, ctx)?;
    Ok(lines
        .into_iter()
        .map(|(d, l)| format!("{}{}", "  ".repeat(d), l))
        .collect())
}

fn explain_shape(q: &Select, shape: &Shape, ctx: &ExecContext<'_>) -> EngineResult<(Lines, f64)> {
    let (mut block, mut est) = match shape {
        Shape::Fused(f) => explain_fused(q, f, ctx)?,
        Shape::General(g) => explain_general(q, g, ctx)?,
    };
    if q.quantifier == SetQuantifier::Distinct {
        block = wrap(format!("distinct, ~{est:.0} rows"), block);
    }
    if !q.order_by.is_empty() {
        block = wrap(
            format!("sort: {} key(s), ~{est:.0} rows", q.order_by.len()),
            block,
        );
    }
    if let Some(l) = q.limit {
        est = est.min(l as f64);
        block = wrap(format!("limit {l}, ~{est:.0} rows"), block);
    }
    Ok((block, est))
}

fn path_desc(table: &Table, path: &AccessPath) -> String {
    match path {
        AccessPath::SeqScan => "seq scan".to_string(),
        AccessPath::IndexRange {
            column,
            low,
            high,
            clustered,
        } => {
            let col = &table.schema.columns[*column].name;
            let fmt_bound = |b: &std::ops::Bound<Value>, open: &str| match b {
                std::ops::Bound::Unbounded => open.to_string(),
                std::ops::Bound::Included(v) => format!("{v}="),
                std::ops::Bound::Excluded(v) => format!("{v}"),
            };
            format!(
                "{} index range on {col} [{} .. {})",
                if *clustered { "clustered" } else { "secondary" },
                fmt_bound(low, "-inf"),
                fmt_bound(high, "+inf"),
            )
        }
    }
}

/// One scan line in the interpreter's long-standing format.
fn scan_line(
    name: &str,
    binding_name: &str,
    single: &[Expr],
    ctx: &ExecContext<'_>,
) -> EngineResult<(String, f64)> {
    let table = ctx
        .db
        .table(name)
        .ok_or_else(|| EngineError::UnknownTable(name.to_string()))?;
    let eval_const = |e: &Expr| -> Option<Value> {
        if exec::expr_has_columns(e) {
            None
        } else {
            eval_expr(e, &[], ctx).ok()
        }
    };
    let choice = planner::choose_access_path(
        table,
        binding_name,
        single,
        ctx.db.seqscan_enabled(),
        ctx.db.indexscan_enabled(),
        &eval_const,
    );
    let alias_note = if binding_name != name {
        format!(" as {binding_name}")
    } else {
        String::new()
    };
    Ok((
        format!(
            "scan {name}{alias_note}: {}, {} filter(s), ~{:.0} rows (cost {:.1})",
            path_desc(table, &choice.path),
            single.len().saturating_sub(choice.consumed.len()),
            choice.estimated_rows,
            choice.cost,
        ),
        choice.estimated_rows,
    ))
}

fn explain_general(
    q: &Select,
    g: &GeneralPlan,
    ctx: &ExecContext<'_>,
) -> EngineResult<(Lines, f64)> {
    let names: Vec<&str> = g.inputs.iter().map(InputNode::scope_name).collect();
    let mut input_blocks: Vec<Option<Lines>> = Vec::with_capacity(g.inputs.len());
    let mut estimates: Vec<f64> = Vec::with_capacity(g.inputs.len());
    for node in &g.inputs {
        match node {
            InputNode::Table { name, single, .. } => {
                let (line, est) = scan_line(name, node.scope_name(), single, ctx)?;
                input_blocks.push(Some(vec![(0, line)]));
                estimates.push(est);
            }
            InputNode::Derived { alias, plan, .. } => {
                let (sub, _) = explain_shape(&plan.select, &plan.shape, ctx)?;
                input_blocks.push(Some(wrap(
                    format!("derived table {alias}: subquery materialization"),
                    sub,
                )));
                estimates.push(1000.0);
            }
        }
    }

    let (mut block, mut est) = if g.inputs.is_empty() {
        (Lines::new(), 1.0)
    } else if g.inputs.len() == 1 {
        (input_blocks[0].take().expect("just built"), estimates[0])
    } else {
        // Estimated greedy join order.
        let driving = estimates
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.total_cmp(b))
            .map(|(i, _)| i)
            .expect("from nonempty");
        let mut block = wrap(
            format!("drive with {} (estimated)", names[driving]),
            input_blocks[driving].take().expect("just built"),
        );
        let mut est = estimates[driving];
        let mut bound = vec![driving];
        while bound.len() < g.inputs.len() {
            let next = (0..g.inputs.len())
                .filter(|i| !bound.contains(i))
                .filter(|&i| {
                    g.edges.iter().any(|e| {
                        (e.left == names[i] && bound.iter().any(|&b| names[b] == e.right))
                            || (e.right == names[i] && bound.iter().any(|&b| names[b] == e.left))
                    })
                })
                .min_by(|&a, &b| estimates[a].total_cmp(&estimates[b]))
                .or_else(|| (0..g.inputs.len()).find(|i| !bound.contains(i)));
            let Some(next) = next else { break };
            let keys: Vec<String> = g
                .edges
                .iter()
                .filter(|e| e.left == names[next] || e.right == names[next])
                .map(|e| format!("{} = {}", e.left_expr, e.right_expr))
                .collect();
            let mut children = block;
            children.extend(input_blocks[next].take().expect("unbound until now"));
            if keys.is_empty() {
                est *= estimates[next];
                block = wrap(
                    format!("cross join {}, ~{est:.0} rows", names[next]),
                    children,
                );
            } else {
                est = est.max(estimates[next]);
                block = wrap(
                    format!(
                        "hash join {} on {}, ~{est:.0} rows",
                        names[next],
                        keys.join(" and ")
                    ),
                    children,
                );
            }
            bound.push(next);
        }
        (block, est)
    };

    if !g.post.is_empty() {
        block = wrap(
            format!("post-filter: {} residual predicate(s)", g.post.len()),
            block,
        );
    }

    if g.aggregated {
        if q.group_by.is_empty() {
            est = 1.0;
            block = wrap("aggregate: global, ~1 rows".to_string(), block);
        } else {
            let groups: Vec<String> = q.group_by.iter().map(|g| g.to_string()).collect();
            block = wrap(
                format!(
                    "aggregate: hash group by {}, ~{est:.0} rows",
                    groups.join(", ")
                ),
                block,
            );
        }
    } else {
        block = wrap(
            format!("project: {} column(s), ~{est:.0} rows", q.items.len()),
            block,
        );
    }
    Ok((block, est))
}

fn explain_fused(q: &Select, f: &FusedPlan, ctx: &ExecContext<'_>) -> EngineResult<(Lines, f64)> {
    let (line, scan_est) = scan_line(&f.table, &f.binding_name, &f.single, ctx)?;
    let mut child = vec![(0, line)];
    if !f.compiled_post.is_empty() {
        child = wrap(
            format!(
                "post-filter: {} residual predicate(s)",
                f.compiled_post.len()
            ),
            child,
        );
    }
    let (agg_line, est) = if q.group_by.is_empty() {
        (
            "aggregate: global [fused scan→filter→aggregate], ~1 rows".to_string(),
            1.0,
        )
    } else {
        let groups: Vec<String> = q.group_by.iter().map(|g| g.to_string()).collect();
        (
            format!(
                "aggregate: hash group by {} [fused scan→filter→aggregate], ~{scan_est:.0} rows",
                groups.join(", ")
            ),
            scan_est,
        )
    };
    Ok((wrap(agg_line, child), est))
}
