//! The per-database worker pool behind morsel-driven parallel execution.
//!
//! The paper's cluster exploits two parallelism tiers — inter-query (one
//! query per node) and intra-query (one sub-query per virtual partition).
//! This module supplies the third: intra-node parallelism across the cores
//! of one node (the paper's testbed machines were 2-way SMPs). A
//! [`WorkerPool`] is started lazily per [`crate::Database`] the first time
//! a statement runs with `SET parallel_workers` ≥ 2 and lives for the
//! database's lifetime; the physical layer
//! ([`crate::physical`]) splits eligible scans into page-aligned morsels
//! and runs one scan→filter→partial-aggregate pipeline per morsel on this
//! pool, merging partial states in morsel order so results and statistics
//! stay byte-identical to serial execution.
//!
//! The pool itself is deliberately generic: a queue of boxed jobs, a
//! condvar, and [`WorkerPool::scoped_run`], which lets callers enqueue
//! closures borrowing stack data and blocks until every one of them has
//! finished — the same lifetime contract as [`std::thread::scope`], built
//! on persistent threads so per-statement dispatch costs a queue push, not
//! a thread spawn.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// State shared between the pool handle and its worker threads. Workers
/// hold only this (not the pool), so dropping the pool handle is what
/// initiates shutdown.
struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
}

impl PoolShared {
    fn worker_loop(&self) {
        loop {
            let job = {
                let mut q = self.queue.lock();
                loop {
                    if let Some(job) = q.pop_front() {
                        break job;
                    }
                    if self.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    self.available.wait(&mut q);
                }
            };
            job();
        }
    }
}

/// A fixed-overhead pool of execution worker threads, grown on demand and
/// joined when dropped.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads.lock().len())
            .finish()
    }
}

impl Default for WorkerPool {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkerPool {
    /// An empty pool; threads start on the first [`Self::ensure_threads`].
    pub fn new() -> WorkerPool {
        WorkerPool {
            shared: Arc::new(PoolShared {
                queue: Mutex::new(VecDeque::new()),
                available: Condvar::new(),
                shutdown: AtomicBool::new(false),
            }),
            threads: Mutex::new(Vec::new()),
        }
    }

    /// Grows the pool to at least `n` threads (never shrinks — a session
    /// lowering `parallel_workers` just leaves the extras idle).
    pub fn ensure_threads(&self, n: usize) {
        let mut threads = self.threads.lock();
        while threads.len() < n {
            let shared = self.shared.clone();
            let name = format!("apuama-worker-{}", threads.len());
            threads.push(
                std::thread::Builder::new()
                    .name(name)
                    .spawn(move || shared.worker_loop())
                    .expect("spawning an execution worker"),
            );
        }
    }

    /// Current thread count.
    pub fn threads(&self) -> usize {
        self.threads.lock().len()
    }

    /// Runs every task on the pool and blocks until all of them have
    /// finished, so tasks may borrow from the caller's stack. A panicking
    /// task does not poison the pool: the panic is captured, the remaining
    /// tasks still run, and the first payload is re-raised here on the
    /// calling thread.
    pub fn scoped_run<'s>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 's>>) {
        if tasks.is_empty() {
            return;
        }
        let done = Arc::new((Mutex::new(tasks.len()), Condvar::new()));
        let panic: Arc<Mutex<Option<Box<dyn std::any::Any + Send>>>> = Arc::new(Mutex::new(None));
        {
            let mut q = self.shared.queue.lock();
            for task in tasks {
                // SAFETY: the transmute erases the borrow lifetime `'s` so
                // the job fits the queue's `'static` bound. The wait loop
                // below does not return until every job enqueued here has
                // run to completion, so no borrow outlives its referent —
                // the same contract `std::thread::scope` enforces.
                let job: Box<dyn FnOnce() + Send + 'static> =
                    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 's>, Job>(task) };
                let done = done.clone();
                let panic = panic.clone();
                q.push_back(Box::new(move || {
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(job)) {
                        let mut slot = panic.lock();
                        if slot.is_none() {
                            *slot = Some(payload);
                        }
                    }
                    let (count, cv) = &*done;
                    let mut remaining = count.lock();
                    *remaining -= 1;
                    if *remaining == 0 {
                        cv.notify_all();
                    }
                }));
            }
            self.shared.available.notify_all();
        }
        let (count, cv) = &*done;
        let mut remaining = count.lock();
        while *remaining > 0 {
            cv.wait(&mut remaining);
        }
        drop(remaining);
        let payload = panic.lock().take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.available.notify_all();
        for handle in self.threads.get_mut().drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn scoped_run_executes_every_task_and_sees_borrows() {
        let pool = WorkerPool::new();
        pool.ensure_threads(3);
        let sum = AtomicU64::new(0);
        let inputs: Vec<u64> = (1..=100).collect();
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = inputs
            .iter()
            .map(|v| {
                let sum = &sum;
                Box::new(move || {
                    sum.fetch_add(*v, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.scoped_run(tasks);
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn ensure_threads_grows_but_never_shrinks() {
        let pool = WorkerPool::new();
        pool.ensure_threads(2);
        assert_eq!(pool.threads(), 2);
        pool.ensure_threads(1);
        assert_eq!(pool.threads(), 2);
        pool.ensure_threads(4);
        assert_eq!(pool.threads(), 4);
    }

    #[test]
    fn task_panic_propagates_without_poisoning_the_pool() {
        let pool = WorkerPool::new();
        pool.ensure_threads(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scoped_run(vec![
                Box::new(|| panic!("worker exploded")) as Box<dyn FnOnce() + Send>,
                Box::new(|| {}),
            ]);
        }));
        assert!(result.is_err());
        // Pool still works after the panic.
        let ran = AtomicU64::new(0);
        pool.scoped_run(vec![Box::new(|| {
            ran.fetch_add(1, Ordering::Relaxed);
        }) as Box<dyn FnOnce() + Send + '_>]);
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }
}
