//! LRU plan cache for the prepared-statement path.
//!
//! Entries are keyed by the normalized statement fingerprint: the trimmed
//! SQL text — parameter placeholders like `$1` are already part of the
//! text, so structurally identical statements share one entry no matter
//! what values they are later bound with — plus the plan-shaping session
//! knobs: `enable_kernel`, because it changes what lowering produces (the
//! fused plan vs the general tree), and `enable_seqscan`, because it
//! steers the access-path choice. Keying on them means toggling a knob
//! can never serve a plan compiled under the other setting; the variants
//! simply coexist in the cache. A cached plan is the lowered
//! [`PhysicalPlan`] (which carries the parsed `Select`) and its parameter
//! count.
//!
//! Staleness is handled two ways so the planner's access-path choice stays
//! honest:
//!
//! * **DDL invalidation**: every entry records the catalog version it was
//!   compiled under; `CREATE TABLE` / `CREATE INDEX` bump the database's
//!   version counter and any entry from an older catalog is discarded on
//!   lookup.
//! * **Table-stats invalidation**: every entry records a stats token — the
//!   `(pages, rows)` of each referenced table at compile time. If a
//!   table's cardinality has drifted since, the entry is recompiled; this
//!   matters because index-range extraction is resolved from bound values
//!   per execution, but the *kernel shape* and column resolution are not.

use std::collections::HashMap;
use std::sync::Arc;

use crate::physical::PhysicalPlan;

/// Maximum number of cached plans per database before LRU eviction.
const PLAN_CACHE_CAPACITY: usize = 64;

/// A compiled statement, shared between the cache and executing queries.
#[derive(Debug)]
pub(crate) struct CachedPlan {
    /// The lowered operator tree (access paths are still chosen per
    /// execution from the bound values).
    pub(crate) physical: PhysicalPlan,
    pub(crate) n_params: usize,
    /// Catalog version this plan was compiled under.
    pub(crate) catalog_version: u64,
    /// `(table, pages, rows)` for every referenced table at compile time.
    pub(crate) stats_token: Vec<(String, u64, u64)>,
}

/// Counters surfaced through `Database::plan_cache_stats` for tests and
/// the benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups that returned a still-valid plan.
    pub hits: u64,
    /// Lookups that found nothing and compiled fresh.
    pub misses: u64,
    /// Entries pushed out by the LRU capacity bound.
    pub evictions: u64,
    /// Entries discarded because DDL bumped the catalog version.
    pub invalidations: u64,
    /// Entries recompiled because a referenced table's stats drifted.
    pub replans: u64,
}

#[derive(Debug)]
struct Entry {
    plan: Arc<CachedPlan>,
    /// Logical timestamp of the last hit, for LRU eviction.
    last_used: u64,
}

#[derive(Debug, Default)]
pub(crate) struct PlanCache {
    entries: HashMap<String, Entry>,
    tick: u64,
    stats: PlanCacheStats,
}

impl PlanCache {
    /// Looks up a plan by fingerprint, validating it against the current
    /// catalog version and table stats. `current_stats` recomputes the
    /// stats token for a cached entry's referenced tables; a mismatch
    /// counts as a replan and the stale entry is dropped.
    pub(crate) fn lookup(
        &mut self,
        fingerprint: &str,
        catalog_version: u64,
        current_stats: impl Fn(&[(String, u64, u64)]) -> Vec<(String, u64, u64)>,
    ) -> Option<Arc<CachedPlan>> {
        self.tick += 1;
        let Some(entry) = self.entries.get_mut(fingerprint) else {
            self.stats.misses += 1;
            return None;
        };
        if entry.plan.catalog_version != catalog_version {
            self.stats.invalidations += 1;
            self.stats.misses += 1;
            self.entries.remove(fingerprint);
            return None;
        }
        if current_stats(&entry.plan.stats_token) != entry.plan.stats_token {
            self.stats.replans += 1;
            self.stats.misses += 1;
            self.entries.remove(fingerprint);
            return None;
        }
        entry.last_used = self.tick;
        self.stats.hits += 1;
        Some(Arc::clone(&entry.plan))
    }

    /// Inserts a freshly compiled plan, evicting the least-recently-used
    /// entry if the cache is at capacity.
    pub(crate) fn insert(&mut self, fingerprint: String, plan: Arc<CachedPlan>) {
        self.tick += 1;
        if self.entries.len() >= PLAN_CACHE_CAPACITY && !self.entries.contains_key(&fingerprint) {
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&victim);
                self.stats.evictions += 1;
            }
        }
        self.entries.insert(
            fingerprint,
            Entry {
                plan,
                last_used: self.tick,
            },
        );
    }

    pub(crate) fn stats(&self) -> PlanCacheStats {
        self.stats
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }
}

/// Normalizes raw SQL plus the plan-shaping session knobs into the cache
/// fingerprint. `enable_kernel` is part of the key because it selects the
/// lowered shape (fused vs general); `enable_seqscan` because it steers
/// the planner's access-path choice, so toggling it mid-session must never
/// serve a plan compiled under the other setting. Execution-only knobs
/// (like `enable_batch_exec`, which changes how a tree runs but not what
/// is lowered) are deliberately *not* keyed.
pub(crate) fn fingerprint(sql: &str, kernel_on: bool, seqscan_on: bool) -> String {
    format!(
        "{}#k={}#s={}",
        sql.trim(),
        kernel_on as u8,
        seqscan_on as u8
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(version: u64) -> Arc<CachedPlan> {
        let select = apuama_sql::parse_statement("select 1")
            .ok()
            .and_then(|s| match s {
                apuama_sql::ast::Statement::Select(q) => Some(q),
                _ => None,
            })
            .expect("trivial select parses");
        let db = crate::db::Database::in_memory();
        Arc::new(CachedPlan {
            physical: crate::physical::lower(&select, &db, false),
            n_params: 0,
            catalog_version: version,
            stats_token: Vec::new(),
        })
    }

    #[test]
    fn hit_after_insert_and_miss_when_version_bumps() {
        let mut cache = PlanCache::default();
        cache.insert("q".into(), plan(1));
        assert!(cache.lookup("q", 1, |t| t.to_vec()).is_some());
        assert!(cache.lookup("q", 2, |t| t.to_vec()).is_none());
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.invalidations, 1);
    }

    #[test]
    fn stats_drift_forces_replan() {
        let mut cache = PlanCache::default();
        let mut p = plan(1);
        Arc::get_mut(&mut p).unwrap().stats_token = vec![("t".into(), 1, 10)];
        cache.insert("q".into(), p);
        // Same catalog, same stats: hit.
        assert!(cache.lookup("q", 1, |t| t.to_vec()).is_some());
        // Table grew: replan.
        assert!(cache
            .lookup("q", 1, |_| vec![("t".into(), 2, 500)])
            .is_none());
        assert_eq!(cache.stats().replans, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut cache = PlanCache::default();
        for i in 0..PLAN_CACHE_CAPACITY {
            cache.insert(format!("q{i}"), plan(1));
        }
        // Touch q0 so q1 becomes the coldest entry.
        assert!(cache.lookup("q0", 1, |t| t.to_vec()).is_some());
        cache.insert("overflow".into(), plan(1));
        assert_eq!(cache.len(), PLAN_CACHE_CAPACITY);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.lookup("q0", 1, |t| t.to_vec()).is_some());
        assert!(cache.lookup("q1", 1, |t| t.to_vec()).is_none());
    }

    #[test]
    fn fingerprint_trims_whitespace_and_keys_on_the_session_knobs() {
        assert_eq!(fingerprint("  select 1\n", true, true), "select 1#k=1#s=1");
        assert_eq!(fingerprint("  select 1\n", false, true), "select 1#k=0#s=1");
        assert_eq!(fingerprint("select 1", true, false), "select 1#k=1#s=0");
        assert_ne!(
            fingerprint("select 1", true, true),
            fingerprint("select 1", false, true)
        );
        assert_ne!(
            fingerprint("select 1", true, true),
            fingerprint("select 1", true, false)
        );
    }
}
