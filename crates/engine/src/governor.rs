//! Query lifecycle governance: cooperative cancellation, deadlines, and
//! memory budgets.
//!
//! The engine never preempts a statement; instead every operator checks a
//! [`QueryGovernor`] at batch boundaries ([`crate::SCAN_BATCH_ROWS`] rows),
//! so a cancelled or expired statement stops within one batch of work and
//! unwinds through ordinary `Result` propagation — buffer-pool state,
//! seqscan refcounts, and pooled composers are released by the same drop
//! paths an error takes. Memory used by pipeline breakers (hash join
//! build sides, aggregation tables, sorts, distinct sets) is charged to a
//! [`MemoryGauge`] at the same batch grain; exceeding the node's budget
//! fails the statement with [`EngineError::ResourceExhausted`] instead of
//! letting state grow without bound.
//!
//! See DESIGN.md §11 "Resource governance" for the deadline hierarchy
//! (statement < SVP query < admission queue) and shed policy.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::{EngineError, EngineResult};

// ---------------------------------------------------------------------------
// CancelToken
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct TokenInner {
    flag: AtomicBool,
    /// Deterministic trip wire for tests: when >= 0, each observation
    /// decrements it and the token fires once it reaches zero. `-1` means
    /// disabled. This lets a test cancel "at the k-th batch boundary"
    /// without racing a second thread.
    fuse: AtomicI64,
}

/// Cooperative cancellation handle. Cloning shares the same flag;
/// [`CancelToken::child`] creates a linked token that observes the parent
/// (cancelling a parent cancels every descendant, but cancelling a child —
/// e.g. one abandoned sub-query attempt — leaves siblings running).
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
    parent: Option<Box<CancelToken>>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(TokenInner {
                flag: AtomicBool::new(false),
                fuse: AtomicI64::new(-1),
            }),
            parent: None,
        }
    }

    /// A fresh token linked under `self`: it fires when either it or any
    /// ancestor is cancelled.
    pub fn child(&self) -> CancelToken {
        CancelToken {
            inner: Arc::new(TokenInner {
                flag: AtomicBool::new(false),
                fuse: AtomicI64::new(-1),
            }),
            parent: Some(Box::new(self.clone())),
        }
    }

    /// Requests cancellation; the statement observes it at its next batch
    /// boundary.
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::Release);
    }

    /// Arms the deterministic fuse: the token fires on the `n`-th
    /// observation (n = 0 fires on the first check). Test support for
    /// pinning a cancel to an exact batch boundary.
    pub fn cancel_after_checks(&self, n: u64) {
        self.inner.fuse.store(n as i64, Ordering::Release);
    }

    /// Non-mutating read of the flag (does not burn the fuse).
    pub fn is_cancelled(&self) -> bool {
        if self.inner.flag.load(Ordering::Acquire) {
            return true;
        }
        match &self.parent {
            Some(p) => p.is_cancelled(),
            None => false,
        }
    }

    /// One cancellation-point observation: burns the fuse (if armed) and
    /// reports whether the token has fired.
    fn observe(&self) -> bool {
        if self.inner.fuse.load(Ordering::Relaxed) >= 0
            && self.inner.fuse.fetch_sub(1, Ordering::AcqRel) <= 0
        {
            self.inner.flag.store(true, Ordering::Release);
        }
        self.is_cancelled()
    }
}

// ---------------------------------------------------------------------------
// MemoryGauge
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct GaugeInner {
    used: AtomicU64,
    peak: AtomicU64,
    /// Budget in bytes; 0 means unlimited.
    limit: AtomicU64,
}

/// Node-level memory accounting for pipeline-breaker state. Shared by
/// every statement on a [`crate::Database`]; statements charge growth at
/// batch grain and release their total on completion (success, error, or
/// cancel — the release rides the [`crate::exec::ExecContext`] drop).
#[derive(Debug, Clone)]
pub struct MemoryGauge {
    inner: Arc<GaugeInner>,
}

impl Default for MemoryGauge {
    fn default() -> Self {
        Self::unlimited()
    }
}

impl MemoryGauge {
    /// Gauge with no budget: accounting only (`peak_bytes` still tracks).
    pub fn unlimited() -> Self {
        Self::with_limit(0)
    }

    /// Gauge that fails charges once usage exceeds `limit_bytes`
    /// (0 = unlimited).
    pub fn with_limit(limit_bytes: u64) -> Self {
        MemoryGauge {
            inner: Arc::new(GaugeInner {
                used: AtomicU64::new(0),
                peak: AtomicU64::new(0),
                limit: AtomicU64::new(limit_bytes),
            }),
        }
    }

    /// Replaces the budget (0 = unlimited). Takes effect on the next
    /// charge.
    pub fn set_limit(&self, limit_bytes: u64) {
        self.inner.limit.store(limit_bytes, Ordering::Release);
    }

    pub fn limit_bytes(&self) -> u64 {
        self.inner.limit.load(Ordering::Acquire)
    }

    /// Bytes currently charged across all in-flight statements.
    pub fn used_bytes(&self) -> u64 {
        self.inner.used.load(Ordering::Acquire)
    }

    /// High-water mark since creation.
    pub fn peak_bytes(&self) -> u64 {
        self.inner.peak.load(Ordering::Acquire)
    }

    /// Charges `bytes` of operator-state growth. On budget overflow the
    /// charge is rolled back and the statement gets
    /// [`EngineError::ResourceExhausted`].
    pub fn charge(&self, bytes: u64) -> EngineResult<()> {
        let used = self.inner.used.fetch_add(bytes, Ordering::AcqRel) + bytes;
        let limit = self.inner.limit.load(Ordering::Acquire);
        if limit != 0 && used > limit {
            self.inner.used.fetch_sub(bytes, Ordering::AcqRel);
            return Err(EngineError::ResourceExhausted(format!(
                "memory budget exceeded: {used} of {limit} bytes"
            )));
        }
        self.inner.peak.fetch_max(used, Ordering::AcqRel);
        Ok(())
    }

    /// Returns `bytes` previously charged.
    pub fn release(&self, bytes: u64) {
        self.inner.used.fetch_sub(bytes, Ordering::AcqRel);
    }
}

// ---------------------------------------------------------------------------
// QueryGovernor
// ---------------------------------------------------------------------------

/// Per-statement governance handle: a [`CancelToken`] plus an optional
/// wall-clock deadline. Cheap to clone and to check; the engine consults
/// it once per batch.
#[derive(Debug, Clone, Default)]
pub struct QueryGovernor {
    cancel: CancelToken,
    deadline: Option<Instant>,
}

impl QueryGovernor {
    pub fn new() -> Self {
        Self::default()
    }

    /// Governor around an existing token (e.g. one shared by all
    /// sub-queries of an SVP query).
    pub fn with_token(cancel: CancelToken) -> Self {
        QueryGovernor {
            cancel,
            deadline: None,
        }
    }

    /// Absolute deadline; checks fail with [`EngineError::Timeout`] once
    /// passed. When a deadline is already set the earlier one wins.
    pub fn with_deadline_at(mut self, deadline: Instant) -> Self {
        self.deadline = Some(match self.deadline {
            Some(d) => d.min(deadline),
            None => deadline,
        });
        self
    }

    /// Relative deadline from now.
    pub fn with_deadline_in(self, budget: Duration) -> Self {
        self.with_deadline_at(Instant::now() + budget)
    }

    /// A governor whose token is a child of this one's (same deadline):
    /// cancelling the child does not fire the parent, but cancelling the
    /// parent fires the child.
    pub fn child(&self) -> QueryGovernor {
        QueryGovernor {
            cancel: self.cancel.child(),
            deadline: self.deadline,
        }
    }

    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    pub fn is_cancelled(&self) -> bool {
        self.cancel.is_cancelled()
    }

    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// One cancellation point: fails with [`EngineError::Cancelled`] if the
    /// token fired, or [`EngineError::Timeout`] if the deadline passed.
    pub fn check(&self) -> EngineResult<()> {
        if self.cancel.observe() {
            return Err(EngineError::Cancelled("query cancelled".into()));
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Err(EngineError::Timeout("statement deadline exceeded".into()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_fires_once_cancelled() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());
        let g = QueryGovernor::with_token(t);
        assert!(matches!(g.check(), Err(EngineError::Cancelled(_))));
    }

    #[test]
    fn child_token_observes_parent_but_not_vice_versa() {
        let parent = CancelToken::new();
        let child = parent.child();
        child.cancel();
        assert!(child.is_cancelled());
        assert!(!parent.is_cancelled());
        let parent2 = CancelToken::new();
        let child2 = parent2.child();
        parent2.cancel();
        assert!(child2.is_cancelled());
    }

    #[test]
    fn fuse_trips_on_nth_observation() {
        let t = CancelToken::new();
        t.cancel_after_checks(2);
        let g = QueryGovernor::with_token(t);
        assert!(g.check().is_ok());
        assert!(g.check().is_ok());
        assert!(matches!(g.check(), Err(EngineError::Cancelled(_))));
        // Stays cancelled.
        assert!(g.check().is_err());
    }

    #[test]
    fn deadline_in_past_fails_with_timeout() {
        let g = QueryGovernor::new().with_deadline_in(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(2));
        assert!(matches!(g.check(), Err(EngineError::Timeout(_))));
    }

    #[test]
    fn earlier_deadline_wins() {
        let far = Instant::now() + Duration::from_secs(600);
        let near = Instant::now() + Duration::from_millis(1);
        let g = QueryGovernor::new()
            .with_deadline_at(far)
            .with_deadline_at(near);
        assert_eq!(g.deadline(), Some(near));
        let g2 = QueryGovernor::new()
            .with_deadline_at(near)
            .with_deadline_at(far);
        assert_eq!(g2.deadline(), Some(near));
    }

    #[test]
    fn gauge_tracks_used_peak_and_enforces_limit() {
        let g = MemoryGauge::with_limit(100);
        g.charge(60).unwrap();
        g.charge(30).unwrap();
        assert_eq!(g.used_bytes(), 90);
        assert_eq!(g.peak_bytes(), 90);
        let err = g.charge(20).unwrap_err();
        assert!(matches!(err, EngineError::ResourceExhausted(_)));
        // Failed charge rolled back.
        assert_eq!(g.used_bytes(), 90);
        g.release(90);
        assert_eq!(g.used_bytes(), 0);
        assert_eq!(g.peak_bytes(), 90);
        // Unlimited gauge never fails but still tracks peak.
        let u = MemoryGauge::unlimited();
        u.charge(1 << 40).unwrap();
        assert_eq!(u.peak_bytes(), 1 << 40);
    }
}
