//! Per-statement execution statistics.
//!
//! These counters are the contract between the real execution (this crate)
//! and the simulated timing (`apuama-sim`): the engine counts *work*, the
//! simulator prices it. Buffer-pool numbers come from diffing
//! [`apuama_storage::BufferStats`] around the statement; CPU-side numbers
//! are counted by the executor.

use apuama_storage::BufferStats;

/// Everything a statement did, in hardware-neutral units.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExecStats {
    /// Buffer pool activity attributed to this statement.
    pub buffer: BufferStats,
    /// Tuples read out of heaps (scan output before filtering).
    pub rows_scanned: u64,
    /// Tuples flowing through CPU-bound operators (filter evaluations,
    /// hash-join build+probe, aggregation updates, sort comparisons are
    /// folded in at `n log n`).
    pub cpu_tuple_ops: u64,
    /// Rows in the statement result.
    pub rows_out: u64,
    /// Approximate bytes in the statement result (network transfer input
    /// for the cost model).
    pub bytes_out: u64,
    /// Number of index probes performed (subquery lookups, secondary-index
    /// point reads).
    pub index_probes: u64,
}

impl ExecStats {
    /// Component-wise sum, used when one logical operation runs several
    /// statements (e.g. a refresh transaction).
    pub fn merge(&mut self, other: &ExecStats) {
        self.buffer.hits += other.buffer.hits;
        self.buffer.misses_seq += other.buffer.misses_seq;
        self.buffer.misses_rand += other.buffer.misses_rand;
        self.buffer.evictions += other.buffer.evictions;
        self.rows_scanned += other.rows_scanned;
        self.cpu_tuple_ops += other.cpu_tuple_ops;
        self.rows_out += other.rows_out;
        self.bytes_out += other.bytes_out;
        self.index_probes += other.index_probes;
    }
}

/// Wall-clock phase breakdown of a pipelined parallel execution: how long
/// until the composer received its first partial, how much composition work
/// overlapped still-running sub-queries, and how much ran serially after
/// the last partial. All durations are measured by the orchestrator (the
/// engine counts *work* in [`ExecStats`]; phases are *time*).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTiming {
    /// Dispatch (all sub-queries released) → first partial consumed.
    pub first_partial_ms: f64,
    /// Composition time spent while at least one sub-query was still
    /// outstanding (work the pipeline hides).
    pub compose_overlap_ms: f64,
    /// Composition time after the last partial arrived (the serial tail —
    /// what a non-pipelined executor pays in full).
    pub compose_tail_ms: f64,
    /// Dispatch → final result, total.
    pub total_ms: f64,
}

impl PhaseTiming {
    /// Fraction of total composition time hidden behind sub-query
    /// execution (0 when no composition work happened).
    pub fn overlap_fraction(&self) -> f64 {
        let compose = self.compose_overlap_ms + self.compose_tail_ms;
        if compose <= 0.0 {
            0.0
        } else {
            self.compose_overlap_ms / compose
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_overlap_fraction_is_bounded() {
        let t = PhaseTiming {
            first_partial_ms: 1.0,
            compose_overlap_ms: 3.0,
            compose_tail_ms: 1.0,
            total_ms: 10.0,
        };
        assert!((t.overlap_fraction() - 0.75).abs() < 1e-12);
        assert_eq!(PhaseTiming::default().overlap_fraction(), 0.0);
    }

    #[test]
    fn merge_adds_componentwise() {
        let mut a = ExecStats {
            rows_scanned: 10,
            cpu_tuple_ops: 5,
            ..ExecStats::default()
        };
        let b = ExecStats {
            rows_scanned: 3,
            rows_out: 1,
            ..ExecStats::default()
        };
        a.merge(&b);
        assert_eq!(a.rows_scanned, 13);
        assert_eq!(a.cpu_tuple_ops, 5);
        assert_eq!(a.rows_out, 1);
    }
}
