//! Per-statement execution statistics.
//!
//! These counters are the contract between the real execution (this crate)
//! and the simulated timing (`apuama-sim`): the engine counts *work*, the
//! simulator prices it. Buffer-pool numbers come from diffing
//! [`apuama_storage::BufferStats`] around the statement; CPU-side numbers
//! are counted by the executor.

use apuama_storage::BufferStats;

/// Everything a statement did, in hardware-neutral units.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExecStats {
    /// Buffer pool activity attributed to this statement.
    pub buffer: BufferStats,
    /// Tuples read out of heaps (scan output before filtering).
    pub rows_scanned: u64,
    /// Tuples flowing through CPU-bound operators (filter evaluations,
    /// hash-join build+probe, aggregation updates, sort comparisons are
    /// folded in at `n log n`).
    pub cpu_tuple_ops: u64,
    /// Rows in the statement result.
    pub rows_out: u64,
    /// Approximate bytes in the statement result (network transfer input
    /// for the cost model).
    pub bytes_out: u64,
    /// Number of index probes performed (subquery lookups, secondary-index
    /// point reads).
    pub index_probes: u64,
}

impl ExecStats {
    /// Component-wise sum, used when one logical operation runs several
    /// statements (e.g. a refresh transaction).
    pub fn merge(&mut self, other: &ExecStats) {
        self.buffer.hits += other.buffer.hits;
        self.buffer.misses_seq += other.buffer.misses_seq;
        self.buffer.misses_rand += other.buffer.misses_rand;
        self.buffer.evictions += other.buffer.evictions;
        self.rows_scanned += other.rows_scanned;
        self.cpu_tuple_ops += other.cpu_tuple_ops;
        self.rows_out += other.rows_out;
        self.bytes_out += other.bytes_out;
        self.index_probes += other.index_probes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_componentwise() {
        let mut a = ExecStats {
            rows_scanned: 10,
            cpu_tuple_ops: 5,
            ..ExecStats::default()
        };
        let b = ExecStats {
            rows_scanned: 3,
            rows_out: 1,
            ..ExecStats::default()
        };
        a.merge(&b);
        assert_eq!(a.rows_scanned, 13);
        assert_eq!(a.cpu_tuple_ops, 5);
        assert_eq!(a.rows_out, 1);
    }
}
