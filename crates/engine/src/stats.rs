//! Per-statement execution statistics.
//!
//! These counters are the contract between the real execution (this crate)
//! and the simulated timing (`apuama-sim`): the engine counts *work*, the
//! simulator prices it. Buffer-pool numbers come from diffing
//! [`apuama_storage::BufferStats`] around the statement; CPU-side numbers
//! are counted by the executor.

use apuama_storage::BufferStats;

/// Everything a statement did, in hardware-neutral units.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExecStats {
    /// Buffer pool activity attributed to this statement.
    pub buffer: BufferStats,
    /// Tuples read out of heaps (scan output before filtering).
    pub rows_scanned: u64,
    /// Tuples flowing through CPU-bound operators (filter evaluations,
    /// hash-join build+probe, aggregation updates, sort comparisons are
    /// folded in at `n log n`).
    pub cpu_tuple_ops: u64,
    /// Rows in the statement result.
    pub rows_out: u64,
    /// Approximate bytes in the statement result (network transfer input
    /// for the cost model).
    pub bytes_out: u64,
    /// Number of index probes performed (subquery lookups, secondary-index
    /// point reads).
    pub index_probes: u64,
    /// Scan batches dispatched through the physical pipeline (full
    /// [`crate::exec::SCAN_BATCH_ROWS`]-row batches plus the final partial
    /// one per scan). Identical between the fused and general shapes; the
    /// sim can price per-batch dispatch overhead off it.
    pub scan_batches: u64,
    /// Heap pages a sequential scan skipped outright because the page's
    /// zone map proved no row could satisfy a pushed-down comparison.
    /// Pruned pages are *not* charged to the buffer pool and their rows
    /// are not counted in `rows_scanned`.
    pub pages_pruned: u64,
}

impl ExecStats {
    /// Component-wise sum, used when one logical operation runs several
    /// statements (e.g. a refresh transaction).
    pub fn merge(&mut self, other: &ExecStats) {
        self.buffer.hits += other.buffer.hits;
        self.buffer.misses_seq += other.buffer.misses_seq;
        self.buffer.misses_rand += other.buffer.misses_rand;
        self.buffer.evictions += other.buffer.evictions;
        self.rows_scanned += other.rows_scanned;
        self.cpu_tuple_ops += other.cpu_tuple_ops;
        self.rows_out += other.rows_out;
        self.bytes_out += other.bytes_out;
        self.index_probes += other.index_probes;
        self.scan_batches += other.scan_batches;
        self.pages_pruned += other.pages_pruned;
    }
}

/// Wall-clock phase breakdown of a pipelined parallel execution: how long
/// until the composer received its first partial, how much composition work
/// overlapped still-running sub-queries, and how much ran serially after
/// the last partial. All durations are measured by the orchestrator (the
/// engine counts *work* in [`ExecStats`]; phases are *time*).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTiming {
    /// Dispatch (all sub-queries released) → first partial consumed.
    pub first_partial_ms: f64,
    /// Composition time spent while at least one sub-query was still
    /// outstanding (work the pipeline hides).
    pub compose_overlap_ms: f64,
    /// Composition time after the last partial arrived (the serial tail —
    /// what a non-pipelined executor pays in full).
    pub compose_tail_ms: f64,
    /// Dispatch → final result, total.
    pub total_ms: f64,
}

impl PhaseTiming {
    /// Fraction of total composition time hidden behind sub-query
    /// execution (0 when no composition work happened).
    pub fn overlap_fraction(&self) -> f64 {
        let compose = self.compose_overlap_ms + self.compose_tail_ms;
        if compose <= 0.0 {
            0.0
        } else {
            self.compose_overlap_ms / compose
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_overlap_fraction_is_bounded() {
        let t = PhaseTiming {
            first_partial_ms: 1.0,
            compose_overlap_ms: 3.0,
            compose_tail_ms: 1.0,
            total_ms: 10.0,
        };
        assert!((t.overlap_fraction() - 0.75).abs() < 1e-12);
        assert_eq!(PhaseTiming::default().overlap_fraction(), 0.0);
    }

    #[test]
    fn merge_adds_componentwise() {
        let mut a = ExecStats {
            rows_scanned: 10,
            cpu_tuple_ops: 5,
            ..ExecStats::default()
        };
        let b = ExecStats {
            rows_scanned: 3,
            rows_out: 1,
            ..ExecStats::default()
        };
        a.merge(&b);
        assert_eq!(a.rows_scanned, 13);
        assert_eq!(a.cpu_tuple_ops, 5);
        assert_eq!(a.rows_out, 1);
    }

    /// Scan counters are flushed once per [`crate::exec::SCAN_BATCH_ROWS`]
    /// batch rather than once per row; totals must be exactly the row
    /// count, including the final partial batch.
    #[test]
    fn batched_scan_charges_are_exact() {
        use apuama_sql::Value;
        let mut d = crate::Database::in_memory();
        d.execute("create table t (k int not null, primary key (k)) clustered by (k)")
            .unwrap();
        // 2500 rows = two full 1024-row batches plus a 452-row remainder.
        let rows: Vec<Vec<Value>> = (0..2500i64).map(|i| vec![Value::Int(i)]).collect();
        d.load_table("t", rows).unwrap();
        let out = d.query("select count(*) as n from t").unwrap();
        assert_eq!(out.rows[0][0], Value::Int(2500));
        assert_eq!(out.stats.rows_scanned, 2500);
        // 2 full batches + 1 partial.
        assert_eq!(out.stats.scan_batches, 3);
        // An index range scans exactly the rows in range, same batching.
        d.query("set enable_seqscan = off").unwrap();
        let out = d
            .query("select count(*) as n from t where k >= 100 and k < 2100")
            .unwrap();
        assert_eq!(out.rows[0][0], Value::Int(2000));
        assert_eq!(out.stats.rows_scanned, 2000);
        assert_eq!(out.stats.scan_batches, 2);
    }

    /// The fused kernel charges statistics per batch too; its totals must
    /// equal the interpreted pipeline's per-row totals on the same query.
    #[test]
    fn kernel_batch_charges_equal_interpreted_totals() {
        use apuama_sql::Value;
        let mut d = crate::Database::in_memory();
        d.execute("create table t (k int not null, v float, primary key (k)) clustered by (k)")
            .unwrap();
        let rows: Vec<Vec<Value>> = (0..3000i64)
            .map(|i| vec![Value::Int(i), Value::Float((i % 5) as f64)])
            .collect();
        d.load_table("t", rows).unwrap();
        let sql = "select sum(v) as s, count(*) as n from t where k >= $1 and k < $2 and v > $3";
        let params = [Value::Int(50), Value::Int(2950), Value::Float(0.5)];
        let kernel = d.query_bound(sql, &params).unwrap();
        d.query("set enable_kernel = off").unwrap();
        let interpreted = d.query_bound(sql, &params).unwrap();
        assert_eq!(kernel.rows, interpreted.rows);
        assert_eq!(kernel.stats.rows_scanned, interpreted.stats.rows_scanned);
        assert_eq!(kernel.stats.cpu_tuple_ops, interpreted.stats.cpu_tuple_ops);
        assert_eq!(kernel.stats.index_probes, interpreted.stats.index_probes);
        assert_eq!(kernel.stats.scan_batches, interpreted.stats.scan_batches);
        assert_eq!(
            kernel.stats.buffer.accesses(),
            interpreted.stats.buffer.accesses()
        );
    }

    /// The batch-exec fast paths accumulate cpu charges locally and flush
    /// them per batch; every counter must still equal the legacy row-at-a-
    /// time totals exactly — on the fused shape, the general aggregate
    /// shape, and a join — for both text and bound execution.
    #[test]
    fn batch_exec_charges_equal_legacy_totals() {
        use apuama_sql::Value;
        let mut d = crate::Database::in_memory();
        d.execute("create table t (k int not null, v float, primary key (k)) clustered by (k)")
            .unwrap();
        d.execute("create table u (k int not null, w float, primary key (k)) clustered by (k)")
            .unwrap();
        let rows: Vec<Vec<Value>> = (0..3000i64)
            .map(|i| vec![Value::Int(i), Value::Float((i % 5) as f64)])
            .collect();
        d.load_table("t", rows).unwrap();
        let urows: Vec<Vec<Value>> = (0..500i64)
            .map(|i| vec![Value::Int(i * 3), Value::Float(i as f64)])
            .collect();
        d.load_table("u", urows).unwrap();
        let cases: &[(&str, Vec<Value>)] = &[
            (
                "select sum(v) as s, count(*) as n from t where k >= $1 and k < $2 and v > $3",
                vec![Value::Int(50), Value::Int(2950), Value::Float(0.5)],
            ),
            (
                "select v, count(*) as n from t where k < $1 group by v order by v",
                vec![Value::Int(2000)],
            ),
            (
                "select t.v, u.w from t, u where t.k = u.k and u.w < $1 order by t.v, u.w",
                vec![Value::Float(200.0)],
            ),
        ];
        for (sql, params) in cases {
            d.query("set enable_batch_exec = on").unwrap();
            let fast = d.query_bound(sql, params).unwrap();
            d.query("set enable_batch_exec = off").unwrap();
            let legacy = d.query_bound(sql, params).unwrap();
            assert_eq!(fast.rows, legacy.rows, "{sql}");
            assert_eq!(fast.stats.rows_scanned, legacy.stats.rows_scanned, "{sql}");
            assert_eq!(
                fast.stats.cpu_tuple_ops, legacy.stats.cpu_tuple_ops,
                "{sql}"
            );
            assert_eq!(fast.stats.index_probes, legacy.stats.index_probes, "{sql}");
            assert_eq!(fast.stats.scan_batches, legacy.stats.scan_batches, "{sql}");
            assert_eq!(fast.stats.bytes_out, legacy.stats.bytes_out, "{sql}");
            assert_eq!(
                fast.stats.buffer.accesses(),
                legacy.stats.buffer.accesses(),
                "{sql}"
            );
        }
        d.query("set enable_batch_exec = on").unwrap();
    }

    /// Zone-map pruning accounting, pinned exactly: pruned pages are
    /// counted in `pages_pruned`, generate no buffer-pool access, and
    /// contribute nothing to `rows_scanned` / `scan_batches` — identically
    /// in every execution mode.
    #[test]
    fn zone_map_pruning_accounting_is_exact() {
        use apuama_sql::Value;
        use apuama_storage::PageGeometry;
        let mut d = crate::Database::in_memory();
        d.execute("create table t (k int not null, g int, primary key (k)) clustered by (k)")
            .unwrap();
        let rows: Vec<Vec<Value>> = (0..3000i64)
            .map(|i| vec![Value::Int(i), Value::Int(i % 7)])
            .collect();
        d.load_table("t", rows).unwrap();
        // Same geometry derivation as Table::new: 8-byte header + two
        // 8-byte int columns.
        let rpp = PageGeometry::for_tuple_bytes(8 + 8 + 8).rows_per_page;
        let pages = 3000u64.div_ceil(rpp);
        assert!(pages >= 4, "need a multi-page heap for pruning to show");
        // Force the heap path: with index scans disabled the k-range stays
        // a residual FastCmp conjunct the zone maps can refute per page.
        d.query("set enable_indexscan = off").unwrap();
        let cut = 2 * rpp as i64 + 100; // mid third page
        let sql = format!("select count(*) as n from t where k >= {cut}");
        let out = d.query(&sql).unwrap();
        assert_eq!(out.rows[0][0], Value::Int(3000 - cut));
        // The first two pages hold only keys below the cut.
        assert_eq!(out.stats.pages_pruned, 2);
        assert_eq!(out.stats.buffer.accesses(), pages - 2);
        assert_eq!(out.stats.rows_scanned, 3000 - 2 * rpp);
        assert_eq!(
            out.stats.scan_batches,
            (3000 - 2 * rpp).div_ceil(crate::exec::SCAN_BATCH_ROWS)
        );
        // Every execution mode prunes the same pages and charges the same
        // counters.
        for (kernel, batch) in [(false, true), (true, false), (false, false)] {
            d.query(&format!(
                "set enable_kernel = {}",
                if kernel { "on" } else { "off" }
            ))
            .unwrap();
            d.query(&format!(
                "set enable_batch_exec = {}",
                if batch { "on" } else { "off" }
            ))
            .unwrap();
            let other = d.query(&sql).unwrap();
            assert_eq!(other.rows, out.rows);
            assert_eq!(other.stats.pages_pruned, out.stats.pages_pruned);
            assert_eq!(other.stats.rows_scanned, out.stats.rows_scanned);
            assert_eq!(other.stats.cpu_tuple_ops, out.stats.cpu_tuple_ops);
            assert_eq!(other.stats.scan_batches, out.stats.scan_batches);
            assert_eq!(other.stats.buffer.accesses(), out.stats.buffer.accesses());
        }
        d.query("set enable_kernel = on").unwrap();
        d.query("set enable_batch_exec = on").unwrap();
        // An unmapped column never prunes, even when every page could be
        // refuted by its values.
        let out = d.query("select count(*) as n from t where g > 6").unwrap();
        assert_eq!(out.rows[0][0], Value::Int(0));
        assert_eq!(out.stats.pages_pruned, 0);
        assert_eq!(out.stats.rows_scanned, 3000);
        // Indexing g adds it to the zone maps; every page's g-range is
        // 0..=6, so `g > 6` now refutes the entire heap: nothing scanned,
        // nothing charged.
        d.execute("create index ig on t (g)").unwrap();
        let out = d.query("select count(*) as n from t where g > 6").unwrap();
        assert_eq!(out.rows[0][0], Value::Int(0));
        assert_eq!(out.stats.pages_pruned, pages);
        assert_eq!(out.stats.rows_scanned, 0);
        assert_eq!(out.stats.buffer.accesses(), 0);
        assert_eq!(out.stats.scan_batches, 0);
        // ... while an in-range predicate on the same column prunes nothing.
        let out = d.query("select count(*) as n from t where g = 3").unwrap();
        assert_eq!(out.stats.pages_pruned, 0);
        assert_eq!(out.stats.rows_scanned, 3000);
    }
}
