//! Table metadata: schemas, key/clustering declarations, width estimates.

use apuama_sql::{ColumnDef, DataType};
use apuama_storage::TableId;

use crate::error::{EngineError, EngineResult};

/// Metadata for one column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnMeta {
    pub name: String,
    pub data_type: DataType,
    pub not_null: bool,
}

/// Estimated on-disk width of one column, used for page geometry. Text
/// columns use a TPC-H-ish average.
fn column_bytes(ty: DataType) -> u64 {
    match ty {
        DataType::Int => 8,
        DataType::Float => 8,
        DataType::Date => 4,
        DataType::Bool => 1,
        DataType::Text => 24,
    }
}

/// Schema of one table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    pub id: TableId,
    pub name: String,
    pub columns: Vec<ColumnMeta>,
    /// Primary-key column indices (order matters for compound keys).
    pub primary_key: Vec<usize>,
    /// Clustering column index: rows are physically ordered by this column
    /// and its index supports contiguous range scans.
    pub clustered_by: Option<usize>,
}

impl TableSchema {
    /// Builds a schema from parsed DDL parts, validating key references.
    pub fn from_ddl(
        id: TableId,
        name: &str,
        columns: &[ColumnDef],
        primary_key: &[String],
        clustered_by: Option<&str>,
    ) -> EngineResult<TableSchema> {
        let metas: Vec<ColumnMeta> = columns
            .iter()
            .map(|c| ColumnMeta {
                name: c.name.clone(),
                data_type: c.data_type,
                not_null: c.not_null,
            })
            .collect();
        let find = |col: &str| -> EngineResult<usize> {
            metas
                .iter()
                .position(|m| m.name == col)
                .ok_or_else(|| EngineError::UnknownColumn(col.to_string()))
        };
        let pk = primary_key
            .iter()
            .map(|c| find(c))
            .collect::<EngineResult<Vec<usize>>>()?;
        let cluster = match clustered_by {
            Some(c) => Some(find(c)?),
            // Default: cluster by the first primary-key column, matching the
            // paper's physical design ("tuples of the fact tables are
            // physically ordered according to their partitioning
            // attributes").
            None => pk.first().copied(),
        };
        Ok(TableSchema {
            id,
            name: name.to_string(),
            columns: metas,
            primary_key: pk,
            clustered_by: cluster,
        })
    }

    /// Column index by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Estimated tuple width in bytes (page-geometry input).
    pub fn tuple_bytes(&self) -> u64 {
        8 + self
            .columns
            .iter()
            .map(|c| column_bytes(c.data_type))
            .sum::<u64>()
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }
}

/// The catalog: name → schema.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    schemas: Vec<TableSchema>,
}

impl Catalog {
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers a schema; the caller supplies the already-assigned id.
    pub fn add(&mut self, schema: TableSchema) -> EngineResult<()> {
        if self.get(&schema.name).is_some() {
            return Err(EngineError::TableExists(schema.name.clone()));
        }
        self.schemas.push(schema);
        Ok(())
    }

    /// Looks a table up by name.
    pub fn get(&self, name: &str) -> Option<&TableSchema> {
        self.schemas.iter().find(|s| s.name == name)
    }

    /// Looks a table up by id.
    pub fn get_by_id(&self, id: TableId) -> Option<&TableSchema> {
        self.schemas.iter().find(|s| s.id == id)
    }

    /// Next free table id.
    pub fn next_id(&self) -> TableId {
        self.schemas.iter().map(|s| s.id + 1).max().unwrap_or(0)
    }

    /// All registered schemas.
    pub fn iter(&self) -> impl Iterator<Item = &TableSchema> {
        self.schemas.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(name: &str, ty: DataType) -> ColumnDef {
        ColumnDef {
            name: name.into(),
            data_type: ty,
            not_null: false,
        }
    }

    #[test]
    fn schema_from_ddl_resolves_keys() {
        let s = TableSchema::from_ddl(
            0,
            "orders",
            &[
                col("o_orderkey", DataType::Int),
                col("o_comment", DataType::Text),
            ],
            &["o_orderkey".into()],
            None,
        )
        .unwrap();
        assert_eq!(s.primary_key, vec![0]);
        // Defaults to clustering on the first PK column.
        assert_eq!(s.clustered_by, Some(0));
    }

    #[test]
    fn explicit_cluster_column() {
        let s = TableSchema::from_ddl(
            0,
            "lineitem",
            &[
                col("l_orderkey", DataType::Int),
                col("l_linenumber", DataType::Int),
            ],
            &["l_orderkey".into(), "l_linenumber".into()],
            Some("l_orderkey"),
        )
        .unwrap();
        assert_eq!(s.clustered_by, Some(0));
        assert_eq!(s.primary_key, vec![0, 1]);
    }

    #[test]
    fn bad_key_column_errors() {
        let err = TableSchema::from_ddl(0, "t", &[col("a", DataType::Int)], &["b".into()], None)
            .unwrap_err();
        assert_eq!(err, EngineError::UnknownColumn("b".into()));
    }

    #[test]
    fn tuple_bytes_counts_columns() {
        let s = TableSchema::from_ddl(
            0,
            "t",
            &[col("a", DataType::Int), col("b", DataType::Text)],
            &[],
            None,
        )
        .unwrap();
        assert_eq!(s.tuple_bytes(), 8 + 8 + 24);
        assert_eq!(s.clustered_by, None);
    }

    #[test]
    fn catalog_rejects_duplicates() {
        let mut c = Catalog::new();
        let s = TableSchema::from_ddl(0, "t", &[col("a", DataType::Int)], &[], None).unwrap();
        c.add(s.clone()).unwrap();
        assert!(matches!(c.add(s), Err(EngineError::TableExists(_))));
        assert_eq!(c.next_id(), 1);
    }
}
