//! A single-node relational engine — the "PostgreSQL" each cluster node runs.
//!
//! The Apuama paper treats the per-node DBMS as a black box reachable over
//! JDBC. This crate supplies that black box: enough of a relational engine
//! to execute the TPC-H evaluation queries and refresh streams for real,
//! while exposing the two behaviours the middleware's correctness and
//! performance arguments rest on:
//!
//! 1. **A cost-based access-path choice** between full sequential scans and
//!    clustered-index range scans, overridable with
//!    `SET enable_seqscan = off` — the knob Apuama flips around SVP
//!    sub-queries (paper §3: "Apuama directly interferes in optimizer
//!    choices in order to force index usage").
//! 2. **Exact I/O accounting** through a per-node LRU buffer pool, so the
//!    simulator can convert page faults into time and reproduce the paper's
//!    memory-fit super-linear speedups.
//!
//! Architecture (one module per stage, DataFusion-style layering):
//!
//! ```text
//!   SQL text ──parse──▶ AST ──plan──▶ AccessPlan ──execute──▶ rows + stats
//!              (apuama-sql)  (planner)              (exec, eval)
//! ```
//!
//! Updates (INSERT/DELETE/UPDATE) maintain every index and support
//! single-session transactions with an undo log — the granularity C-JDBC
//! needs for its totally ordered write broadcast.

pub mod catalog;
pub mod db;
pub mod error;
pub mod eval;
pub mod exec;
pub mod governor;
pub mod parallel;
mod physical;
mod plan_cache;
pub mod planner;
pub mod stats;
pub mod table;

pub use catalog::{Catalog, ColumnMeta, TableSchema};
pub use db::{Database, QueryOutput, Settings};
pub use error::{EngineError, EngineResult};
pub use exec::SCAN_BATCH_ROWS;
pub use governor::{CancelToken, MemoryGauge, QueryGovernor};
pub use plan_cache::PlanCacheStats;
pub use stats::{ExecStats, PhaseTiming};
pub use table::Table;
