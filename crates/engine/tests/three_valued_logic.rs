//! Exhaustive checks of SQL three-valued logic and NULL propagation,
//! exercised through the full SQL surface (not the evaluator internals):
//! every law is asserted for all combinations of TRUE / FALSE / NULL.

use apuama_engine::Database;
use apuama_sql::Value;

/// One-row database exposing columns `a` and `b` with the given 3VL values.
fn db_with(a: Option<bool>, b: Option<bool>) -> Database {
    let mut d = Database::in_memory();
    d.execute("create table t (a bool, b bool)").unwrap();
    let lit = |v: Option<bool>| match v {
        None => "null".to_string(),
        Some(true) => "true".to_string(),
        Some(false) => "false".to_string(),
    };
    d.execute(&format!("insert into t values ({}, {})", lit(a), lit(b)))
        .unwrap();
    d
}

/// Evaluates a boolean SQL expression over the row, returning the 3VL result.
fn eval3(d: &Database, expr: &str) -> Option<bool> {
    let out = d
        .query(&format!(
            "select case when {expr} then 1 else 0 end as r, \
                         case when not ({expr}) then 1 else 0 end as nr from t"
        ))
        .unwrap();
    let r = out.rows[0][0].as_i64().unwrap();
    let nr = out.rows[0][1].as_i64().unwrap();
    match (r, nr) {
        (1, 0) => Some(true),
        (0, 1) => Some(false),
        (0, 0) => None, // UNKNOWN: neither the predicate nor its negation held
        _ => panic!("impossible 3VL readout"),
    }
}

const DOMAIN: [Option<bool>; 3] = [Some(true), Some(false), None];

fn and3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(false), _) | (_, Some(false)) => Some(false),
        (Some(true), Some(true)) => Some(true),
        _ => None,
    }
}

fn or3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(true), _) | (_, Some(true)) => Some(true),
        (Some(false), Some(false)) => Some(false),
        _ => None,
    }
}

fn not3(a: Option<bool>) -> Option<bool> {
    a.map(|x| !x)
}

#[test]
fn and_truth_table() {
    for a in DOMAIN {
        for b in DOMAIN {
            let d = db_with(a, b);
            assert_eq!(eval3(&d, "a and b"), and3(a, b), "a={a:?} b={b:?}");
        }
    }
}

#[test]
fn or_truth_table() {
    for a in DOMAIN {
        for b in DOMAIN {
            let d = db_with(a, b);
            assert_eq!(eval3(&d, "a or b"), or3(a, b), "a={a:?} b={b:?}");
        }
    }
}

#[test]
fn not_truth_table() {
    for a in DOMAIN {
        let d = db_with(a, Some(true));
        assert_eq!(eval3(&d, "not a"), not3(a), "a={a:?}");
    }
}

#[test]
fn de_morgan_laws_hold_under_3vl() {
    for a in DOMAIN {
        for b in DOMAIN {
            let d = db_with(a, b);
            assert_eq!(
                eval3(&d, "not (a and b)"),
                eval3(&d, "(not a) or (not b)"),
                "¬(a∧b) = ¬a∨¬b for a={a:?} b={b:?}"
            );
            assert_eq!(
                eval3(&d, "not (a or b)"),
                eval3(&d, "(not a) and (not b)"),
                "¬(a∨b) = ¬a∧¬b for a={a:?} b={b:?}"
            );
        }
    }
}

#[test]
fn null_comparisons_are_unknown() {
    let d = db_with(None, None);
    for expr in ["a = b", "a <> b", "a = a"] {
        assert_eq!(eval3(&d, expr), None, "{expr}");
    }
    // IS NULL is the only way to see NULL as a definite value.
    assert_eq!(eval3(&d, "a is null"), Some(true));
    assert_eq!(eval3(&d, "a is not null"), Some(false));
}

#[test]
fn null_arithmetic_propagates() {
    let mut d = Database::in_memory();
    d.execute("create table n (x int, y int)").unwrap();
    d.execute("insert into n values (null, 5)").unwrap();
    let out = d
        .query("select x + y as a, x * y as b, x / y as c, y - x as e from n")
        .unwrap();
    for v in &out.rows[0] {
        assert!(v.is_null(), "NULL must propagate through arithmetic: {v}");
    }
}

#[test]
fn where_keeps_only_definite_true() {
    // A row is returned only when the predicate is TRUE — not FALSE, not
    // UNKNOWN. This is the 3VL rule aggregate answers depend on.
    let mut d = Database::in_memory();
    d.execute("create table w (x int)").unwrap();
    d.execute("insert into w values (1), (null), (3)").unwrap();
    let out = d.query("select count(*) as n from w where x > 1").unwrap();
    assert_eq!(out.rows[0][0], Value::Int(1)); // only 3; NULL row excluded
    let out = d
        .query("select count(*) as n from w where not (x > 1)")
        .unwrap();
    assert_eq!(out.rows[0][0], Value::Int(1)); // only 1; NULL still excluded
}

#[test]
fn not_in_with_null_in_list_is_never_true() {
    let mut d = Database::in_memory();
    d.execute("create table w (x int)").unwrap();
    d.execute("insert into w values (1), (2)").unwrap();
    // 1 NOT IN (2, NULL) is UNKNOWN, not TRUE — the classic trap.
    let out = d
        .query("select count(*) as n from w where x not in (2, null)")
        .unwrap();
    assert_eq!(out.rows[0][0], Value::Int(0));
}

#[test]
fn aggregates_skip_nulls_but_count_star_does_not() {
    let mut d = Database::in_memory();
    d.execute("create table w (x int)").unwrap();
    d.execute("insert into w values (1), (null), (3)").unwrap();
    let out = d
        .query("select count(*) as all_rows, count(x) as non_null, sum(x) as s, avg(x) as a from w")
        .unwrap();
    assert_eq!(out.rows[0][0], Value::Int(3));
    assert_eq!(out.rows[0][1], Value::Int(2));
    assert_eq!(out.rows[0][2], Value::Int(4));
    assert_eq!(out.rows[0][3], Value::Float(2.0));
}
