//! Property: cooperative cancellation is *clean*. A query whose cancel
//! token fires at an arbitrary batch boundary (DESIGN.md §11) either
//! completes normally or fails with `Cancelled` — and in both cases the
//! engine answers the next, ungoverned run of the same statement
//! byte-identically to a never-cancelled engine. Checked across the
//! execution-mode matrix: `enable_kernel` on/off × `enable_batch_exec`
//! on/off, so the interpreter, the batch fast paths, and the fused kernel
//! all honor the same unwind contract — and `parallel_workers` ∈ {1, 2, 4},
//! so a cancel that lands while morsel workers are in flight must likewise
//! unwind cleanly (worker-side memory charges released, no partial state
//! surviving into the replay).

use proptest::prelude::*;

use apuama_engine::{Database, EngineError, QueryGovernor};
use apuama_sql::Value;

/// Rows spanning several 1024-row scan batches, with enough groups to put
/// real state into the aggregation and sort operators that a cancelled
/// unwind must discard.
const ROWS: i64 = 3_000;

fn db() -> Database {
    let mut d = Database::in_memory();
    d.execute("create table t (k int not null, g int, v float, primary key (k)) clustered by (k)")
        .unwrap();
    let rows: Vec<Vec<Value>> = (1..=ROWS)
        .map(|k| {
            vec![
                Value::Int(k),
                Value::Int(k % 17),
                Value::Float(k as f64 * 0.25),
            ]
        })
        .collect();
    d.load_table("t", rows).unwrap();
    d
}

fn set_modes(d: &Database, kernel: bool, batch: bool, workers: usize) {
    let onoff = |b: bool| if b { "on" } else { "off" };
    d.query(&format!("set enable_kernel = {}", onoff(kernel)))
        .unwrap();
    d.query(&format!("set enable_batch_exec = {}", onoff(batch)))
        .unwrap();
    d.query(&format!("set parallel_workers = {workers}"))
        .unwrap();
}

const QUERIES: [&str; 3] = [
    // Aggregation over every batch (kernel-eligible shape).
    "select count(*) as n, sum(v) as s, avg(v) as a from t",
    // Grouped aggregate + sort: pipeline breakers holding per-group state.
    "select g, count(*) as n, sum(v) as s from t group by g order by g",
    // Filter + projection: the streaming path.
    "select k, v from t where k >= 100 and k < 200 order by k",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cancelled_query_leaves_engine_byte_identical(
        query_idx in 0usize..QUERIES.len(),
        fuse in 0u64..48,
        kernel in any::<bool>(),
        batch in any::<bool>(),
        workers in prop_oneof![Just(1usize), Just(2), Just(4)],
    ) {
        let sql = QUERIES[query_idx];

        // Reference: an engine that never saw a cancellation.
        let clean = db();
        set_modes(&clean, kernel, batch, workers);
        let want = clean.query(sql).unwrap();

        let d = db();
        set_modes(&d, kernel, batch, workers);
        let gov = QueryGovernor::new();
        gov.cancel_token().cancel_after_checks(fuse);
        match d.query_governed(sql, &gov) {
            // Fuse fired past the last check: the run completed, and it
            // must already be byte-identical.
            Ok(out) => {
                prop_assert_eq!(&out.columns, &want.columns);
                prop_assert_eq!(&out.rows, &want.rows);
            }
            Err(EngineError::Cancelled(_)) => {}
            Err(other) => prop_assert!(
                false,
                "expected clean completion or Cancelled, got {other:?}"
            ),
        }

        // The replay — same statement, no governor — must not observe any
        // residue of the cancelled attempt (plan cache, operator state,
        // buffer pool bookkeeping, memory gauge).
        let replay = d.query_governed(sql, &QueryGovernor::new()).unwrap();
        prop_assert_eq!(&replay.columns, &want.columns);
        prop_assert_eq!(&replay.rows, &want.rows);
        prop_assert_eq!(d.mem_gauge().used_bytes(), 0, "cancel must release its memory charge");
    }
}
