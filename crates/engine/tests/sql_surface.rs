//! Broad black-box coverage of the engine's SQL surface: resolution rules,
//! scalar functions, join shapes, error paths — each test pins one behaviour.

use apuama_engine::{Database, EngineError};
use apuama_sql::Value;

fn db() -> Database {
    let mut d = Database::in_memory();
    d.execute(
        "create table emp (id int not null, name text, dept int, salary float, \
         hired date, primary key (id))",
    )
    .unwrap();
    d.execute("create table dept (id int not null, dname text, primary key (id))")
        .unwrap();
    d.execute(
        "insert into emp values \
         (1, 'ada', 10, 120.0, date '1995-03-01'), \
         (2, 'bob', 10, 80.0, date '1996-07-15'), \
         (3, 'cy', 20, 95.5, date '1994-01-20'), \
         (4, 'dee', null, 60.0, date '1997-11-05')",
    )
    .unwrap();
    d.execute("insert into dept values (10, 'eng'), (20, 'ops'), (30, 'empty')")
        .unwrap();
    d
}

#[test]
fn qualified_and_bare_columns_resolve() {
    let d = db();
    let out = d
        .query("select emp.name, dname from emp, dept where emp.dept = dept.id order by emp.name")
        .unwrap();
    assert_eq!(out.rows.len(), 3);
    assert_eq!(out.rows[0][0], Value::Str("ada".into()));
}

#[test]
fn ambiguous_column_is_an_error() {
    let d = db();
    let err = d
        .query("select id from emp, dept where emp.dept = dept.id")
        .unwrap_err();
    assert!(matches!(err, EngineError::AmbiguousColumn(_)), "{err}");
}

#[test]
fn unknown_column_and_table_errors() {
    let d = db();
    assert!(matches!(
        d.query("select nope from emp").unwrap_err(),
        EngineError::UnknownColumn(_)
    ));
    assert!(matches!(
        d.query("select 1 from nope").unwrap_err(),
        EngineError::UnknownTable(_)
    ));
}

#[test]
fn aliases_shadow_table_names() {
    let d = db();
    let out = d
        .query("select e.salary from emp e where e.id = 3")
        .unwrap();
    assert_eq!(out.rows, vec![vec![Value::Float(95.5)]]);
    // The original name is no longer a valid qualifier once aliased.
    assert!(d
        .query("select emp.salary from emp e where e.id = 3")
        .is_err());
}

#[test]
fn self_join_with_two_aliases() {
    let d = db();
    // Pairs of distinct employees in the same department.
    let out = d
        .query(
            "select a.name, b.name from emp a, emp b \
             where a.dept = b.dept and a.id < b.id",
        )
        .unwrap();
    assert_eq!(
        out.rows,
        vec![vec![Value::Str("ada".into()), Value::Str("bob".into())]]
    );
}

#[test]
fn null_join_keys_never_match() {
    let d = db();
    // dee has dept NULL and must not join to anything.
    let out = d
        .query("select count(*) as n from emp, dept where emp.dept = dept.id")
        .unwrap();
    assert_eq!(out.rows[0][0], Value::Int(3));
}

#[test]
fn scalar_functions() {
    let d = db();
    let out = d
        .query(
            "select abs(0.0 - salary) as a, substring(name, 1, 2) as s, \
             coalesce(dept, 0 - 1) as c, year(hired) as y \
             from emp where id = 4",
        )
        .unwrap();
    assert_eq!(
        out.rows[0],
        vec![
            Value::Float(60.0),
            Value::Str("de".into()),
            Value::Int(-1),
            Value::Int(1997)
        ]
    );
}

#[test]
fn case_without_else_yields_null() {
    let d = db();
    let out = d
        .query("select case when salary > 100.0 then 'high' end as band from emp where id = 2")
        .unwrap();
    assert_eq!(out.rows, vec![vec![Value::Null]]);
}

#[test]
fn between_and_not_between() {
    let d = db();
    let a = d
        .query("select count(*) as n from emp where salary between 80.0 and 100.0")
        .unwrap();
    assert_eq!(a.rows[0][0], Value::Int(2));
    let b = d
        .query("select count(*) as n from emp where salary not between 80.0 and 100.0")
        .unwrap();
    assert_eq!(b.rows[0][0], Value::Int(2));
}

#[test]
fn in_list_and_like() {
    let d = db();
    let out = d
        .query("select name from emp where dept in (10, 20) and name like '%b%' ")
        .unwrap();
    assert_eq!(out.rows, vec![vec![Value::Str("bob".into())]]);
}

#[test]
fn uncorrelated_in_subquery_and_scalar_subquery() {
    let d = db();
    let out = d
        .query(
            "select name from emp where dept in (select id from dept where dname = 'eng') \
             order by name",
        )
        .unwrap();
    assert_eq!(out.rows.len(), 2);
    let out = d
        .query("select name from emp where salary = (select max(salary) from emp)")
        .unwrap();
    assert_eq!(out.rows, vec![vec![Value::Str("ada".into())]]);
}

#[test]
fn correlated_exists_over_dimension() {
    let d = db();
    // Departments with at least one employee.
    let out = d
        .query(
            "select dname from dept where exists \
             (select 1 from emp where emp.dept = dept.id) order by dname",
        )
        .unwrap();
    assert_eq!(
        out.rows,
        vec![
            vec![Value::Str("eng".into())],
            vec![Value::Str("ops".into())]
        ]
    );
}

#[test]
fn group_by_expression() {
    let d = db();
    let out = d
        .query("select year(hired) as y, count(*) as n from emp group by year(hired) order by y")
        .unwrap();
    assert_eq!(out.rows.len(), 4);
    assert_eq!(out.rows[0], vec![Value::Int(1994), Value::Int(1)]);
}

#[test]
fn order_by_expression_not_in_output() {
    let d = db();
    let out = d
        .query("select name from emp order by salary desc")
        .unwrap();
    let names: Vec<&str> = out.rows.iter().map(|r| r[0].as_str().unwrap()).collect();
    assert_eq!(names, vec!["ada", "cy", "bob", "dee"]);
}

#[test]
fn limit_zero_and_overlarge() {
    let d = db();
    assert_eq!(d.query("select id from emp limit 0").unwrap().rows.len(), 0);
    assert_eq!(
        d.query("select id from emp limit 99").unwrap().rows.len(),
        4
    );
}

#[test]
fn division_by_zero_yields_null() {
    let d = db();
    let out = d
        .query("select 1 / 0 as a, 1.0 / 0.0 as b from emp limit 1")
        .unwrap();
    assert!(out.rows[0][0].is_null());
    assert!(out.rows[0][1].is_null());
}

#[test]
fn date_comparisons_and_arithmetic() {
    let d = db();
    let out = d
        .query(
            "select name from emp \
             where hired >= date '1995-01-01' and hired < date '1995-01-01' + interval '2' year \
             order by name",
        )
        .unwrap();
    assert_eq!(out.rows.len(), 2);
}

#[test]
fn string_ordering_is_lexicographic() {
    let d = db();
    let out = d
        .query("select min(name) as lo, max(name) as hi from emp")
        .unwrap();
    assert_eq!(
        out.rows[0],
        vec![Value::Str("ada".into()), Value::Str("dee".into())]
    );
}

#[test]
fn cross_join_without_predicate() {
    let d = db();
    let out = d.query("select count(*) as n from emp, dept").unwrap();
    assert_eq!(out.rows[0][0], Value::Int(12));
}

#[test]
fn update_with_self_reference_and_filter() {
    let mut d = db();
    let out = d
        .execute("update emp set salary = salary * 1.1 where dept = 10")
        .unwrap();
    assert_eq!(out.rows_affected, 2);
    let check = d.query("select salary from emp where id = 1").unwrap();
    assert!((check.rows[0][0].as_f64().unwrap() - 132.0).abs() < 1e-9);
}

#[test]
fn insert_wrong_arity_is_constraint_error() {
    let mut d = db();
    assert!(matches!(
        d.execute("insert into dept values (1)").unwrap_err(),
        EngineError::Constraint(_)
    ));
}

#[test]
fn delete_everything_then_aggregate() {
    let mut d = db();
    d.execute("delete from emp").unwrap();
    let out = d
        .query("select count(*) as n, sum(salary) as s, min(hired) as h from emp")
        .unwrap();
    assert_eq!(out.rows[0], vec![Value::Int(0), Value::Null, Value::Null]);
}

#[test]
fn distinct_on_expressions() {
    let d = db();
    let out = d
        .query("select distinct coalesce(dept, 0) as dd from emp order by dd")
        .unwrap();
    assert_eq!(
        out.rows,
        vec![
            vec![Value::Int(0)],
            vec![Value::Int(10)],
            vec![Value::Int(20)]
        ]
    );
}

#[test]
fn having_without_group_by() {
    let d = db();
    // Global aggregate with HAVING: one group, filtered in or out.
    let keep = d
        .query("select count(*) as n from emp having count(*) > 2")
        .unwrap();
    assert_eq!(keep.rows.len(), 1);
    let drop = d
        .query("select count(*) as n from emp having count(*) > 100")
        .unwrap();
    assert_eq!(drop.rows.len(), 0);
}

#[test]
fn count_distinct_executes_single_node() {
    let d = db();
    let out = d
        .query("select count(distinct dept) as depts, count(dept) as rows_with_dept from emp")
        .unwrap();
    // Departments 10, 10, 20, NULL → 2 distinct, 3 non-null.
    assert_eq!(out.rows[0], vec![Value::Int(2), Value::Int(3)]);
}

#[test]
fn sum_distinct_executes_single_node() {
    let mut d = Database::in_memory();
    d.execute("create table s (x int)").unwrap();
    d.execute("insert into s values (5), (5), (7)").unwrap();
    let out = d
        .query("select sum(distinct x) as t, sum(x) as all_t from s")
        .unwrap();
    assert_eq!(out.rows[0], vec![Value::Int(12), Value::Int(17)]);
}

#[test]
fn multi_key_order_by_mixed_directions() {
    let d = db();
    let out = d
        .query("select dept, name from emp where dept is not null order by dept desc, name asc")
        .unwrap();
    let got: Vec<(i64, &str)> = out
        .rows
        .iter()
        .map(|r| (r[0].as_i64().unwrap(), r[1].as_str().unwrap()))
        .collect();
    assert_eq!(got, vec![(20, "cy"), (10, "ada"), (10, "bob")]);
}

#[test]
fn derived_table_with_aggregation_inside() {
    let d = db();
    let out = d
        .query(
            "select max(n) as busiest from \
             (select dept, count(*) as n from emp where dept is not null group by dept) counts",
        )
        .unwrap();
    assert_eq!(out.rows, vec![vec![Value::Int(2)]]);
}

#[test]
fn consumed_range_predicates_are_not_reevaluated() {
    // A clustered range consumed by the index must not be charged as a
    // per-row filter: compare CPU between a fully-consumed predicate and
    // an equivalent residual-only one.
    let mut d = Database::in_memory();
    d.execute("create table big (k int not null, v int, primary key (k)) clustered by (k)")
        .unwrap();
    let rows: Vec<Vec<Value>> = (0..20_000i64)
        .map(|i| vec![Value::Int(i), Value::Int(i % 97)])
        .collect();
    d.load_table("big", rows).unwrap();
    let consumed = d
        .query("select count(*) as n from big where k >= 1000 and k < 9000")
        .unwrap();
    let residual = d
        .query("select count(*) as n from big where k + 0 >= 1000 and k + 0 < 9000")
        .unwrap();
    assert_eq!(consumed.rows, residual.rows);
    assert!(
        consumed.stats.cpu_tuple_ops < residual.stats.cpu_tuple_ops,
        "consumed={} residual={}",
        consumed.stats.cpu_tuple_ops,
        residual.stats.cpu_tuple_ops
    );
    // And far fewer rows even reach the scan when the index is usable.
    assert!(consumed.stats.rows_scanned < residual.stats.rows_scanned);
}

#[test]
fn secondary_index_point_lookup_beats_seq_scan() {
    let mut d = Database::new(10_000);
    d.execute(
        "create table li (k int not null, part int not null, primary key (k)) clustered by (k)",
    )
    .unwrap();
    let rows: Vec<Vec<Value>> = (0..30_000i64)
        .map(|i| vec![Value::Int(i), Value::Int(i % 500)])
        .collect();
    d.load_table("li", rows).unwrap();
    d.execute("create index idx_part on li (part)").unwrap();

    let with_index = d
        .query("select count(*) as n from li where part = 42")
        .unwrap();
    assert_eq!(with_index.rows[0][0], Value::Int(60));
    // The secondary path touches only the matching rows.
    assert!(
        with_index.stats.rows_scanned <= 60,
        "scanned {} rows through the secondary index",
        with_index.stats.rows_scanned
    );
    // And its page accesses are classified as random (index probes).
    assert!(with_index.stats.buffer.misses_rand + with_index.stats.buffer.hits > 0);
    assert_eq!(with_index.stats.buffer.misses_seq, 0);

    // EXPLAIN agrees.
    let plan = d
        .query("explain select count(*) as n from li where part = 42")
        .unwrap();
    let text: String = plan
        .rows
        .iter()
        .map(|r| r[0].as_str().unwrap())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(text.contains("secondary index range on part"), "{text}");
}

#[test]
fn planner_prefers_tighter_of_two_indexes() {
    let mut d = Database::new(10_000);
    d.execute(
        "create table li (k int not null, part int not null, primary key (k)) clustered by (k)",
    )
    .unwrap();
    let rows: Vec<Vec<Value>> = (0..30_000i64)
        .map(|i| vec![Value::Int(i), Value::Int(i % 500)])
        .collect();
    d.load_table("li", rows).unwrap();
    d.execute("create index idx_part on li (part)").unwrap();
    // Wide clustered range vs narrow secondary point: the point wins.
    let plan = d
        .query(
            "explain select count(*) as n from li \
             where k >= 0 and k < 29000 and part = 7",
        )
        .unwrap();
    let text: String = plan
        .rows
        .iter()
        .map(|r| r[0].as_str().unwrap())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(text.contains("secondary index range on part"), "{text}");
}
