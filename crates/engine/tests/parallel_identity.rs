//! Morsel-driven parallel execution is *observationally invisible*: for
//! any `parallel_workers` setting, a query answers with byte-identical
//! rows AND identical work counters (`rows_scanned`, `cpu_tuple_ops`,
//! `index_probes`, `pages_pruned`, `scan_batches`, buffer-pool touches) to
//! the serial execution, across the full execution-mode matrix
//! (`enable_kernel` × `enable_batch_exec`). The table spans many
//! page-aligned morsels so the parallel decomposition genuinely engages;
//! float payloads are quarter-steps (exactly representable) so partial-sum
//! merging cannot round differently from the serial fold.

use apuama_engine::{Database, QueryOutput};
use apuama_sql::Value;

const ROWS: i64 = 5_000;

/// `k` clustered (index-range morsels reachable), `g` a grouping column,
/// `z` monotone in `k` (tight per-page zone ranges, so zone-map pruning
/// fires on equality predicates), `v` an exactly-representable float.
fn db() -> Database {
    let mut d = Database::in_memory();
    d.execute(
        "create table t (k int not null, g int, z int, v float, \
         primary key (k)) clustered by (k)",
    )
    .unwrap();
    let rows: Vec<Vec<Value>> = (1..=ROWS)
        .map(|k| {
            vec![
                Value::Int(k),
                Value::Int(k % 23),
                Value::Int(k / 500),
                Value::Float((k % 97) as f64 * 0.25),
            ]
        })
        .collect();
    d.load_table("t", rows).unwrap();
    d
}

fn assert_identical(a: &QueryOutput, b: &QueryOutput, what: &str) {
    assert_eq!(a.columns, b.columns, "{what}");
    assert_eq!(a.rows, b.rows, "{what}");
    assert_eq!(a.stats.rows_scanned, b.stats.rows_scanned, "{what}");
    assert_eq!(a.stats.cpu_tuple_ops, b.stats.cpu_tuple_ops, "{what}");
    assert_eq!(a.stats.index_probes, b.stats.index_probes, "{what}");
    assert_eq!(a.stats.pages_pruned, b.stats.pages_pruned, "{what}");
    assert_eq!(a.stats.rows_out, b.stats.rows_out, "{what}");
    assert_eq!(a.stats.bytes_out, b.stats.bytes_out, "{what}");
    assert_eq!(a.stats.scan_batches, b.stats.scan_batches, "{what}");
    assert_eq!(
        a.stats.buffer.accesses(),
        b.stats.buffer.accesses(),
        "{what}"
    );
}

/// Every scan/aggregate/sort shape the parallel decomposition touches:
/// global fused aggregation, grouped aggregation (partial-group merge),
/// zone-map-pruned scans, index-range morsels, parallel filter + chunk
/// sort, and DISTINCT.
const QUERIES: &[&str] = &[
    "select count(*) as n, sum(v) as s, avg(v) as a, min(v) as lo, max(v) as hi from t",
    "select g, count(*) as n, sum(v) as s, avg(v) as a from t group by g order by g",
    "select count(*) as n, sum(v) as s from t where v > 3.0",
    "select g, count(*) as n from t where z = 3 group by g order by g",
    "select k, v from t where g = 7 order by k",
    "select k, v from t where k >= 100 and k < 4200 and g <> 3 order by v, k limit 50",
    "select distinct g from t order by g",
    "select k, g from t order by g",
];

#[test]
fn parallel_execution_is_byte_identical_to_serial() {
    for sql in QUERIES {
        let d = db();
        for kernel in ["on", "off"] {
            for batch in ["on", "off"] {
                d.query(&format!("set enable_kernel = {kernel}")).unwrap();
                d.query(&format!("set enable_batch_exec = {batch}"))
                    .unwrap();
                d.query("set parallel_workers = 1").unwrap();
                let serial = d.query(sql).unwrap();
                for workers in [2usize, 4, 8] {
                    d.query(&format!("set parallel_workers = {workers}"))
                        .unwrap();
                    let parallel = d.query(sql).unwrap();
                    assert_identical(
                        &parallel,
                        &serial,
                        &format!("×{workers} kernel={kernel} batch={batch}: {sql}"),
                    );
                    assert_eq!(
                        d.mem_gauge().used_bytes(),
                        0,
                        "worker memory charges must drain: {sql}"
                    );
                }
            }
        }
    }
}

/// The prepared/bound path re-reads the knob at execution time — the same
/// cached plan must answer identically at any worker count (the knob is
/// deliberately *not* part of the plan fingerprint).
#[test]
fn cached_plan_is_reused_across_worker_counts() {
    let d = db();
    let template = "select g, count(*) as n, sum(v) as s from t \
                    where k >= $1 and k < $2 group by g order by g";
    let params = vec![Value::Int(10), Value::Int(4800)];
    d.query("set parallel_workers = 1").unwrap();
    let serial = d.query_bound(template, &params).unwrap();
    for workers in [2usize, 4] {
        d.query(&format!("set parallel_workers = {workers}"))
            .unwrap();
        let parallel = d.query_bound(template, &params).unwrap();
        assert_identical(&parallel, &serial, &format!("bound ×{workers}"));
    }
    // The worker-count changes did not force replans: after the first
    // compile, every later bound execution hit the cache.
    assert!(
        d.plan_cache_stats().hits >= 2,
        "changing parallel_workers must not invalidate cached plans: {:?}",
        d.plan_cache_stats()
    );
}

/// A predicate that fails mid-scan raises the *same* error parallel as
/// serial: the coordinator reports the earliest morsel's failure, and the
/// earliest morsel starts at the serial scan's first row.
#[test]
fn parallel_errors_match_serial() {
    for kernel in ["on", "off"] {
        let d = db();
        d.query(&format!("set enable_kernel = {kernel}")).unwrap();
        let sql = "select count(*) as n from t where v > 'oops'";
        d.query("set parallel_workers = 1").unwrap();
        let serial = d.query(sql).unwrap_err().to_string();
        d.query("set parallel_workers = 4").unwrap();
        let parallel = d.query(sql).unwrap_err().to_string();
        assert_eq!(parallel, serial, "kernel={kernel}");
        assert_eq!(
            d.mem_gauge().used_bytes(),
            0,
            "failed parallel run must release all memory charges"
        );
        // The engine still answers correctly afterwards.
        let after = d.query("select count(*) as n from t").unwrap();
        assert_eq!(after.rows, vec![vec![Value::Int(ROWS)]]);
    }
}
