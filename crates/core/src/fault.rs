//! Fault-handling policy for SVP execution.
//!
//! The paper assumes every node answers every sub-query; this module is the
//! knob set that decides what happens when one does not. Full replication
//! makes recovery cheap: any surviving replica can re-run a failed node's
//! range predicate, so a dead backend degrades throughput instead of
//! failing the query. See DESIGN.md §8 for the protocol.

use std::time::Duration;

use apuama_cjdbc::BreakerPolicy;

/// What the Intra-Query Executor does when a sub-query fails.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPolicy {
    /// Per-sub-query deadline. `None` waits forever (the seed behaviour).
    /// A timed-out statement counts as a failure for retry/reassignment;
    /// the abandoned statement keeps running on its detached worker and
    /// holds one pool slot until it completes (read-only, so harmless).
    pub subquery_timeout_ms: Option<u64>,
    /// Same-node retries after the first failed attempt.
    pub max_retries: u32,
    /// Backoff before retry `k` (1-based): `retry_backoff_ms << (k - 1)`.
    pub retry_backoff_ms: u64,
    /// After same-node retries are exhausted, re-render the failed VPA
    /// range through the rewriter and run it on a surviving replica,
    /// attributing the partial to the original range index so composition
    /// is byte-identical to the healthy run.
    pub reassign: bool,
    /// Consecutive failures that open a node's circuit (SVP dispatch and
    /// the C-JDBC read balancer both skip open circuits).
    pub breaker_threshold: u32,
    /// How long an open circuit waits before admitting a probe.
    pub probe_after_ms: u64,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        FaultPolicy {
            subquery_timeout_ms: None,
            max_retries: 1,
            retry_backoff_ms: 1,
            reassign: true,
            breaker_threshold: 3,
            probe_after_ms: 100,
        }
    }
}

impl FaultPolicy {
    /// The pre-fault-tolerance behaviour: no timeout, no retries, no
    /// reassignment — the first sub-query error fails the whole SVP query.
    pub fn fail_fast() -> Self {
        FaultPolicy {
            subquery_timeout_ms: None,
            max_retries: 0,
            retry_backoff_ms: 0,
            reassign: false,
            ..FaultPolicy::default()
        }
    }

    /// The circuit-breaker slice of this policy.
    pub fn breaker(&self) -> BreakerPolicy {
        BreakerPolicy {
            threshold: self.breaker_threshold.max(1),
            probe_after: Duration::from_millis(self.probe_after_ms),
        }
    }

    /// Backoff before the `attempt`-th retry (1-based), exponential with
    /// base `retry_backoff_ms`.
    pub fn backoff(&self, attempt: u32) -> Duration {
        if self.retry_backoff_ms == 0 || attempt == 0 {
            return Duration::ZERO;
        }
        let shift = (attempt - 1).min(16);
        Duration::from_millis(self.retry_backoff_ms.saturating_mul(1 << shift))
    }
}

/// What fault handling did during one SVP execution (diagnostics; all
/// zeros/empty on a healthy run).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryReport {
    /// Same-node retry attempts beyond each first attempt, summed.
    pub retries: u32,
    /// Failed attempts observed (including exhausted retries).
    pub failed_attempts: u32,
    /// Ranges that ended up on a different node than planned, as
    /// `(range index, node that produced the partial)` — covers both
    /// up-front routing around open circuits and post-failure reassignment.
    pub reassigned: Vec<(usize, usize)>,
}

impl RecoveryReport {
    /// True when the execution needed no fault handling at all.
    pub fn clean(&self) -> bool {
        self.retries == 0 && self.failed_attempts == 0 && self.reassigned.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_recovering_but_gentle() {
        let p = FaultPolicy::default();
        assert_eq!(p.subquery_timeout_ms, None);
        assert!(p.reassign);
        assert_eq!(p.max_retries, 1);
    }

    #[test]
    fn fail_fast_disables_recovery() {
        let p = FaultPolicy::fail_fast();
        assert_eq!(p.max_retries, 0);
        assert!(!p.reassign);
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let p = FaultPolicy {
            retry_backoff_ms: 2,
            ..FaultPolicy::default()
        };
        assert_eq!(p.backoff(1), Duration::from_millis(2));
        assert_eq!(p.backoff(2), Duration::from_millis(4));
        assert_eq!(p.backoff(3), Duration::from_millis(8));
        // Never overflows even for absurd attempt numbers.
        assert!(p.backoff(u32::MAX) >= p.backoff(17));
    }

    #[test]
    fn breaker_slice_clamps_threshold() {
        let p = FaultPolicy {
            breaker_threshold: 0,
            ..FaultPolicy::default()
        };
        assert_eq!(p.breaker().threshold, 1);
    }
}
