//! Node Processors: per-node connection pools, optimizer interference, and
//! the snapshot ordering SVP sub-queries need.
//!
//! Paper §4: "For each connection established by C-JDBC using Apuama, a
//! Node Processor is created and is responsible for mediating and
//! monitoring requests sent to its corresponding DBMS. To be able to
//! process multiple requests, the Node Processor creates a pool of
//! connections."

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex, RwLock};

use apuama_cjdbc::{BreakerPolicy, Connection, HealthTracker};
use apuama_engine::{EngineError, EngineResult, QueryGovernor, QueryOutput};

/// A counting semaphore bounding concurrent statements per node — the
/// connection pool. (In-process we do not hold real sockets; the pool's
/// observable behaviour — at most `capacity` statements in flight — is what
/// matters.)
#[derive(Debug)]
struct ConnectionPool {
    state: Mutex<usize>,
    available: Condvar,
    capacity: usize,
}

impl ConnectionPool {
    fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a pool needs at least one connection");
        ConnectionPool {
            state: Mutex::new(capacity),
            available: Condvar::new(),
            capacity,
        }
    }

    fn acquire(&self) {
        let mut free = self.state.lock();
        while *free == 0 {
            self.available.wait(&mut free);
        }
        *free -= 1;
    }

    fn release(&self) {
        let mut free = self.state.lock();
        *free += 1;
        drop(free);
        self.available.notify_one();
    }
}

/// RAII pool slot.
struct PoolSlot<'a>(&'a ConnectionPool);

impl Drop for PoolSlot<'_> {
    fn drop(&mut self) {
        self.0.release();
    }
}

/// State of the `enable_seqscan` interference: how many SVP sub-queries are
/// currently running on this node. The setting is flipped off when the
/// count leaves zero and restored when it returns to zero — the paper's
/// "Apuama disables full scans only before starting to process a query
/// using intra-query parallelism. When the query processing is finished,
/// the original settings are re-established."
#[derive(Debug, Default)]
struct SvpActivity {
    active: Mutex<u64>,
}

/// One node's processor.
pub struct NodeProcessor {
    conn: Arc<dyn Connection>,
    pool: ConnectionPool,
    svp: SvpActivity,
    /// Committed write transactions observed through this processor — the
    /// consistency protocol's per-node transaction counter.
    txn_counter: AtomicU64,
    /// Ordering lock standing in for the DBMS's snapshot isolation: SVP
    /// sub-queries hold it shared, updates exclusively, so an update
    /// admitted after sub-query dispatch cannot slip *before* a sub-query
    /// on one replica and *after* it on another (our engine has no MVCC —
    /// see DESIGN.md).
    snapshot: RwLock<()>,
    /// Whether to force index usage during SVP sub-queries (ablation knob;
    /// the paper always does).
    force_index: bool,
    /// Shared cluster health tracker this processor reports into.
    health: Arc<HealthTracker>,
    /// This node's index in the tracker.
    index: usize,
    /// SVP sub-query statements currently inside `run_guarded` (queued on
    /// the pool or executing). Observable for the timeout-reassignment
    /// leak regression: after an abandoned attempt is cancelled, this
    /// drains back to zero.
    in_flight: AtomicUsize,
}

/// RAII decrement for [`NodeProcessor::in_flight`].
struct InFlightGuard<'a>(&'a AtomicUsize);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

impl NodeProcessor {
    pub fn new(conn: Arc<dyn Connection>, pool_size: usize, force_index: bool) -> Arc<Self> {
        let health = Arc::new(HealthTracker::new(1, BreakerPolicy::default()));
        Self::with_health(conn, pool_size, force_index, health, 0)
    }

    /// Builds a processor that reports request outcomes into a shared
    /// [`HealthTracker`] as node `index` — how the engine wires all
    /// processors to one cluster-wide breaker.
    pub fn with_health(
        conn: Arc<dyn Connection>,
        pool_size: usize,
        force_index: bool,
        health: Arc<HealthTracker>,
        index: usize,
    ) -> Arc<Self> {
        assert!(index < health.node_count());
        Arc::new(NodeProcessor {
            conn,
            pool: ConnectionPool::new(pool_size),
            svp: SvpActivity::default(),
            txn_counter: AtomicU64::new(0),
            snapshot: RwLock::new(()),
            force_index,
            health,
            index,
            in_flight: AtomicUsize::new(0),
        })
    }

    /// The health tracker this processor reports into.
    pub fn health(&self) -> &Arc<HealthTracker> {
        &self.health
    }

    /// SVP sub-queries currently holding the seqscan interference.
    pub fn svp_active(&self) -> u64 {
        *self.svp.active.lock()
    }

    /// Node name (from the wrapped connection).
    pub fn name(&self) -> &str {
        self.conn.name()
    }

    /// Pool capacity.
    pub fn pool_capacity(&self) -> usize {
        self.pool.capacity
    }

    /// SVP sub-query statements currently in flight on this node (queued
    /// on the pool or executing).
    pub fn subqueries_in_flight(&self) -> usize {
        self.in_flight.load(Ordering::SeqCst)
    }

    /// Committed write transactions seen by this node.
    pub fn txn_count(&self) -> u64 {
        self.txn_counter.load(Ordering::SeqCst)
    }

    /// Pass-through read (non-SVP OLTP/OLAP query, or SET).
    pub fn execute_read(&self, sql: &str) -> EngineResult<QueryOutput> {
        self.pool.acquire();
        let _slot = PoolSlot(&self.pool);
        let _shared = self.snapshot.read();
        self.conn.execute(sql)
    }

    /// Pass-through read under a [`QueryGovernor`].
    pub fn execute_read_governed(
        &self,
        sql: &str,
        gov: &QueryGovernor,
    ) -> EngineResult<QueryOutput> {
        self.pool.acquire();
        let _slot = PoolSlot(&self.pool);
        let _shared = self.snapshot.read();
        self.conn.execute_governed(sql, gov)
    }

    /// Peak pipeline-breaker memory reported by the wrapped backend.
    pub fn mem_peak_bytes(&self) -> u64 {
        self.conn.mem_peak_bytes()
    }

    /// Write (single statement or transaction script): serialized against
    /// in-flight SVP sub-queries, counted on success.
    pub fn execute_write(&self, sql: &str) -> EngineResult<QueryOutput> {
        self.pool.acquire();
        let _slot = PoolSlot(&self.pool);
        let _exclusive = self.snapshot.write();
        let out = self.conn.execute(sql)?;
        self.txn_counter.fetch_add(1, Ordering::SeqCst);
        Ok(out)
    }

    /// Acquires the shared snapshot ticket for an SVP sub-query. The
    /// returned guard must be held until the sub-query finishes; callers
    /// signal "dispatched" (unblocking updates) once every node holds its
    /// ticket.
    pub fn begin_subquery(&self) -> SubqueryTicket<'_> {
        SubqueryTicket {
            node: self,
            _shared: self.snapshot.read(),
        }
    }

    /// Runs one SVP sub-query statement — pool slot, optimizer
    /// interference, execution — *without* touching the snapshot lock.
    /// Snapshot ordering is the ticket's job; splitting the statement out
    /// lets the engine run it on a detached thread under a deadline (the
    /// ticket guard is not `Send`) while the worker keeps holding the
    /// ticket. Outcomes are reported to the health tracker.
    pub fn run_subquery_statement(&self, sql: &str) -> EngineResult<QueryOutput> {
        self.run_guarded(|conn| conn.execute(sql))
    }

    /// Like [`NodeProcessor::run_subquery_statement`], but executes a
    /// prepared statement with bound range values. Engine-backed
    /// connections serve this from their plan cache — the dispatcher's
    /// "parse and plan once per node" path; interposing connections fall
    /// back to the trait's text-substitution default, which renders the
    /// identical SQL the literal path would send.
    pub fn run_subquery_bound(
        &self,
        sql: &str,
        params: &[apuama_sql::Value],
    ) -> EngineResult<QueryOutput> {
        self.run_guarded(|conn| conn.execute_bound(sql, params))
    }

    /// Like [`NodeProcessor::run_subquery_bound`], but the statement runs
    /// under a [`QueryGovernor`]: a cancelled or expired governor stops it
    /// at the next batch boundary instead of letting it run to completion.
    /// This is how the engine reclaims an abandoned (timed-out) attempt —
    /// the detached thread observes the cancel, unwinds, and releases its
    /// pool slot.
    pub fn run_subquery_bound_governed(
        &self,
        sql: &str,
        params: &[apuama_sql::Value],
        gov: &QueryGovernor,
    ) -> EngineResult<QueryOutput> {
        self.run_guarded(|conn| conn.execute_bound_governed(sql, params, gov))
    }

    /// Registers a sub-query statement with the node's plan cache ahead of
    /// execution (dispatch warm-up). Failures are the caller's to ignore:
    /// execution re-reports anything real.
    pub fn prepare_subquery(&self, sql: &str) -> EngineResult<usize> {
        self.conn.prepare(sql)
    }

    fn run_guarded(
        &self,
        run: impl FnOnce(&dyn Connection) -> EngineResult<QueryOutput>,
    ) -> EngineResult<QueryOutput> {
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        let _in_flight = InFlightGuard(&self.in_flight);
        self.pool.acquire();
        let _slot = PoolSlot(&self.pool);
        let guard = if self.force_index {
            match SeqscanGuard::engage(self) {
                Ok(g) => Some(g),
                Err(e) => {
                    // The interference SET itself failed: the sub-query
                    // never ran. Plain failure, refcount untouched.
                    self.health.record_failure(self.index);
                    return Err(e);
                }
            }
        } else {
            None
        };
        let result = run(self.conn.as_ref());
        match &result {
            Ok(_) => self.health.record_success(self.index),
            // A cooperative cancel is the *coordinator* abandoning the
            // attempt (timeout reassignment, sibling failure, client
            // cancel) — the node did nothing wrong, so it is
            // health-neutral: neither a success nor a breaker strike.
            Err(EngineError::Cancelled(_)) => {}
            Err(_) => self.health.record_failure(self.index),
        }
        // Dropping the guard *after* recording lets a failed
        // `enable_seqscan = on` restore stand as the node's latest health
        // event without clobbering a successful result.
        drop(guard);
        result
    }

    /// Marks an externally detected failure (the engine's sub-query
    /// deadline firing) against this node.
    pub fn record_timeout(&self) {
        self.health.record_failure(self.index);
    }
}

/// RAII for the `enable_seqscan` interference refcount.
///
/// The count is bumped only after `set enable_seqscan = off` succeeds, and
/// the drop handler always decrements — so a failed SET can no longer leak
/// the refcount and permanently disable the interference (the seed's bug).
/// A failed restore (`set enable_seqscan = on`) is *reported*, not
/// propagated: the sub-query's result stands, and the node's suspect
/// session state is surfaced through the health tracker.
struct SeqscanGuard<'a> {
    node: &'a NodeProcessor,
}

impl<'a> SeqscanGuard<'a> {
    fn engage(node: &'a NodeProcessor) -> EngineResult<Self> {
        let mut active = node.svp.active.lock();
        if *active == 0 {
            // Fallible part first: only a successful SET owns a count.
            node.conn.execute("set enable_seqscan = off")?;
        }
        *active += 1;
        Ok(SeqscanGuard { node })
    }
}

impl Drop for SeqscanGuard<'_> {
    fn drop(&mut self) {
        let node = self.node;
        let mut active = node.svp.active.lock();
        *active -= 1;
        if *active == 0 {
            // Restore the original setting even if the query failed; if the
            // restore itself fails, surface it through the health tracker —
            // never clobber the sub-query result from a drop handler.
            if node.conn.execute("set enable_seqscan = on").is_err() {
                node.health.record_restore_failure(node.index);
            }
        }
    }
}

/// The dispatch ticket: holding it keeps this node's updates ordered after
/// the sub-query. Execute the sub-query through [`SubqueryTicket::run`].
pub struct SubqueryTicket<'a> {
    node: &'a NodeProcessor,
    _shared: parking_lot::RwLockReadGuard<'a, ()>,
}

impl SubqueryTicket<'_> {
    /// Runs the SVP sub-query, applying the optimizer interference.
    pub fn run(&self, sql: &str) -> EngineResult<QueryOutput> {
        self.node.run_subquery_statement(sql)
    }

    /// Runs the SVP sub-query from a prepared statement with bound range
    /// values, applying the optimizer interference.
    pub fn run_bound(&self, sql: &str, params: &[apuama_sql::Value]) -> EngineResult<QueryOutput> {
        self.node.run_subquery_bound(sql, params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apuama_cjdbc::{EngineNode, NodeConnection};
    use apuama_engine::Database;

    fn node(force_index: bool) -> (Arc<NodeProcessor>, Arc<EngineNode>) {
        let mut db = Database::new(64);
        db.execute("create table t (k int not null, v float, primary key (k)) clustered by (k)")
            .unwrap();
        for i in 0..100 {
            db.execute(&format!("insert into t values ({i}, {i}.0)"))
                .unwrap();
        }
        let engine_node = EngineNode::new("n0", db);
        let conn: Arc<dyn Connection> = Arc::new(NodeConnection::new(engine_node.clone()));
        (NodeProcessor::new(conn, 4, force_index), engine_node)
    }

    #[test]
    fn passthrough_read_and_write_count() {
        let (np, _) = node(true);
        assert_eq!(np.txn_count(), 0);
        np.execute_write("insert into t values (1000, 0.0)")
            .unwrap();
        assert_eq!(np.txn_count(), 1);
        let out = np.execute_read("select count(*) as n from t").unwrap();
        assert_eq!(out.rows[0][0], apuama_sql::Value::Int(101));
        // Reads do not bump the counter.
        assert_eq!(np.txn_count(), 1);
    }

    #[test]
    fn subquery_toggles_seqscan_off_and_back() {
        let (np, engine_node) = node(true);
        assert!(engine_node.with_db(|db| db.seqscan_enabled()));
        let ticket = np.begin_subquery();
        ticket
            .run("select sum(v) as s from t where k >= 10 and k < 20")
            .unwrap();
        drop(ticket);
        // Restored afterwards.
        assert!(engine_node.with_db(|db| db.seqscan_enabled()));
    }

    #[test]
    fn bound_subquery_matches_literal_and_uses_the_plan_cache() {
        use apuama_sql::Value;
        let (np, engine_node) = node(true);
        let sql = "select sum(v) as s from t where k >= $1 and k < $2";
        np.prepare_subquery(sql).unwrap();
        let ticket = np.begin_subquery();
        let want = ticket
            .run("select sum(v) as s from t where k >= 10 and k < 20")
            .unwrap();
        for _ in 0..3 {
            let got = ticket
                .run_bound(sql, &[Value::Int(10), Value::Int(20)])
                .unwrap();
            assert_eq!(got.rows, want.rows);
        }
        drop(ticket);
        // Interference restored, and the three bound runs shared one plan.
        // The cache fingerprints on `enable_seqscan`, so the prepare (run
        // with seqscan on) and the ticketed executions (forced off) are
        // two entries — a plan chosen under one access-path setting is
        // never served under the other.
        assert!(engine_node.with_db(|db| db.seqscan_enabled()));
        let stats = engine_node.with_db(|db| db.plan_cache_stats());
        assert_eq!(
            stats.misses, 2,
            "one plan per seqscan setting for the bound statement"
        );
        assert!(stats.hits >= 2, "{stats:?}");
    }

    #[test]
    fn force_index_disabled_leaves_setting_alone() {
        let (np, engine_node) = node(false);
        let ticket = np.begin_subquery();
        // Run and make sure the setting never flipped (we can't observe
        // mid-flight here, but with force_index=false the toggle path is
        // never taken, so a poisoned 'off' would persist if it ran).
        ticket.run("select count(*) as n from t").unwrap();
        drop(ticket);
        assert!(engine_node.with_db(|db| db.seqscan_enabled()));
    }

    #[test]
    fn nested_subqueries_share_the_toggle() {
        let (np, engine_node) = node(true);
        let t1 = np.begin_subquery();
        let t2 = np.begin_subquery();
        t1.run("select count(*) as a from t").unwrap();
        // After t1's statement the refcount is back to 0 only if t2 hasn't
        // run yet; run t2 and ensure the final state is restored.
        t2.run("select count(*) as b from t").unwrap();
        drop(t1);
        drop(t2);
        assert!(engine_node.with_db(|db| db.seqscan_enabled()));
    }

    #[test]
    fn writes_wait_for_held_tickets() {
        let (np, _) = node(true);
        let ticket = np.begin_subquery();
        let np2 = Arc::clone(&np);
        let writer = std::thread::spawn(move || {
            np2.execute_write("insert into t values (500, 1.0)")
                .unwrap();
        });
        // Give the writer a moment to block on the snapshot lock.
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert_eq!(np.txn_count(), 0, "write must wait for the ticket");
        drop(ticket);
        writer.join().unwrap();
        assert_eq!(np.txn_count(), 1);
    }

    #[test]
    fn failed_seqscan_set_does_not_leak_the_refcount() {
        use apuama_cjdbc::{FaultPlan, FaultyConnection};
        let (np, engine_node) = node(true);
        let faulty = FaultyConnection::new(
            Arc::new(NodeConnection::new(engine_node.clone())),
            FaultPlan {
                only_matching: Some("enable_seqscan = off".into()),
                ..FaultPlan::fail_all()
            },
        );
        drop(np);
        let np = NodeProcessor::new(faulty.clone() as Arc<dyn Connection>, 4, true);
        // The interference SET fails; the sub-query surfaces the error…
        let ticket = np.begin_subquery();
        assert!(ticket.run("select count(*) as n from t").is_err());
        drop(ticket);
        // …but the refcount did not leak (the seed bug left it at 1,
        // permanently suppressing the restore).
        assert_eq!(np.svp_active(), 0);
        // After the fault clears, the toggle works end to end again.
        faulty.heal();
        let ticket = np.begin_subquery();
        ticket.run("select count(*) as n from t").unwrap();
        drop(ticket);
        assert!(engine_node.with_db(|db| db.seqscan_enabled()));
    }

    #[test]
    fn failed_restore_keeps_the_result_and_reports_health() {
        use apuama_cjdbc::{FaultPlan, FaultyConnection};
        let (np, engine_node) = node(true);
        let faulty = FaultyConnection::new(
            Arc::new(NodeConnection::new(engine_node.clone())),
            FaultPlan {
                only_matching: Some("enable_seqscan = on".into()),
                ..FaultPlan::fail_all()
            },
        );
        drop(np);
        let np = NodeProcessor::new(faulty.clone() as Arc<dyn Connection>, 4, true);
        let ticket = np.begin_subquery();
        // The sub-query succeeds; the restore SET fails. The seed discarded
        // the successful result here — it must survive.
        let out = ticket.run("select count(*) as n from t").unwrap();
        assert_eq!(out.rows[0][0], apuama_sql::Value::Int(100));
        drop(ticket);
        assert_eq!(np.svp_active(), 0);
        // The failure is surfaced through the health tracker instead.
        assert_eq!(np.health().restore_failures(0), 1);
        // Seqscan is genuinely still off (the restore failed)…
        assert!(!engine_node.with_db(|db| db.seqscan_enabled()));
        // …and the next successful round trip restores it.
        faulty.heal();
        let ticket = np.begin_subquery();
        ticket.run("select count(*) as n from t").unwrap();
        drop(ticket);
        assert!(engine_node.with_db(|db| db.seqscan_enabled()));
    }

    #[test]
    fn statement_outcomes_feed_the_health_tracker() {
        let (np, _) = node(true);
        let ticket = np.begin_subquery();
        ticket.run("select count(*) as n from t").unwrap();
        assert!(ticket.run("select nope from missing").is_err());
        drop(ticket);
        assert_eq!(np.health().successes(0), 1);
        assert_eq!(np.health().failures(0), 1);
    }

    #[test]
    fn pool_bounds_concurrency() {
        let (np, _) = node(false);
        // 16 threads over a pool of 4: everything completes (no deadlock)
        // and results are correct.
        std::thread::scope(|s| {
            for _ in 0..16 {
                let np = Arc::clone(&np);
                s.spawn(move || {
                    for _ in 0..10 {
                        np.execute_read("select count(*) as n from t").unwrap();
                    }
                });
            }
        });
    }
}
