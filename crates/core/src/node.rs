//! Node Processors: per-node connection pools, optimizer interference, and
//! the snapshot ordering SVP sub-queries need.
//!
//! Paper §4: "For each connection established by C-JDBC using Apuama, a
//! Node Processor is created and is responsible for mediating and
//! monitoring requests sent to its corresponding DBMS. To be able to
//! process multiple requests, the Node Processor creates a pool of
//! connections."

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex, RwLock};

use apuama_cjdbc::Connection;
use apuama_engine::{EngineResult, QueryOutput};

/// A counting semaphore bounding concurrent statements per node — the
/// connection pool. (In-process we do not hold real sockets; the pool's
/// observable behaviour — at most `capacity` statements in flight — is what
/// matters.)
#[derive(Debug)]
struct ConnectionPool {
    state: Mutex<usize>,
    available: Condvar,
    capacity: usize,
}

impl ConnectionPool {
    fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a pool needs at least one connection");
        ConnectionPool {
            state: Mutex::new(capacity),
            available: Condvar::new(),
            capacity,
        }
    }

    fn acquire(&self) {
        let mut free = self.state.lock();
        while *free == 0 {
            self.available.wait(&mut free);
        }
        *free -= 1;
    }

    fn release(&self) {
        let mut free = self.state.lock();
        *free += 1;
        drop(free);
        self.available.notify_one();
    }
}

/// RAII pool slot.
struct PoolSlot<'a>(&'a ConnectionPool);

impl Drop for PoolSlot<'_> {
    fn drop(&mut self) {
        self.0.release();
    }
}

/// State of the `enable_seqscan` interference: how many SVP sub-queries are
/// currently running on this node. The setting is flipped off when the
/// count leaves zero and restored when it returns to zero — the paper's
/// "Apuama disables full scans only before starting to process a query
/// using intra-query parallelism. When the query processing is finished,
/// the original settings are re-established."
#[derive(Debug, Default)]
struct SvpActivity {
    active: Mutex<u64>,
}

/// One node's processor.
pub struct NodeProcessor {
    conn: Arc<dyn Connection>,
    pool: ConnectionPool,
    svp: SvpActivity,
    /// Committed write transactions observed through this processor — the
    /// consistency protocol's per-node transaction counter.
    txn_counter: AtomicU64,
    /// Ordering lock standing in for the DBMS's snapshot isolation: SVP
    /// sub-queries hold it shared, updates exclusively, so an update
    /// admitted after sub-query dispatch cannot slip *before* a sub-query
    /// on one replica and *after* it on another (our engine has no MVCC —
    /// see DESIGN.md).
    snapshot: RwLock<()>,
    /// Whether to force index usage during SVP sub-queries (ablation knob;
    /// the paper always does).
    force_index: bool,
}

impl NodeProcessor {
    pub fn new(conn: Arc<dyn Connection>, pool_size: usize, force_index: bool) -> Arc<Self> {
        Arc::new(NodeProcessor {
            conn,
            pool: ConnectionPool::new(pool_size),
            svp: SvpActivity::default(),
            txn_counter: AtomicU64::new(0),
            snapshot: RwLock::new(()),
            force_index,
        })
    }

    /// Node name (from the wrapped connection).
    pub fn name(&self) -> &str {
        self.conn.name()
    }

    /// Pool capacity.
    pub fn pool_capacity(&self) -> usize {
        self.pool.capacity
    }

    /// Committed write transactions seen by this node.
    pub fn txn_count(&self) -> u64 {
        self.txn_counter.load(Ordering::SeqCst)
    }

    /// Pass-through read (non-SVP OLTP/OLAP query, or SET).
    pub fn execute_read(&self, sql: &str) -> EngineResult<QueryOutput> {
        self.pool.acquire();
        let _slot = PoolSlot(&self.pool);
        let _shared = self.snapshot.read();
        self.conn.execute(sql)
    }

    /// Write (single statement or transaction script): serialized against
    /// in-flight SVP sub-queries, counted on success.
    pub fn execute_write(&self, sql: &str) -> EngineResult<QueryOutput> {
        self.pool.acquire();
        let _slot = PoolSlot(&self.pool);
        let _exclusive = self.snapshot.write();
        let out = self.conn.execute(sql)?;
        self.txn_counter.fetch_add(1, Ordering::SeqCst);
        Ok(out)
    }

    /// Acquires the shared snapshot ticket for an SVP sub-query. The
    /// returned guard must be held until the sub-query finishes; callers
    /// signal "dispatched" (unblocking updates) once every node holds its
    /// ticket.
    pub fn begin_subquery(&self) -> SubqueryTicket<'_> {
        SubqueryTicket {
            node: self,
            _shared: self.snapshot.read(),
        }
    }
}

/// The dispatch ticket: holding it keeps this node's updates ordered after
/// the sub-query. Execute the sub-query through [`SubqueryTicket::run`].
pub struct SubqueryTicket<'a> {
    node: &'a NodeProcessor,
    _shared: parking_lot::RwLockReadGuard<'a, ()>,
}

impl SubqueryTicket<'_> {
    /// Runs the SVP sub-query, applying the optimizer interference.
    pub fn run(&self, sql: &str) -> EngineResult<QueryOutput> {
        let node = self.node;
        node.pool.acquire();
        let _slot = PoolSlot(&node.pool);
        if node.force_index {
            let mut active = node.svp.active.lock();
            *active += 1;
            if *active == 1 {
                node.conn.execute("set enable_seqscan = off")?;
            }
        }
        let result = node.conn.execute(sql);
        if node.force_index {
            let mut active = node.svp.active.lock();
            *active -= 1;
            if *active == 0 {
                // Restore the original setting even if the query failed.
                node.conn.execute("set enable_seqscan = on")?;
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apuama_cjdbc::{EngineNode, NodeConnection};
    use apuama_engine::Database;

    fn node(force_index: bool) -> (Arc<NodeProcessor>, Arc<EngineNode>) {
        let mut db = Database::new(64);
        db.execute("create table t (k int not null, v float, primary key (k)) clustered by (k)")
            .unwrap();
        for i in 0..100 {
            db.execute(&format!("insert into t values ({i}, {i}.0)"))
                .unwrap();
        }
        let engine_node = EngineNode::new("n0", db);
        let conn: Arc<dyn Connection> = Arc::new(NodeConnection::new(engine_node.clone()));
        (NodeProcessor::new(conn, 4, force_index), engine_node)
    }

    #[test]
    fn passthrough_read_and_write_count() {
        let (np, _) = node(true);
        assert_eq!(np.txn_count(), 0);
        np.execute_write("insert into t values (1000, 0.0)")
            .unwrap();
        assert_eq!(np.txn_count(), 1);
        let out = np.execute_read("select count(*) as n from t").unwrap();
        assert_eq!(out.rows[0][0], apuama_sql::Value::Int(101));
        // Reads do not bump the counter.
        assert_eq!(np.txn_count(), 1);
    }

    #[test]
    fn subquery_toggles_seqscan_off_and_back() {
        let (np, engine_node) = node(true);
        assert!(engine_node.with_db(|db| db.seqscan_enabled()));
        let ticket = np.begin_subquery();
        ticket
            .run("select sum(v) as s from t where k >= 10 and k < 20")
            .unwrap();
        drop(ticket);
        // Restored afterwards.
        assert!(engine_node.with_db(|db| db.seqscan_enabled()));
    }

    #[test]
    fn force_index_disabled_leaves_setting_alone() {
        let (np, engine_node) = node(false);
        let ticket = np.begin_subquery();
        // Run and make sure the setting never flipped (we can't observe
        // mid-flight here, but with force_index=false the toggle path is
        // never taken, so a poisoned 'off' would persist if it ran).
        ticket.run("select count(*) as n from t").unwrap();
        drop(ticket);
        assert!(engine_node.with_db(|db| db.seqscan_enabled()));
    }

    #[test]
    fn nested_subqueries_share_the_toggle() {
        let (np, engine_node) = node(true);
        let t1 = np.begin_subquery();
        let t2 = np.begin_subquery();
        t1.run("select count(*) as a from t").unwrap();
        // After t1's statement the refcount is back to 0 only if t2 hasn't
        // run yet; run t2 and ensure the final state is restored.
        t2.run("select count(*) as b from t").unwrap();
        drop(t1);
        drop(t2);
        assert!(engine_node.with_db(|db| db.seqscan_enabled()));
    }

    #[test]
    fn writes_wait_for_held_tickets() {
        let (np, _) = node(true);
        let ticket = np.begin_subquery();
        let np2 = Arc::clone(&np);
        let writer = std::thread::spawn(move || {
            np2.execute_write("insert into t values (500, 1.0)")
                .unwrap();
        });
        // Give the writer a moment to block on the snapshot lock.
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert_eq!(np.txn_count(), 0, "write must wait for the ticket");
        drop(ticket);
        writer.join().unwrap();
        assert_eq!(np.txn_count(), 1);
    }

    #[test]
    fn pool_bounds_concurrency() {
        let (np, _) = node(false);
        // 16 threads over a pool of 4: everything completes (no deadlock)
        // and results are correct.
        std::thread::scope(|s| {
            for _ in 0..16 {
                let np = Arc::clone(&np);
                s.spawn(move || {
                    for _ in 0..10 {
                        np.execute_read("select count(*) as n from t").unwrap();
                    }
                });
            }
        });
    }
}
