//! Simple Virtual Partitioning: query rewriting and composition planning.
//!
//! Given a query `Q` and `n` nodes, SVP produces sub-queries `Q_1..Q_n`,
//! "each formed by the addition of a different range predicate to Q at the
//! where clause" (paper §2), plus a *composition query* that rebuilds the
//! global result from the union of partial results:
//!
//! * partial aggregates are decomposed — `sum` stays `sum`, `count`
//!   re-aggregates as `sum` of partial counts, `min`/`max` stay, and `avg`
//!   "must be rewritten in the sub-queries as a sum() function followed by
//!   a count() function to address a global average" (§2);
//! * `GROUP BY` runs on both levels (per node, then over partials);
//! * `HAVING`, `ORDER BY` and `LIMIT` move entirely to the composition
//!   step (they constrain *global* aggregates);
//! * subqueries (`EXISTS`, `IN`, scalar) are left untouched: every replica
//!   holds the full database, so a subquery evaluates identically on every
//!   node — only the *outer* fact-table reference is partitioned. This is
//!   how Q4 and Q21 stay SVP-eligible even though the paper notes derived
//!   partitioning cannot be pushed *into* subqueries.
//!
//! When the query references several fact tables at the top level (Q3, Q5,
//! Q12, Q21 join `orders` and `lineitem`), the rewriter range-restricts
//! every reference that is connected to the primary one by a VPA-equality
//! join over the same key domain — the paper's derived partitioning. An
//! unconnected fact reference is simply left unpartitioned, which is always
//! correct on replicated data.

use apuama_sql::ast::{
    is_aggregate_name, Expr, Select, SelectItem, SetQuantifier, Statement, TableRef,
};
use apuama_sql::{parse_statement, visit, ParseError};

use crate::catalog::DataCatalog;

/// Name of the staging table the composition query reads. The Result
/// Composer loads every node's partial rows into this table.
pub const PARTIALS_TABLE: &str = "svp_partials";

/// Outcome of a rewrite attempt.
// The Svp variant embeds the full template for range re-rendering; plans
// are built once per query, so the size gap to Passthrough is irrelevant.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Rewritten {
    /// The query cannot (or need not) use SVP; run it on one node as-is.
    Passthrough {
        /// Why SVP was not applied (diagnostics, tests, EXPLAIN).
        reason: String,
    },
    /// The SVP plan: one sub-query per node plus the composition step.
    Svp(SvpPlan),
}

/// A complete SVP execution plan.
#[derive(Debug, Clone, PartialEq)]
pub struct SvpPlan {
    /// One sub-query per partition, in partition order.
    pub subqueries: Vec<String>,
    /// The same sub-queries in prepared form: statement text with `$N`
    /// placeholders for the range bounds, plus the bound values. All
    /// interior partitions share one statement text, so a node executing
    /// several ranges parses and plans once and re-binds per range.
    pub prepared: Vec<(String, Vec<apuama_sql::Value>)>,
    /// The VPA bounds behind each sub-query, `(lo, hi)` half-open with
    /// `None` = unbounded — what fault recovery feeds back into
    /// [`QueryTemplate::subquery_for_range`] to re-render a failed node's
    /// residual range for a surviving replica.
    pub ranges: Vec<(Option<i64>, Option<i64>)>,
    /// Column names of the partial results (the staging table's schema).
    pub partial_columns: Vec<String>,
    /// Composition query over [`PARTIALS_TABLE`].
    pub composition_sql: String,
    /// Output column names of the final result.
    pub output_columns: Vec<String>,
    /// Which tables were range-restricted (diagnostics).
    pub partitioned_tables: Vec<String>,
    /// Structured description of the composition step, for composers that
    /// fold partials incrementally instead of replaying `composition_sql`
    /// over a full staging table.
    pub compose: ComposeSpec,
    /// The template this plan was instantiated from, kept so the executor
    /// can re-invoke the rewriter on a residual range during reassignment.
    pub template: QueryTemplate,
}

/// How partial rows combine into the final result — derived during
/// decomposition, so an incremental composer never has to re-parse
/// [`SvpPlan::composition_sql`].
#[derive(Debug, Clone, PartialEq)]
pub enum ComposeSpec {
    /// Non-aggregated query: partial rows *are* result rows; composition
    /// only unions them, then applies the global ORDER BY / LIMIT.
    Union {
        /// ORDER BY keys as `(partial column index, descending)` — `Some`
        /// only when every key is a bare output column, which is what
        /// enables streaming top-k cutoff.
        order: Option<Vec<(usize, bool)>>,
        /// Global LIMIT, if any.
        limit: Option<u64>,
    },
    /// Aggregated query: the first `group_cols` partial columns are the
    /// grouping keys and column `group_cols + i` re-aggregates with
    /// `folds[i]`.
    Reaggregate {
        group_cols: usize,
        folds: Vec<FoldFn>,
    },
}

/// Re-aggregation function for one partial aggregate column. `count`
/// re-aggregates as `Sum` of partial counts and `avg` decomposes into two
/// `Sum` columns, so three folds cover every decomposable aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FoldFn {
    Sum,
    Min,
    Max,
}

/// A reusable virtual-partitioning template: the decomposed sub-query with
/// a *hole* where the range predicate goes, plus the composition plan.
///
/// [`SvpPlan`] instantiates the hole with n static ranges; Adaptive Virtual
/// Partitioning ([`crate::avp`]) instantiates it repeatedly with small,
/// dynamically sized chunks.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTemplate {
    /// The partial query without any range predicate.
    partial: Select,
    /// Partitioned references: binding name + partitioning metadata.
    partitioned: Vec<(String, crate::catalog::VirtualPartitioning)>,
    /// Column names of the partial results.
    pub partial_columns: Vec<String>,
    /// Composition query over [`PARTIALS_TABLE`].
    pub composition_sql: String,
    /// Output column names of the final result.
    pub output_columns: Vec<String>,
    /// Structured composition description (see [`ComposeSpec`]).
    pub compose: ComposeSpec,
}

impl QueryTemplate {
    /// The half-open VPA key range `[low, high + 1)` recorded in the Data
    /// Catalog for the primary partitioned table.
    pub fn key_range(&self) -> (i64, i64) {
        let vp = &self.partitioned[0].1;
        (vp.low, vp.high + 1)
    }

    /// Tables that receive range predicates (diagnostics).
    pub fn partitioned_tables(&self) -> Vec<String> {
        self.partitioned
            .iter()
            .map(|(b, vp)| {
                if *b == vp.table {
                    vp.table.clone()
                } else {
                    format!("{} ({})", vp.table, b)
                }
            })
            .collect()
    }

    /// Renders the sub-query restricted to VPA keys in `[lo, hi)`; `None`
    /// on either side leaves that side unbounded.
    pub fn subquery_for_range(&self, lo: Option<i64>, hi: Option<i64>) -> String {
        use apuama_sql::{BinOp, Value};
        let mut sub = self.partial.clone();
        for (binding, vp) in &self.partitioned {
            let col = || {
                Expr::Column(apuama_sql::ColumnRef::qualified(
                    binding.clone(),
                    vp.vpa.clone(),
                ))
            };
            let lo_pred =
                lo.map(|v| Expr::binary(col(), BinOp::GtEq, Expr::Literal(Value::Int(v))));
            let hi_pred = hi.map(|v| Expr::binary(col(), BinOp::Lt, Expr::Literal(Value::Int(v))));
            let pred = match (lo_pred, hi_pred) {
                (Some(a), Some(b)) => Some(a.and(b)),
                (Some(a), None) => Some(a),
                (None, Some(b)) => Some(b),
                (None, None) => None,
            };
            if let Some(pred) = pred {
                sub.selection = Some(match sub.selection.take() {
                    Some(w) => w.and(pred),
                    None => pred,
                });
            }
        }
        sub.to_string()
    }

    /// Renders the sub-query for `[lo, hi)` as a prepared statement:
    /// `$N` placeholders where [`QueryTemplate::subquery_for_range`] puts
    /// literals, plus the values to bind. Every partitioned binding shares
    /// the same one or two parameters, so the statement text depends only
    /// on *which* sides are bounded — interior SVP partitions all render
    /// the identical text and a node's plan cache satisfies them with one
    /// parse+plan. Binding the returned values reproduces the literal
    /// rendering byte for byte (the composed result cannot tell the paths
    /// apart).
    pub fn prepared_for_range(
        &self,
        lo: Option<i64>,
        hi: Option<i64>,
    ) -> (String, Vec<apuama_sql::Value>) {
        use apuama_sql::{BinOp, Value};
        let mut sub = self.partial.clone();
        let mut params = Vec::new();
        let lo_param = lo.map(|v| {
            params.push(Value::Int(v));
            params.len()
        });
        let hi_param = hi.map(|v| {
            params.push(Value::Int(v));
            params.len()
        });
        for (binding, vp) in &self.partitioned {
            let col = || {
                Expr::Column(apuama_sql::ColumnRef::qualified(
                    binding.clone(),
                    vp.vpa.clone(),
                ))
            };
            let lo_pred = lo_param.map(|n| Expr::binary(col(), BinOp::GtEq, Expr::Parameter(n)));
            let hi_pred = hi_param.map(|n| Expr::binary(col(), BinOp::Lt, Expr::Parameter(n)));
            let pred = match (lo_pred, hi_pred) {
                (Some(a), Some(b)) => Some(a.and(b)),
                (Some(a), None) => Some(a),
                (None, Some(b)) => Some(b),
                (None, None) => None,
            };
            if let Some(pred) = pred {
                sub.selection = Some(match sub.selection.take() {
                    Some(w) => w.and(pred),
                    None => pred,
                });
            }
        }
        (sub.to_string(), params)
    }

    /// Instantiates the paper's static SVP plan: `n` aligned partitions of
    /// the key range, first/last partitions unbounded outward.
    pub fn svp_plan(&self, n: usize) -> SvpPlan {
        assert!(n > 0);
        let vp = &self.partitioned[0].1;
        let mut subqueries = Vec::with_capacity(n);
        let mut prepared = Vec::with_capacity(n);
        let mut ranges = Vec::with_capacity(n);
        for i in 0..n {
            let (lo, hi) = vp.partition_bounds(i, n);
            subqueries.push(self.subquery_for_range(lo, hi));
            prepared.push(self.prepared_for_range(lo, hi));
            ranges.push((lo, hi));
        }
        SvpPlan {
            subqueries,
            prepared,
            ranges,
            partial_columns: self.partial_columns.clone(),
            composition_sql: self.composition_sql.clone(),
            output_columns: self.output_columns.clone(),
            partitioned_tables: self.partitioned_tables(),
            compose: self.compose.clone(),
            template: self.clone(),
        }
    }
}

/// The SVP rewriter, parameterized by the Data Catalog.
#[derive(Debug, Clone, Default)]
pub struct SvpRewriter {
    catalog: DataCatalog,
}

/// Internal: one aggregate call found in the query, with its
/// composition-side replacement (dedup by rendered SQL so `sum(x)` used in
/// two clauses shares one partial column).
struct AggSlot {
    key: String,
    replacement: Expr,
}

impl SvpRewriter {
    pub fn new(catalog: DataCatalog) -> Self {
        SvpRewriter { catalog }
    }

    /// The catalog in use.
    pub fn catalog(&self) -> &DataCatalog {
        &self.catalog
    }

    /// Rewrites SQL text for `n` nodes. Parse errors bubble; eligibility
    /// failures return [`Rewritten::Passthrough`].
    pub fn rewrite(&self, sql: &str, n: usize) -> Result<Rewritten, ParseError> {
        let stmt = parse_statement(sql)?;
        let Statement::Select(select) = stmt else {
            return Ok(passthrough("not a SELECT"));
        };
        Ok(self.rewrite_select(&select, n))
    }

    /// Rewrites a parsed SELECT for `n` nodes.
    pub fn rewrite_select(&self, q: &Select, n: usize) -> Rewritten {
        assert!(n > 0, "cluster has at least one node");
        match self.build_template(q) {
            Ok(template) => Rewritten::Svp(template.svp_plan(n)),
            Err(reason) => passthrough(reason),
        }
    }

    /// Like [`SvpRewriter::rewrite`] but returns the reusable
    /// [`QueryTemplate`] (for AVP and other adaptive executors) instead of
    /// a fixed n-way plan. `Ok(None)` means the query is not eligible.
    pub fn template(&self, sql: &str) -> Result<Option<QueryTemplate>, ParseError> {
        let stmt = parse_statement(sql)?;
        let Statement::Select(select) = stmt else {
            return Ok(None);
        };
        Ok(self.build_template(&select).ok())
    }

    /// Eligibility analysis + decomposition; `Err` carries the passthrough
    /// reason.
    fn build_template(&self, q: &Select) -> Result<QueryTemplate, String> {
        // -- eligibility -----------------------------------------------------
        if q.quantifier == SetQuantifier::Distinct {
            return Err("SELECT DISTINCT is not decomposed".into());
        }
        if q.items.iter().any(|i| matches!(i, SelectItem::Wildcard)) {
            return Err("SELECT * has no stable partial schema".into());
        }
        if has_distinct_aggregate(q) {
            return Err("DISTINCT aggregates cannot be recomposed from partials".into());
        }

        // -- find partitionable references ------------------------------------
        // (binding name, table name) of every top-level fact reference.
        let mut fact_refs: Vec<(String, String)> = Vec::new();
        for t in &q.from {
            if let TableRef::Table { name, alias } = t {
                if self.catalog.get(name).is_some() {
                    let binding = alias.clone().unwrap_or_else(|| name.clone());
                    fact_refs.push((binding, name.clone()));
                }
            }
        }
        let Some((primary_binding, primary_table)) = fact_refs.first().cloned() else {
            return Err("no virtually partitionable table referenced".into());
        };
        let primary_vp = self
            .catalog
            .get(&primary_table)
            .expect("fact_refs only holds catalog tables")
            .clone();

        // Derived partitioning: other fact refs in the same key domain that
        // are VPA-equality-joined to the primary reference.
        let conjuncts = split_conjuncts(q.selection.as_ref());
        let mut partitioned: Vec<(String, crate::catalog::VirtualPartitioning)> =
            vec![(primary_binding.clone(), primary_vp.clone())];
        for (binding, table) in fact_refs.iter().skip(1) {
            let vp = self.catalog.get(table).expect("catalog table").clone();
            if vp.domain != primary_vp.domain {
                continue;
            }
            let joined = conjuncts
                .iter()
                .any(|c| is_vpa_equality(c, &primary_binding, &primary_vp.vpa, binding, &vp.vpa));
            if joined {
                partitioned.push((binding.clone(), vp));
            }
        }

        // -- decomposition ----------------------------------------------------
        let aggregated = !q.group_by.is_empty() || query_has_aggregates(q);
        let decomposition = if aggregated {
            decompose_aggregated(q)?
        } else {
            decompose_plain(q)
        };

        // -- template ----------------------------------------------------------
        let partial = Select {
            quantifier: SetQuantifier::All,
            items: decomposition
                .partial_items
                .iter()
                .map(|(alias, expr)| SelectItem::Expr {
                    expr: expr.clone(),
                    alias: Some(alias.clone()),
                })
                .collect(),
            from: q.from.clone(),
            selection: q.selection.clone(),
            group_by: q.group_by.clone(),
            having: None,
            order_by: vec![],
            limit: None,
        };
        Ok(QueryTemplate {
            partial,
            partitioned,
            partial_columns: decomposition
                .partial_items
                .iter()
                .map(|(alias, _)| alias.clone())
                .collect(),
            composition_sql: decomposition.composition.to_string(),
            output_columns: decomposition.output_columns,
            compose: decomposition.compose,
        })
    }
}

fn passthrough(reason: impl Into<String>) -> Rewritten {
    Rewritten::Passthrough {
        reason: reason.into(),
    }
}

/// Decomposition product shared by both query shapes.
struct Decomposition {
    partial_items: Vec<(String, Expr)>,
    composition: Select,
    output_columns: Vec<String>,
    compose: ComposeSpec,
}

/// Splits a predicate into top-level conjuncts (local copy to avoid a
/// dependency on engine internals).
fn split_conjuncts(pred: Option<&Expr>) -> Vec<Expr> {
    fn go(e: &Expr, out: &mut Vec<Expr>) {
        if let Expr::Binary {
            left,
            op: apuama_sql::BinOp::And,
            right,
        } = e
        {
            go(left, out);
            go(right, out);
        } else {
            out.push(e.clone());
        }
    }
    let mut out = Vec::new();
    if let Some(p) = pred {
        go(p, &mut out);
    }
    out
}

/// True if the conjunct is `a.vpa_a = b.vpa_b` in either order.
fn is_vpa_equality(c: &Expr, binding_a: &str, vpa_a: &str, binding_b: &str, vpa_b: &str) -> bool {
    let Expr::Binary {
        left,
        op: apuama_sql::BinOp::Eq,
        right,
    } = c
    else {
        return false;
    };
    let is_ref = |e: &Expr, binding: &str, vpa: &str| -> bool {
        match e {
            Expr::Column(col) => {
                col.column == vpa
                    && match &col.table {
                        Some(q) => q == binding,
                        None => true,
                    }
            }
            _ => false,
        }
    };
    (is_ref(left, binding_a, vpa_a) && is_ref(right, binding_b, vpa_b))
        || (is_ref(left, binding_b, vpa_b) && is_ref(right, binding_a, vpa_a))
}

fn query_has_aggregates(q: &Select) -> bool {
    let item_agg = q.items.iter().any(|i| match i {
        SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
        SelectItem::Wildcard => false,
    });
    item_agg
        || q.having.as_ref().is_some_and(|h| h.contains_aggregate())
        || q.order_by.iter().any(|o| o.expr.contains_aggregate())
}

fn has_distinct_aggregate(q: &Select) -> bool {
    let mut found = false;
    let mut check = |e: &Expr| {
        visit::shallow_walk(e, &mut |x| {
            if let Expr::Function { name, distinct, .. } = x {
                if *distinct && is_aggregate_name(name) {
                    found = true;
                }
            }
        });
    };
    for item in &q.items {
        if let SelectItem::Expr { expr, .. } = item {
            check(expr);
        }
    }
    if let Some(h) = &q.having {
        check(h);
    }
    for o in &q.order_by {
        check(&o.expr);
    }
    found
}

/// Non-aggregated queries: partials are the original projection; the
/// composition is a plain union with the global ORDER BY / LIMIT.
fn decompose_plain(q: &Select) -> Decomposition {
    let mut partial_items = Vec::with_capacity(q.items.len());
    let mut output_columns = Vec::with_capacity(q.items.len());
    for (i, item) in q.items.iter().enumerate() {
        let SelectItem::Expr { expr, .. } = item else {
            unreachable!("wildcards rejected in eligibility");
        };
        let name = item.output_name(i);
        partial_items.push((name.clone(), expr.clone()));
        output_columns.push(name);
    }
    let composition = Select {
        items: output_columns
            .iter()
            .map(|n| SelectItem::Expr {
                expr: Expr::col(n.clone()),
                alias: None,
            })
            .collect(),
        from: vec![TableRef::Table {
            name: PARTIALS_TABLE.into(),
            alias: None,
        }],
        order_by: rewrite_order_by_plain(q, &output_columns),
        limit: q.limit,
        ..Select::default()
    };
    // Streaming cutoff needs every ORDER BY key to be a bare output column
    // (anything else cannot be evaluated against a partial row alone).
    let order = if q.order_by.is_empty() {
        Some(vec![])
    } else {
        q.order_by
            .iter()
            .map(|o| match &o.expr {
                Expr::Column(c) => output_columns
                    .iter()
                    .position(|n| *n == c.column)
                    .map(|i| (i, o.desc)),
                _ => None,
            })
            .collect()
    };
    let compose = ComposeSpec::Union {
        order,
        limit: q.limit,
    };
    Decomposition {
        partial_items,
        composition,
        output_columns,
        compose,
    }
}

/// For non-aggregated queries, ORDER BY items must reference output
/// columns; anything else already fell back at eligibility time... except
/// we accept column expressions matching output names only and silently
/// keep the others as-is (they will fail at composition, surfacing a clear
/// error rather than a wrong answer).
fn rewrite_order_by_plain(q: &Select, output_columns: &[String]) -> Vec<apuama_sql::OrderByItem> {
    q.order_by
        .iter()
        .map(|o| {
            let expr = match &o.expr {
                Expr::Column(c) if output_columns.contains(&c.column) => {
                    Expr::col(c.column.clone())
                }
                other => other.clone(),
            };
            apuama_sql::OrderByItem { expr, desc: o.desc }
        })
        .collect()
}

/// Aggregated queries: the full decomposition.
fn decompose_aggregated(q: &Select) -> Result<Decomposition, String> {
    let mut slots: Vec<AggSlot> = Vec::new();
    let mut partial_items: Vec<(String, Expr)> = Vec::new();
    // Fold function per aggregate partial column, appended in lockstep with
    // `partial_items` pushes inside `transform_expr`.
    let mut folds: Vec<FoldFn> = Vec::new();

    // 1. Group-by expressions become partial columns (named after the
    //    select item that exposes them, or a synthetic name).
    let mut group_aliases: Vec<(Expr, String)> = Vec::new();
    for (gi, g) in q.group_by.iter().enumerate() {
        let alias = q
            .items
            .iter()
            .enumerate()
            .find_map(|(i, item)| match item {
                SelectItem::Expr { expr, .. } if expr == g => Some(item.output_name(i)),
                _ => None,
            })
            .unwrap_or_else(|| format!("svp_grp{gi}"));
        partial_items.push((alias.clone(), g.clone()));
        group_aliases.push((g.clone(), alias));
    }

    // 2. Transform each output clause.
    let mut comp_items = Vec::with_capacity(q.items.len());
    let mut output_columns = Vec::with_capacity(q.items.len());
    for (i, item) in q.items.iter().enumerate() {
        let SelectItem::Expr { expr, .. } = item else {
            unreachable!("wildcards rejected in eligibility");
        };
        let name = item.output_name(i);
        let comp_expr = transform_expr(
            expr,
            &group_aliases,
            &mut slots,
            &mut partial_items,
            &mut folds,
        )?;
        comp_items.push(SelectItem::Expr {
            expr: comp_expr,
            alias: Some(name.clone()),
        });
        output_columns.push(name);
    }
    let comp_having = match &q.having {
        None => None,
        Some(h) => Some(transform_expr(
            h,
            &group_aliases,
            &mut slots,
            &mut partial_items,
            &mut folds,
        )?),
    };
    let comp_order: Vec<apuama_sql::OrderByItem> = q
        .order_by
        .iter()
        .map(|o| {
            let expr = match &o.expr {
                // Bare reference to an output column stays as-is.
                Expr::Column(c) if c.table.is_none() && output_columns.contains(&c.column) => {
                    Ok(Expr::col(c.column.clone()))
                }
                other => transform_expr(
                    other,
                    &group_aliases,
                    &mut slots,
                    &mut partial_items,
                    &mut folds,
                ),
            }?;
            Ok(apuama_sql::OrderByItem { expr, desc: o.desc })
        })
        .collect::<Result<_, String>>()?;

    let composition = Select {
        items: comp_items,
        from: vec![TableRef::Table {
            name: PARTIALS_TABLE.into(),
            alias: None,
        }],
        group_by: group_aliases
            .iter()
            .map(|(_, alias)| Expr::col(alias.clone()))
            .collect(),
        having: comp_having,
        order_by: comp_order,
        limit: q.limit,
        ..Select::default()
    };
    let compose = ComposeSpec::Reaggregate {
        group_cols: group_aliases.len(),
        folds,
    };
    Ok(Decomposition {
        partial_items,
        composition,
        output_columns,
        compose,
    })
}

/// Rewrites one expression for the composition query: aggregate calls are
/// decomposed into re-aggregations over partial columns; grouped
/// expressions become their partial-column references; anything else must
/// be built from those two, or the query is not decomposable.
fn transform_expr(
    e: &Expr,
    group_aliases: &[(Expr, String)],
    slots: &mut Vec<AggSlot>,
    partial_items: &mut Vec<(String, Expr)>,
    folds: &mut Vec<FoldFn>,
) -> Result<Expr, String> {
    // Grouped expression? Any shape is fine if it structurally matches.
    if let Some((_, alias)) = group_aliases.iter().find(|(g, _)| g == e) {
        return Ok(Expr::col(alias.clone()));
    }
    match e {
        Expr::Function {
            name,
            args,
            distinct: false,
            star,
        } if is_aggregate_name(name) => {
            let key = e.to_string();
            if let Some(slot) = slots.iter().find(|s| s.key == key) {
                return Ok(slot.replacement.clone());
            }
            let k = slots.len();
            let (partials, replacement) = match name.as_str() {
                // sum(e) ⇒ partial sum, recomposed by sum.
                "sum" => {
                    let alias = format!("svp_agg{k}");
                    (
                        vec![(alias.clone(), e.clone(), FoldFn::Sum)],
                        agg_over_column("sum", &alias),
                    )
                }
                // count(*) / count(e) ⇒ partial count, recomposed by SUM of
                // partial counts.
                "count" => {
                    let alias = format!("svp_agg{k}");
                    (
                        vec![(alias.clone(), e.clone(), FoldFn::Sum)],
                        agg_over_column("sum", &alias),
                    )
                }
                "min" | "max" => {
                    let alias = format!("svp_agg{k}");
                    let fold = if name == "min" {
                        FoldFn::Min
                    } else {
                        FoldFn::Max
                    };
                    (
                        vec![(alias.clone(), e.clone(), fold)],
                        agg_over_column(name, &alias),
                    )
                }
                // avg(x) ⇒ partial sum(x) and count(x); global average is
                // sum of sums over sum of counts (§2).
                "avg" => {
                    let arg = args
                        .first()
                        .cloned()
                        .ok_or_else(|| "avg() needs an argument".to_string())?;
                    let sum_alias = format!("svp_agg{k}_sum");
                    let cnt_alias = format!("svp_agg{k}_cnt");
                    let sum_part = Expr::Function {
                        name: "sum".into(),
                        args: vec![arg.clone()],
                        distinct: false,
                        star: false,
                    };
                    let cnt_part = Expr::Function {
                        name: "count".into(),
                        args: vec![arg],
                        distinct: false,
                        star: false,
                    };
                    // Force float division: integer sums over integer
                    // counts would otherwise truncate (SQL's int/int rule).
                    let replacement = Expr::binary(
                        Expr::binary(
                            Expr::Literal(apuama_sql::Value::Float(1.0)),
                            apuama_sql::BinOp::Mul,
                            agg_over_column("sum", &sum_alias),
                        ),
                        apuama_sql::BinOp::Div,
                        agg_over_column("sum", &cnt_alias),
                    );
                    (
                        vec![
                            (sum_alias, sum_part, FoldFn::Sum),
                            (cnt_alias, cnt_part, FoldFn::Sum),
                        ],
                        replacement,
                    )
                }
                other => return Err(format!("aggregate {other}() is not decomposable")),
            };
            let _ = star;
            for (alias, expr, fold) in partials {
                partial_items.push((alias, expr));
                folds.push(fold);
            }
            slots.push(AggSlot {
                key,
                replacement: replacement.clone(),
            });
            Ok(replacement)
        }
        Expr::Literal(_) => Ok(e.clone()),
        Expr::Column(_) => Err(format!(
            "non-grouped column '{e}' in an aggregated clause cannot be recomposed"
        )),
        Expr::Binary { left, op, right } => Ok(Expr::Binary {
            left: Box::new(transform_expr(
                left,
                group_aliases,
                slots,
                partial_items,
                folds,
            )?),
            op: *op,
            right: Box::new(transform_expr(
                right,
                group_aliases,
                slots,
                partial_items,
                folds,
            )?),
        }),
        Expr::Unary { op, expr } => Ok(Expr::Unary {
            op: *op,
            expr: Box::new(transform_expr(
                expr,
                group_aliases,
                slots,
                partial_items,
                folds,
            )?),
        }),
        Expr::Case {
            branches,
            else_expr,
        } => {
            let mut new_branches = Vec::with_capacity(branches.len());
            for (c, r) in branches {
                new_branches.push((
                    transform_expr(c, group_aliases, slots, partial_items, folds)?,
                    transform_expr(r, group_aliases, slots, partial_items, folds)?,
                ));
            }
            let new_else = match else_expr {
                Some(x) => Some(Box::new(transform_expr(
                    x,
                    group_aliases,
                    slots,
                    partial_items,
                    folds,
                )?)),
                None => None,
            };
            Ok(Expr::Case {
                branches: new_branches,
                else_expr: new_else,
            })
        }
        other => Err(format!(
            "clause '{other}' mixes aggregation with shapes SVP cannot recompose"
        )),
    }
}

fn agg_over_column(func: &str, column: &str) -> Expr {
    Expr::Function {
        name: func.to_string(),
        args: vec![Expr::col(column.to_string())],
        distinct: false,
        star: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::DataCatalog;

    fn rewriter() -> SvpRewriter {
        SvpRewriter::new(DataCatalog::tpch(6_000_000))
    }

    fn svp(sql: &str, n: usize) -> SvpPlan {
        match rewriter().rewrite(sql, n).unwrap() {
            Rewritten::Svp(p) => p,
            Rewritten::Passthrough { reason } => panic!("unexpected passthrough: {reason}"),
        }
    }

    #[test]
    fn paper_running_example() {
        // §2: "select sum(l_extendedprice) from lineitem" over 4 nodes.
        let plan = svp("select sum(l_extendedprice) from lineitem", 4);
        assert_eq!(plan.subqueries.len(), 4);
        assert!(plan.subqueries[1].contains("lineitem.l_orderkey >= 1500001"));
        assert!(plan.subqueries[1].contains("lineitem.l_orderkey < 3000001"));
        // Partial sums recomposed by a global sum.
        assert!(plan.composition_sql.contains("sum(svp_agg0)"));
        assert!(plan.composition_sql.contains(PARTIALS_TABLE));
        assert_eq!(plan.partitioned_tables, vec!["lineitem".to_string()]);
    }

    #[test]
    fn subqueries_parse_back() {
        let plan = svp(
            "select l_returnflag, sum(l_quantity) as q, avg(l_discount) as d, count(*) as n \
             from lineitem group by l_returnflag order by l_returnflag",
            3,
        );
        for sub in &plan.subqueries {
            apuama_sql::parse_statement(sub).unwrap_or_else(|e| panic!("{e}\n{sub}"));
        }
        apuama_sql::parse_statement(&plan.composition_sql).unwrap();
    }

    #[test]
    fn avg_decomposes_to_sum_and_count() {
        let plan = svp("select avg(l_quantity) as a from lineitem", 2);
        assert!(plan.partial_columns.iter().any(|c| c.ends_with("_sum")));
        assert!(plan.partial_columns.iter().any(|c| c.ends_with("_cnt")));
        assert!(plan.composition_sql.contains("sum(svp_agg0_sum)"));
        assert!(plan.composition_sql.contains("sum(svp_agg0_cnt)"));
    }

    #[test]
    fn count_recomposes_as_sum() {
        let plan = svp("select count(*) as n from orders", 2);
        assert!(plan.composition_sql.contains("sum(svp_agg0) as n"));
        // Partition predicate applies to orders via its own VPA.
        assert!(plan.subqueries[0].contains("orders.o_orderkey <"));
    }

    #[test]
    fn min_max_stay_min_max() {
        let plan = svp(
            "select min(o_totalprice) as lo, max(o_totalprice) as hi from orders",
            2,
        );
        assert!(plan.composition_sql.contains("min(svp_agg0) as lo"));
        assert!(plan.composition_sql.contains("max(svp_agg1) as hi"));
    }

    #[test]
    fn derived_partitioning_restricts_both_fact_tables() {
        let plan = svp(
            "select count(*) as n from orders, lineitem where l_orderkey = o_orderkey",
            4,
        );
        assert!(plan.subqueries[1].contains("orders.o_orderkey"));
        assert!(plan.subqueries[1].contains("lineitem.l_orderkey"));
        assert_eq!(plan.partitioned_tables.len(), 2);
    }

    #[test]
    fn unjoined_second_fact_table_is_not_partitioned() {
        // No VPA equality join: only the primary reference is restricted.
        let plan = svp(
            "select count(*) as n from orders, lineitem where l_partkey = o_custkey",
            4,
        );
        assert_eq!(plan.partitioned_tables, vec!["orders".to_string()]);
        assert!(!plan.subqueries[1].contains("lineitem.l_orderkey >="));
    }

    #[test]
    fn aliased_fact_table_uses_alias_qualifier() {
        let plan = svp("select count(*) as n from lineitem l1", 2);
        assert!(plan.subqueries[1].contains("l1.l_orderkey >="));
        assert_eq!(plan.partitioned_tables, vec!["lineitem (l1)".to_string()]);
    }

    #[test]
    fn subquery_references_stay_unpartitioned() {
        // Q4's shape: the EXISTS body must NOT receive a range predicate.
        let plan = svp(
            "select o_orderpriority, count(*) as c from orders \
             where exists (select * from lineitem where l_orderkey = o_orderkey) \
             group by o_orderpriority order by o_orderpriority",
            4,
        );
        let sub = &plan.subqueries[2];
        // The exists body is between the parens; crude but effective check:
        // the only l_orderkey range predicates mention the *outer* orders VPA.
        assert!(sub.contains("orders.o_orderkey >="));
        assert!(!sub.contains("lineitem.l_orderkey >="));
    }

    #[test]
    fn group_by_runs_on_both_levels() {
        let plan = svp(
            "select o_orderpriority, count(*) as c from orders group by o_orderpriority",
            2,
        );
        for sub in &plan.subqueries {
            assert!(sub.contains("group by o_orderpriority"));
        }
        assert!(plan.composition_sql.contains("group by o_orderpriority"));
    }

    #[test]
    fn having_order_limit_move_to_composition() {
        let plan = svp(
            "select o_orderpriority, count(*) as c from orders \
             group by o_orderpriority having count(*) > 5 \
             order by c desc limit 3",
            2,
        );
        for sub in &plan.subqueries {
            assert!(!sub.contains("having"));
            assert!(!sub.contains("order by"));
            assert!(!sub.contains("limit"));
        }
        assert!(plan.composition_sql.contains("having"));
        assert!(plan.composition_sql.contains("order by c desc"));
        assert!(plan.composition_sql.contains("limit 3"));
        // HAVING over a global count must re-aggregate partial counts.
        assert!(plan.composition_sql.contains("(sum(svp_agg0) > 5)"));
    }

    #[test]
    fn expression_over_aggregates_recomposes() {
        // Q14's shape.
        let plan = svp(
            "select 100.0 * sum(l_extendedprice * l_discount) / sum(l_extendedprice) as r \
             from lineitem",
            2,
        );
        assert_eq!(plan.partial_columns.len(), 2);
        assert!(plan.composition_sql.contains("sum(svp_agg0)"));
        assert!(plan.composition_sql.contains("sum(svp_agg1)"));
    }

    #[test]
    fn shared_aggregate_uses_one_partial_column() {
        let plan = svp(
            "select sum(l_quantity) as a, sum(l_quantity) / count(*) as b from lineitem",
            2,
        );
        // sum(l_quantity) appears twice but yields one partial column; plus
        // one for count(*).
        assert_eq!(plan.partial_columns.len(), 2);
    }

    #[test]
    fn one_node_plan_has_no_range_predicate() {
        let plan = svp("select count(*) as n from lineitem", 1);
        assert_eq!(plan.subqueries.len(), 1);
        assert!(!plan.subqueries[0].contains("l_orderkey"));
    }

    #[test]
    fn passthrough_cases() {
        let r = rewriter();
        for (sql, why) in [
            ("select c_name from customer", "partitionable"),
            ("select distinct l_orderkey from lineitem", "DISTINCT"),
            (
                "select count(distinct l_suppkey) from lineitem",
                "DISTINCT aggregates",
            ),
            ("select * from lineitem", "stable partial schema"),
        ] {
            match r.rewrite(sql, 4).unwrap() {
                Rewritten::Passthrough { reason } => {
                    assert!(reason.contains(why), "{sql}: {reason}")
                }
                Rewritten::Svp(_) => panic!("{sql} should not be SVP-eligible"),
            }
        }
    }

    #[test]
    fn non_select_is_passthrough() {
        match rewriter()
            .rewrite("insert into lineitem values (1)", 2)
            .unwrap()
        {
            Rewritten::Passthrough { reason } => assert!(reason.contains("not a SELECT")),
            _ => panic!(),
        }
    }

    #[test]
    fn non_aggregated_query_unions_partials() {
        let plan = svp(
            "select l_orderkey, l_quantity from lineitem where l_quantity > 49.0 \
             order by l_orderkey limit 5",
            2,
        );
        for sub in &plan.subqueries {
            assert!(!sub.contains("limit"));
        }
        assert!(plan.composition_sql.contains("order by l_orderkey"));
        assert!(plan.composition_sql.contains("limit 5"));
        assert_eq!(plan.partial_columns, vec!["l_orderkey", "l_quantity"]);
    }

    #[test]
    fn prepared_subqueries_bind_back_to_the_literal_rendering() {
        use apuama_sql::{parse_statement, visit, Statement};
        let plan = svp(
            "select l_returnflag, sum(l_quantity) as q, count(*) as n \
             from lineitem group by l_returnflag",
            4,
        );
        assert_eq!(plan.prepared.len(), plan.subqueries.len());
        for (i, (text, params)) in plan.prepared.iter().enumerate() {
            let Statement::Select(mut q) = parse_statement(text).unwrap() else {
                panic!()
            };
            assert_eq!(visit::parameter_count(&q), params.len());
            visit::bind_parameters(&mut q, params).unwrap();
            assert_eq!(q.to_string(), plan.subqueries[i], "partition {i}");
        }
        // Outer partitions carry one bound side each; interior partitions
        // carry both and share one statement text (one plan per node).
        assert_eq!(plan.prepared[0].1.len(), 1);
        assert_eq!(plan.prepared[3].1.len(), 1);
        assert_eq!(plan.prepared[1].1.len(), 2);
        assert_eq!(plan.prepared[1].0, plan.prepared[2].0);
        assert_ne!(plan.prepared[1].1, plan.prepared[2].1);
    }

    #[test]
    fn prepared_derived_partitioning_shares_parameters_across_bindings() {
        let plan = svp(
            "select count(*) as n from orders, lineitem where l_orderkey = o_orderkey",
            4,
        );
        let (text, params) = &plan.prepared[1];
        // Both fact references are range-restricted by the *same* two
        // parameters, not four.
        assert_eq!(params.len(), 2);
        assert!(text.contains("orders.o_orderkey >= $1"));
        assert!(text.contains("lineitem.l_orderkey >= $1"));
        assert!(text.contains("orders.o_orderkey < $2"));
        assert!(text.contains("lineitem.l_orderkey < $2"));
    }

    #[test]
    fn one_node_prepared_plan_has_no_parameters() {
        let plan = svp("select count(*) as n from lineitem", 1);
        assert_eq!(plan.prepared[0].1, vec![]);
        assert_eq!(plan.prepared[0].0, plan.subqueries[0]);
    }

    #[test]
    fn all_tpch_queries_are_svp_eligible() {
        use apuama_tpch::{QueryParams, ALL_QUERIES};
        let r = rewriter();
        let p = QueryParams::default();
        for q in ALL_QUERIES {
            match r.rewrite(&q.sql(&p), 8).unwrap() {
                Rewritten::Svp(plan) => {
                    assert_eq!(plan.subqueries.len(), 8, "{}", q.label());
                    for sub in &plan.subqueries {
                        apuama_sql::parse_statement(sub)
                            .unwrap_or_else(|e| panic!("{}: {e}\n{sub}", q.label()));
                    }
                    apuama_sql::parse_statement(&plan.composition_sql)
                        .unwrap_or_else(|e| panic!("{}: {e}", q.label()));
                }
                Rewritten::Passthrough { reason } => {
                    panic!("{} unexpectedly passthrough: {reason}", q.label())
                }
            }
        }
    }
}
