//! The Apuama Engine — intra-query parallelism for a C-JDBC-style cluster.
//!
//! This crate is the paper's contribution: a non-intrusive middleware layer
//! between the C-JDBC controller and the per-node DBMSs that adds
//! **Simple Virtual Partitioning (SVP)** intra-query parallelism for OLAP
//! queries while leaving OLTP processing (and C-JDBC itself) untouched.
//!
//! Components, named as in the paper's Fig. 1(b):
//!
//! * **Query Parser** + **Data Catalog** ([`catalog`]) — determines which
//!   tables a query references and whether any of them is virtually
//!   partitionable (fact tables clustered by their VPA);
//! * **SVP rewriter** ([`rewrite`]) — produces one sub-query per node by
//!   injecting a VPA range predicate, decomposing aggregates
//!   (`avg → sum + count`, `count → sum` of partial counts), and
//!   synthesizing the composition query that re-aggregates partial results;
//! * **Node Processor** ([`node`]) — per-node connection pool, and the
//!   optimizer interference (`SET enable_seqscan = off` while SVP
//!   sub-queries run, restored afterwards);
//! * **Result Composer** ([`composer`]) — loads partial results into an
//!   in-memory engine (the paper uses HSQLDB) and runs the composition
//!   query;
//! * **consistency protocol** ([`consistency`]) — per-node transaction
//!   counters plus the update-blocking gate: an SVP query waits for all
//!   replicas to converge, blocks newly arriving update transactions until
//!   every sub-query has been dispatched, then lets updates flow again
//!   under the DBMS's isolation;
//! * **Intra-Query Executor** ([`engine`]) — ties it all together and
//!   exposes per-node [`apuama_cjdbc::Connection`]s so C-JDBC plugs in
//!   without source changes.

pub mod avp;
pub mod catalog;
pub mod composer;
pub mod consistency;
pub mod engine;
pub mod fault;
pub mod node;
pub mod rewrite;

pub use avp::{execute_avp, execute_avp_streaming, AvpConfig, AvpOutcome, AvpRun, NodeTrace};
pub use catalog::{DataCatalog, VirtualPartitioning};
pub use composer::{
    compose, compose_with, Composed, Composer, ComposerStrategy, ReusableComposer, StagedComposer,
    StreamingComposer,
};
pub use consistency::{ConsistencyMode, UpdateGate};
pub use engine::{ApuamaConfig, ApuamaConnection, ApuamaEngine, SvpExecution};
pub use fault::{FaultPolicy, RecoveryReport};
pub use node::NodeProcessor;
pub use rewrite::{ComposeSpec, FoldFn, QueryTemplate, Rewritten, SvpPlan, SvpRewriter};
