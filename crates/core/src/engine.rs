//! The Apuama Engine and its per-node connection seam.
//!
//! C-JDBC is configured with one Database Backend per node; each backend's
//! "JDBC driver" is an [`ApuamaConnection`] handed out by
//! [`ApuamaEngine::connection`]. Reads that the Data Catalog marks
//! SVP-eligible are hijacked into the Intra-Query Executor (sub-queries on
//! every node in parallel, then result composition); everything else —
//! OLTP statements, non-rewritable queries — passes straight through to the
//! node the controller picked, so C-JDBC's inter-query parallelism and
//! write ordering are preserved bit-for-bit.

use std::sync::Arc;
use std::time::Instant;

use apuama_cjdbc::{classify, Connection, StatementKind};
use apuama_engine::{EngineResult, ExecStats, PhaseTiming, QueryOutput};

use crate::catalog::DataCatalog;
use crate::composer::{Composer, ComposerStrategy};
use crate::consistency::{ConsistencyMode, UpdateGate};
use crate::node::NodeProcessor;
use crate::rewrite::{Rewritten, SvpPlan, SvpRewriter};
use parking_lot::Mutex;

/// Configuration knobs (defaults reproduce the paper; the alternatives are
/// ablation arms).
#[derive(Debug, Clone, Copy)]
pub struct ApuamaConfig {
    /// Intra-query parallelism on/off. Off = plain C-JDBC behaviour.
    pub svp_enabled: bool,
    /// `SET enable_seqscan = off` interference around SVP sub-queries.
    pub force_index: bool,
    /// Replica-consistency protocol.
    pub consistency: ConsistencyMode,
    /// Per-node connection-pool size.
    pub pool_size: usize,
    /// Result-composition strategy (staged staging table vs streaming
    /// fold).
    pub composer: ComposerStrategy,
}

impl Default for ApuamaConfig {
    fn default() -> Self {
        ApuamaConfig {
            svp_enabled: true,
            force_index: true,
            consistency: ConsistencyMode::Blocking,
            pool_size: 8,
            composer: ComposerStrategy::default(),
        }
    }
}

/// Detailed result of one SVP execution (the simulator and the benches
/// price the pieces separately).
#[derive(Debug, Clone)]
pub struct SvpExecution {
    /// Final result; its `stats` is the merge of all sub-query stats plus
    /// the composition stats.
    pub output: QueryOutput,
    /// Per-node sub-query statistics, in node order.
    pub per_node: Vec<ExecStats>,
    /// Composition-step statistics.
    pub composition_stats: ExecStats,
    /// Total partial rows shipped to the composer.
    pub partial_rows: u64,
    /// Wall-clock phase breakdown of the pipelined execution.
    pub timing: PhaseTiming,
}

/// The engine: Cluster Administrator + Node Processors (paper Fig. 1b).
pub struct ApuamaEngine {
    nodes: Vec<Arc<NodeProcessor>>,
    rewriter: SvpRewriter,
    gate: UpdateGate,
    config: ApuamaConfig,
    /// Pooled incremental composer (strategy fixed at construction). Kept
    /// across queries so the staging engine survives between same-template
    /// compositions.
    composer: Mutex<Box<dyn Composer + Send>>,
}

impl ApuamaEngine {
    /// Builds the engine over the given DBMS connections (one per node).
    pub fn new(
        conns: Vec<Arc<dyn Connection>>,
        catalog: DataCatalog,
        config: ApuamaConfig,
    ) -> Arc<ApuamaEngine> {
        assert!(!conns.is_empty(), "a cluster needs at least one node");
        let n = conns.len();
        Arc::new(ApuamaEngine {
            nodes: conns
                .into_iter()
                .map(|c| NodeProcessor::new(c, config.pool_size, config.force_index))
                .collect(),
            rewriter: SvpRewriter::new(catalog),
            gate: UpdateGate::new(n, config.consistency),
            config,
            composer: Mutex::new(config.composer.new_composer()),
        })
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The active configuration.
    pub fn config(&self) -> &ApuamaConfig {
        &self.config
    }

    /// The SVP rewriter (exposed for EXPLAIN-style inspection and the
    /// simulator, which prices sub-queries individually).
    pub fn rewriter(&self) -> &SvpRewriter {
        &self.rewriter
    }

    /// Per-node transaction counters (consistency diagnostics).
    pub fn txn_counters(&self) -> Vec<u64> {
        self.gate.counters()
    }

    /// The per-node connection C-JDBC's backend `node` plugs into.
    pub fn connection(self: &Arc<Self>, node: usize) -> Arc<ApuamaConnection> {
        assert!(node < self.nodes.len());
        Arc::new(ApuamaConnection {
            engine: Arc::clone(self),
            node,
            name: format!("apuama-{}", self.nodes[node].name()),
        })
    }

    /// Connections for all nodes, in order — what you hand to
    /// [`apuama_cjdbc::Controller::new`].
    pub fn connections(self: &Arc<Self>) -> Vec<Arc<dyn Connection>> {
        (0..self.nodes.len())
            .map(|i| self.connection(i) as Arc<dyn Connection>)
            .collect()
    }

    /// Read entry point: SVP when eligible, pass-through to the
    /// controller-chosen node otherwise.
    pub fn execute_read(&self, preferred_node: usize, sql: &str) -> EngineResult<QueryOutput> {
        if self.config.svp_enabled {
            match self.rewriter.rewrite(sql, self.nodes.len())? {
                Rewritten::Svp(plan) => return self.execute_svp(&plan).map(|e| e.output),
                Rewritten::Passthrough { .. } => {}
            }
        }
        self.nodes[preferred_node].execute_read(sql)
    }

    /// Write entry point: pass-through under the consistency gate.
    pub fn execute_write(&self, node: usize, sql: &str) -> EngineResult<QueryOutput> {
        self.gate.begin_node_write(node, sql);
        let result = self.nodes[node].execute_write(sql);
        self.gate.end_node_write(node, sql, result.is_ok());
        result
    }

    /// The Intra-Query Executor: consistency wait → parallel dispatch →
    /// early update release → pipelined composition.
    ///
    /// Sub-query results are not join-all'ed: each node thread sends its
    /// partial through a channel the moment it completes, and the composer
    /// folds it in while the remaining sub-queries are still running. The
    /// update gate still releases at "dispatched and started" — composition
    /// happens strictly after the release point.
    pub fn execute_svp(&self, plan: &SvpPlan) -> EngineResult<SvpExecution> {
        assert_eq!(
            plan.subqueries.len(),
            self.nodes.len(),
            "plan was rewritten for a different cluster size"
        );
        // 1. Wait for replica convergence; hold new updates.
        self.gate.block_updates_and_wait();

        // 2. Dispatch all sub-queries; release updates once every node has
        //    its snapshot ticket ("sent and started").
        let n = self.nodes.len();
        let barrier = std::sync::Barrier::new(n + 1);
        let (tx, rx) = crossbeam::channel::unbounded();
        std::thread::scope(|s| {
            for (i, (node, sql)) in self.nodes.iter().zip(&plan.subqueries).enumerate() {
                let barrier = &barrier;
                let tx = tx.clone();
                s.spawn(move || {
                    let ticket = node.begin_subquery();
                    barrier.wait();
                    // The receiver drains all n messages, but ignore send
                    // errors anyway so a panicking main can't wedge a node.
                    let _ = tx.send((i, ticket.run(sql)));
                });
            }
            drop(tx);
            barrier.wait();
            // 3. All sub-queries dispatched and snapshot-ordered: updates
            //    may flow again (paper §3).
            self.gate.release_updates();
            let dispatched = Instant::now();

            // 4. Pipelined composition: consume partials as they complete.
            let mut composer = self.composer.lock();
            composer.begin(plan)?;
            let mut per_node: Vec<Option<ExecStats>> = vec![None; n];
            let mut first_error: Option<(usize, apuama_engine::EngineError)> = None;
            let mut accept_error: Option<apuama_engine::EngineError> = None;
            let mut timing = PhaseTiming::default();
            let mut received = 0usize;
            for (i, result) in rx.iter() {
                received += 1;
                if received == 1 {
                    timing.first_partial_ms = dispatched.elapsed().as_secs_f64() * 1e3;
                }
                let last = received == n;
                match result {
                    Ok(out) => {
                        per_node[i] = Some(out.stats);
                        if first_error.is_none() && accept_error.is_none() {
                            let t = Instant::now();
                            if let Err(e) = composer.accept(i, out) {
                                accept_error = Some(e);
                            }
                            let spent = t.elapsed().as_secs_f64() * 1e3;
                            if last {
                                timing.compose_tail_ms += spent;
                            } else {
                                timing.compose_overlap_ms += spent;
                            }
                        }
                    }
                    Err(e) => {
                        // Keep draining so every node thread finishes, but
                        // remember the lowest-node error (the order the old
                        // join-all reported).
                        if first_error.as_ref().is_none_or(|(j, _)| i < *j) {
                            first_error = Some((i, e));
                        }
                    }
                }
            }
            if let Some((_, e)) = first_error {
                return Err(e);
            }
            if let Some(e) = accept_error {
                return Err(e);
            }

            // 5. Finish the composition (serial tail).
            let t = Instant::now();
            let composed = composer.finish()?;
            timing.compose_tail_ms += t.elapsed().as_secs_f64() * 1e3;
            timing.total_ms = dispatched.elapsed().as_secs_f64() * 1e3;

            let per_node: Vec<ExecStats> = per_node
                .into_iter()
                .map(|s| s.expect("every node reported"))
                .collect();
            let mut merged = ExecStats::default();
            for s in &per_node {
                merged.merge(s);
            }
            merged.merge(&composed.composition_stats);
            let mut output = composed.output;
            output.stats = merged;
            Ok(SvpExecution {
                output,
                per_node,
                composition_stats: composed.composition_stats,
                partial_rows: composed.partial_rows,
                timing,
            })
        })
    }
}

/// The driver C-JDBC's backend for one node connects through.
pub struct ApuamaConnection {
    engine: Arc<ApuamaEngine>,
    node: usize,
    name: String,
}

impl ApuamaConnection {
    /// The node index this connection fronts.
    pub fn node_index(&self) -> usize {
        self.node
    }
}

impl Connection for ApuamaConnection {
    fn execute(&self, sql: &str) -> EngineResult<QueryOutput> {
        match classify(sql)? {
            StatementKind::Read => self.engine.execute_read(self.node, sql),
            StatementKind::Write => self.engine.execute_write(self.node, sql),
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apuama_cjdbc::{Controller, ControllerConfig, EngineNode, NodeConnection};
    use apuama_engine::Database;
    use apuama_sql::Value;

    /// A tiny replicated cluster with Apuama interposed.
    fn cluster(n: usize, config: ApuamaConfig) -> (Arc<ApuamaEngine>, Vec<Arc<EngineNode>>) {
        let mut nodes = Vec::new();
        let mut conns: Vec<Arc<dyn Connection>> = Vec::new();
        for i in 0..n {
            let mut db = Database::in_memory();
            db.execute(
                "create table orders (o_orderkey int not null, o_totalprice float, \
                 primary key (o_orderkey)) clustered by (o_orderkey)",
            )
            .unwrap();
            let rows: Vec<Vec<Value>> = (1..=60i64)
                .map(|k| vec![Value::Int(k), Value::Float(k as f64)])
                .collect();
            db.load_table("orders", rows).unwrap();
            let node = EngineNode::new(format!("n{i}"), db);
            conns.push(Arc::new(NodeConnection::new(node.clone())));
            nodes.push(node);
        }
        let engine = ApuamaEngine::new(conns, DataCatalog::tpch(60), config);
        (engine, nodes)
    }

    #[test]
    fn svp_result_matches_single_node() {
        let (engine, nodes) = cluster(4, ApuamaConfig::default());
        let sql = "select count(*) as n, sum(o_totalprice) as t, avg(o_totalprice) as a \
                   from orders";
        let reference = nodes[0].with_db(|db| db.query(sql).unwrap());
        let out = engine.execute_read(0, sql).unwrap();
        assert_eq!(out.columns, vec!["n", "t", "a"]);
        assert_eq!(out.rows[0][0], reference.rows[0][0]);
        assert_eq!(out.rows[0][1], reference.rows[0][1]);
        let (a, b) = (
            out.rows[0][2].as_f64().unwrap(),
            reference.rows[0][2].as_f64().unwrap(),
        );
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn svp_execution_reports_per_node_stats() {
        let (engine, _) = cluster(3, ApuamaConfig::default());
        let Rewritten::Svp(plan) = engine
            .rewriter()
            .rewrite("select sum(o_totalprice) as t from orders", 3)
            .unwrap()
        else {
            panic!()
        };
        let exec = engine.execute_svp(&plan).unwrap();
        assert_eq!(exec.per_node.len(), 3);
        // Partitioning means each node scanned roughly a third of the rows.
        for s in &exec.per_node {
            assert!(s.rows_scanned <= 30, "scanned {}", s.rows_scanned);
        }
        assert_eq!(exec.partial_rows, 3);
    }

    #[test]
    fn non_eligible_query_passes_through_to_preferred_node() {
        let (engine, _) = cluster(3, ApuamaConfig::default());
        // No fact table involved once we create a dimension-only table on
        // every node. Writes are broadcast statement-by-statement, the way
        // the C-JDBC scheduler serializes them.
        for stmt in ["create table dim (d int)", "insert into dim values (7)"] {
            for i in 0..3 {
                engine.execute_write(i, stmt).unwrap();
            }
        }
        let out = engine.execute_read(2, "select d from dim").unwrap();
        assert_eq!(out.rows, vec![vec![Value::Int(7)]]);
    }

    #[test]
    fn svp_disabled_config_behaves_like_cjdbc() {
        let (engine, _) = cluster(
            3,
            ApuamaConfig {
                svp_enabled: false,
                ..ApuamaConfig::default()
            },
        );
        let out = engine
            .execute_read(1, "select count(*) as n from orders")
            .unwrap();
        // Still correct, just single-node.
        assert_eq!(out.rows[0][0], Value::Int(60));
    }

    #[test]
    fn through_cjdbc_controller() {
        let (engine, _) = cluster(4, ApuamaConfig::default());
        let controller = Controller::new(engine.connections(), ControllerConfig::default());
        // OLAP query goes through the controller, gets hijacked by Apuama.
        let (out, _) = controller
            .execute("select sum(o_totalprice) as t from orders")
            .unwrap();
        assert_eq!(out.rows[0][0], Value::Float((1..=60).sum::<i64>() as f64));
        // An update broadcast through the controller reaches all replicas
        // and the counters converge.
        controller
            .execute("insert into orders values (61, 61.0)")
            .unwrap();
        assert_eq!(engine.txn_counters(), vec![1, 1, 1, 1]);
        let (out, _) = controller
            .execute("select count(*) as n from orders")
            .unwrap();
        assert_eq!(out.rows[0][0], Value::Int(61));
    }

    #[test]
    fn updates_and_svp_interleave_consistently() {
        let (engine, _) = cluster(3, ApuamaConfig::default());
        let controller = Arc::new(Controller::new(
            engine.connections(),
            ControllerConfig::default(),
        ));
        let sums: Vec<i64> = std::thread::scope(|s| {
            let writer = {
                let c = Arc::clone(&controller);
                s.spawn(move || {
                    for k in 61..=100i64 {
                        c.execute(&format!("insert into orders values ({k}, 0.0)"))
                            .unwrap();
                    }
                })
            };
            let reader = {
                let c = Arc::clone(&controller);
                s.spawn(move || {
                    let mut counts = Vec::new();
                    for _ in 0..15 {
                        let (out, _) = c.execute("select count(*) as n from orders").unwrap();
                        counts.push(out.rows[0][0].as_i64().unwrap());
                    }
                    counts
                })
            };
            writer.join().unwrap();
            reader.join().unwrap()
        });
        // Every SVP count is a consistent snapshot: monotone within the
        // writer's progression and within bounds. (A torn read across
        // partitions would typically double- or zero-count in-flight rows.)
        for w in sums.windows(2) {
            assert!(w[1] >= w[0], "counts regressed: {sums:?}");
        }
        assert!(sums.iter().all(|&n| (60..=100).contains(&n)), "{sums:?}");
        // Final state: all replicas converged.
        assert_eq!(engine.txn_counters(), vec![40, 40, 40]);
        let (out, _) = controller
            .execute("select count(*) as n from orders")
            .unwrap();
        assert_eq!(out.rows[0][0], Value::Int(100));
    }

    #[test]
    fn refresh_keys_beyond_catalog_range_are_still_counted() {
        // The catalog recorded high=60; insert far beyond it and make sure
        // the unbounded last partition owns the new keys.
        let (engine, _) = cluster(4, ApuamaConfig::default());
        let controller = Controller::new(engine.connections(), ControllerConfig::default());
        controller
            .execute("insert into orders values (5000, 1.0)")
            .unwrap();
        let (out, _) = controller
            .execute("select count(*) as n from orders")
            .unwrap();
        assert_eq!(out.rows[0][0], Value::Int(61));
    }
}
