//! The Apuama Engine and its per-node connection seam.
//!
//! C-JDBC is configured with one Database Backend per node; each backend's
//! "JDBC driver" is an [`ApuamaConnection`] handed out by
//! [`ApuamaEngine::connection`]. Reads that the Data Catalog marks
//! SVP-eligible are hijacked into the Intra-Query Executor (sub-queries on
//! every node in parallel, then result composition); everything else —
//! OLTP statements, non-rewritable queries — passes straight through to the
//! node the controller picked, so C-JDBC's inter-query parallelism and
//! write ordering are preserved bit-for-bit.

use std::sync::Arc;
use std::time::Instant;

use apuama_cjdbc::{classify, Connection, HealthTracker, StatementKind};
use apuama_engine::{
    EngineError, EngineResult, ExecStats, PhaseTiming, QueryGovernor, QueryOutput,
};
use apuama_sql::Value;

use crate::catalog::DataCatalog;
use crate::composer::{Composer, ComposerStrategy};
use crate::consistency::{ConsistencyMode, UpdateGate};
use crate::fault::{FaultPolicy, RecoveryReport};
use crate::node::NodeProcessor;
use crate::rewrite::{Rewritten, SvpPlan, SvpRewriter};
use parking_lot::Mutex;

/// Configuration knobs (defaults reproduce the paper; the alternatives are
/// ablation arms).
#[derive(Debug, Clone, Copy)]
pub struct ApuamaConfig {
    /// Intra-query parallelism on/off. Off = plain C-JDBC behaviour.
    pub svp_enabled: bool,
    /// `SET enable_seqscan = off` interference around SVP sub-queries.
    pub force_index: bool,
    /// Replica-consistency protocol.
    pub consistency: ConsistencyMode,
    /// Per-node connection-pool size.
    pub pool_size: usize,
    /// Result-composition strategy (staged staging table vs streaming
    /// fold).
    pub composer: ComposerStrategy,
    /// What to do when a sub-query fails: timeout, retries, reassignment,
    /// circuit breaker (see [`FaultPolicy`]).
    pub fault: FaultPolicy,
    /// Whole-SVP-query deadline (consistency wait + dispatch + composition).
    /// Distinct from [`FaultPolicy::subquery_timeout_ms`], which bounds one
    /// attempt on one node: when *this* expires the entire query is doomed,
    /// so every sibling sub-query is cancelled rather than reassigned.
    /// `None` = no deadline.
    pub query_deadline_ms: Option<u64>,
    /// Per-node morsel-parallel worker count (the third parallelism tier:
    /// intra-node, across one node's cores — the paper's testbed machines
    /// were 2-way SMPs). Applied to every node as
    /// `SET parallel_workers = N` at construction, so SVP sub-queries
    /// inherit it. `None` leaves each node's default (its own core count).
    pub parallel_workers: Option<usize>,
}

impl Default for ApuamaConfig {
    fn default() -> Self {
        ApuamaConfig {
            svp_enabled: true,
            force_index: true,
            consistency: ConsistencyMode::Blocking,
            pool_size: 8,
            composer: ComposerStrategy::default(),
            fault: FaultPolicy::default(),
            query_deadline_ms: None,
            parallel_workers: None,
        }
    }
}

/// Detailed result of one SVP execution (the simulator and the benches
/// price the pieces separately).
#[derive(Debug, Clone)]
pub struct SvpExecution {
    /// Final result; its `stats` is the merge of all sub-query stats plus
    /// the composition stats.
    pub output: QueryOutput,
    /// Per-node sub-query statistics, in node order.
    pub per_node: Vec<ExecStats>,
    /// Composition-step statistics.
    pub composition_stats: ExecStats,
    /// Total partial rows shipped to the composer.
    pub partial_rows: u64,
    /// Wall-clock phase breakdown of the pipelined execution.
    pub timing: PhaseTiming,
    /// What fault handling had to do (empty/zero on a healthy run).
    pub recovery: RecoveryReport,
}

/// The engine: Cluster Administrator + Node Processors (paper Fig. 1b).
pub struct ApuamaEngine {
    nodes: Vec<Arc<NodeProcessor>>,
    rewriter: SvpRewriter,
    gate: UpdateGate,
    config: ApuamaConfig,
    /// Pooled incremental composer (strategy fixed at construction). Kept
    /// across queries so the staging engine survives between same-template
    /// compositions.
    composer: Mutex<Box<dyn Composer + Send>>,
    /// Cluster-wide circuit breaker: fed by every node processor, consulted
    /// by the SVP dispatcher (and shareable with the C-JDBC read balancer
    /// via [`apuama_cjdbc::Controller::with_health`]).
    health: Arc<HealthTracker>,
}

impl ApuamaEngine {
    /// Builds the engine over the given DBMS connections (one per node).
    pub fn new(
        conns: Vec<Arc<dyn Connection>>,
        catalog: DataCatalog,
        config: ApuamaConfig,
    ) -> Arc<ApuamaEngine> {
        assert!(!conns.is_empty(), "a cluster needs at least one node");
        let n = conns.len();
        if let Some(w) = config.parallel_workers {
            // Session-level: every statement the middleware sends — SVP
            // sub-queries included — runs under this intra-node worker
            // count. Results are byte-identical at any setting, so a
            // failure here only costs the knob, not correctness.
            for c in &conns {
                let _ = c.execute(&format!("set parallel_workers = {w}"));
            }
        }
        let health = Arc::new(HealthTracker::new(n, config.fault.breaker()));
        Arc::new(ApuamaEngine {
            nodes: conns
                .into_iter()
                .enumerate()
                .map(|(i, c)| {
                    NodeProcessor::with_health(
                        c,
                        config.pool_size,
                        config.force_index,
                        Arc::clone(&health),
                        i,
                    )
                })
                .collect(),
            rewriter: SvpRewriter::new(catalog),
            gate: UpdateGate::new(n, config.consistency),
            config,
            composer: Mutex::new(config.composer.new_composer()),
            health,
        })
    }

    /// The cluster health tracker (circuit breaker per node).
    pub fn health(&self) -> &Arc<HealthTracker> {
        &self.health
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The active configuration.
    pub fn config(&self) -> &ApuamaConfig {
        &self.config
    }

    /// The SVP rewriter (exposed for EXPLAIN-style inspection and the
    /// simulator, which prices sub-queries individually).
    pub fn rewriter(&self) -> &SvpRewriter {
        &self.rewriter
    }

    /// Per-node transaction counters (consistency diagnostics).
    pub fn txn_counters(&self) -> Vec<u64> {
        self.gate.counters()
    }

    /// The update gate (rejoin tests and diagnostics).
    pub fn gate(&self) -> &UpdateGate {
        &self.gate
    }

    /// This engine as controller rejoin hooks — wire into
    /// [`apuama_cjdbc::ControllerConfig`]'s `rejoin_hooks` so backend
    /// disable/rejoin transitions keep the update gate's view of the
    /// cluster in sync (see the [`apuama_cjdbc::RejoinHooks`] impl below).
    pub fn rejoin_hooks(self: &Arc<Self>) -> Arc<dyn apuama_cjdbc::RejoinHooks> {
        Arc::clone(self) as Arc<dyn apuama_cjdbc::RejoinHooks>
    }

    /// The per-node connection C-JDBC's backend `node` plugs into.
    pub fn connection(self: &Arc<Self>, node: usize) -> Arc<ApuamaConnection> {
        assert!(node < self.nodes.len());
        Arc::new(ApuamaConnection {
            engine: Arc::clone(self),
            node,
            name: format!("apuama-{}", self.nodes[node].name()),
        })
    }

    /// Connections for all nodes, in order — what you hand to
    /// [`apuama_cjdbc::Controller::new`].
    pub fn connections(self: &Arc<Self>) -> Vec<Arc<dyn Connection>> {
        (0..self.nodes.len())
            .map(|i| self.connection(i) as Arc<dyn Connection>)
            .collect()
    }

    /// Read entry point: SVP when eligible, pass-through to the
    /// controller-chosen node otherwise.
    pub fn execute_read(&self, preferred_node: usize, sql: &str) -> EngineResult<QueryOutput> {
        if self.config.svp_enabled {
            match self.rewriter.rewrite(sql, self.nodes.len())? {
                Rewritten::Svp(plan) => return self.execute_svp(&plan).map(|e| e.output),
                Rewritten::Passthrough { .. } => {}
            }
        }
        self.nodes[preferred_node].execute_read(sql)
    }

    /// [`ApuamaEngine::execute_read`] under a caller-supplied governor:
    /// SVP-eligible queries derive their per-query governor from it,
    /// pass-throughs run the statement governed on the preferred node.
    pub fn execute_read_governed(
        &self,
        preferred_node: usize,
        sql: &str,
        gov: &QueryGovernor,
    ) -> EngineResult<QueryOutput> {
        if self.config.svp_enabled {
            match self.rewriter.rewrite(sql, self.nodes.len())? {
                Rewritten::Svp(plan) => {
                    return self
                        .execute_svp_governed(&plan, Some(gov))
                        .map(|e| e.output)
                }
                Rewritten::Passthrough { .. } => {}
            }
        }
        self.nodes[preferred_node].execute_read_governed(sql, gov)
    }

    /// The per-node processors, in node order (governance diagnostics:
    /// in-flight counts, backend memory peaks).
    pub fn node_processors(&self) -> &[Arc<NodeProcessor>] {
        &self.nodes
    }

    /// Write entry point: pass-through under the consistency gate.
    pub fn execute_write(&self, node: usize, sql: &str) -> EngineResult<QueryOutput> {
        self.gate.begin_node_write(node, sql);
        let result = self.nodes[node].execute_write(sql);
        self.gate.end_node_write(node, sql, result.is_ok());
        result
    }

    /// The Intra-Query Executor: consistency wait → parallel dispatch →
    /// early update release → pipelined composition, with fault recovery.
    ///
    /// Sub-query results are not join-all'ed: each node thread sends its
    /// partial through a channel the moment it completes, and the composer
    /// folds it in while the remaining sub-queries are still running. The
    /// update gate still releases at "dispatched and started" — composition
    /// happens strictly after the release point.
    ///
    /// Sub-queries are dispatched as *prepared statements*
    /// ([`SvpPlan::prepared`]): each worker registers its statement text
    /// with the node's plan cache once, then every execution — including
    /// retries and repeated runs of the same eval query — binds range
    /// values into the cached plan instead of re-parsing and re-planning
    /// the rendered SQL. Connections without a plan cache transparently
    /// fall back to executing the identically rendered text.
    ///
    /// Fault handling (see DESIGN.md §8, driven by [`FaultPolicy`]):
    ///
    /// * Ranges owned by a node whose circuit is open are routed to
    ///   available replicas at dispatch time.
    /// * Each sub-query runs under an optional deadline and bounded
    ///   same-node retries with exponential backoff.
    /// * A range whose node exhausted its retries is re-rendered through
    ///   the rewriter ([`crate::rewrite::QueryTemplate::prepared_for_range`]
    ///   on the residual range) and handed whole to one surviving replica,
    ///   with the partial attributed to the *original* range index — so the
    ///   composed result is byte-identical to the healthy run (splitting
    ///   the residual across survivors would change float-fold order).
    /// * Reassigned sub-queries take fresh snapshot tickets after the gate
    ///   released, so they may observe a slightly later snapshot than the
    ///   original dispatch wave (documented relaxation; the paper does not
    ///   specify failure behaviour).
    pub fn execute_svp(&self, plan: &SvpPlan) -> EngineResult<SvpExecution> {
        self.execute_svp_governed(plan, None)
    }

    /// [`ApuamaEngine::execute_svp`] under a caller-supplied governor
    /// (client cancel / deadline). A per-query governor is derived from it
    /// (plus [`ApuamaConfig::query_deadline_ms`], earlier deadline wins) and
    /// shared by every sub-query: cancelling it — by the caller, or
    /// internally once the query is doomed — stops every sibling at its
    /// next batch boundary instead of letting them run to completion.
    pub fn execute_svp_governed(
        &self,
        plan: &SvpPlan,
        caller: Option<&QueryGovernor>,
    ) -> EngineResult<SvpExecution> {
        assert_eq!(
            plan.subqueries.len(),
            self.nodes.len(),
            "plan was rewritten for a different cluster size"
        );
        // Per-query governor: a child of the caller's (so our internal
        // doom-cancel never fires the caller's token) with the configured
        // whole-query deadline. The clock starts *before* the consistency
        // wait — a stuck gate counts against the deadline too.
        let gov = {
            let g = match caller {
                Some(c) => c.child(),
                None => QueryGovernor::new(),
            };
            match self.config.query_deadline_ms {
                Some(ms) => g.with_deadline_in(std::time::Duration::from_millis(ms)),
                None => g,
            }
        };
        // 1. Wait for replica convergence; hold new updates.
        self.gate.block_updates_and_wait();
        if let Err(e) = gov.check() {
            self.gate.release_updates();
            return Err(e);
        }

        let n = self.nodes.len();
        let policy = self.config.fault;
        let mut recovery = RecoveryReport::default();

        // 2. Assign ranges: node i owns range i unless its circuit is open
        //    or it is quarantined (disabled / catching up after a failure),
        //    in which case the range is spread round-robin over available
        //    nodes. If every circuit is open, dispatch to the non-quarantined
        //    nodes as planned — those attempts double as probes; quarantine,
        //    by contrast, is a hard fence (a catching-up replica would
        //    return stale rows), so a quarantined node never receives a
        //    range, and an all-quarantined cluster is an error.
        let quarantined: Vec<bool> = (0..n).map(|i| self.health.is_quarantined(i)).collect();
        if quarantined.iter().all(|&q| q) {
            self.gate.release_updates();
            return Err(EngineError::Unsupported(
                "every node is quarantined: no replica may serve SVP ranges".into(),
            ));
        }
        let assignment: Vec<usize> = {
            let available: Vec<bool> = (0..n).map(|i| self.health.is_available(i)).collect();
            let targets: Vec<usize> = if available.iter().any(|&a| a) {
                (0..n).filter(|&i| available[i]).collect()
            } else {
                (0..n).filter(|&i| !quarantined[i]).collect()
            };
            let mut rr = 0usize;
            (0..n)
                .map(|range| {
                    if targets.contains(&range) {
                        range
                    } else {
                        let t = targets[rr % targets.len()];
                        rr += 1;
                        t
                    }
                })
                .collect()
        };
        for (range, &node) in assignment.iter().enumerate() {
            if node != range {
                recovery.reassigned.push((range, node));
            }
        }
        let mut units: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (range, &node) in assignment.iter().enumerate() {
            units[node].push(range);
        }
        let workers: Vec<usize> = (0..n).filter(|&i| !units[i].is_empty()).collect();

        // 3. Dispatch; release updates once every worker has its snapshot
        //    ticket ("sent and started").
        let barrier = std::sync::Barrier::new(workers.len() + 1);
        let (tx, rx) = crossbeam::channel::unbounded();
        std::thread::scope(|s| {
            for &i in &workers {
                let node = &self.nodes[i];
                let my_ranges = units[i].clone();
                let barrier = &barrier;
                let tx = tx.clone();
                let policy = &policy;
                let gov = &gov;
                s.spawn(move || {
                    // Warm the node's plan cache before taking the snapshot
                    // ticket: interior ranges share one statement text, so
                    // this is one parse+plan per node per eval query, and
                    // every execution below re-binds instead of re-planning.
                    // Errors are ignored — execution reports anything real.
                    for &range in &my_ranges {
                        let _ = node.prepare_subquery(&plan.prepared[range].0);
                    }
                    let ticket = node.begin_subquery();
                    barrier.wait();
                    for range in my_ranges {
                        let (sql, params) = &plan.prepared[range];
                        let (attempts, result) = run_with_retries(node, sql, params, policy, gov);
                        // The receiver drains every message, but ignore send
                        // errors anyway so a panicking main can't wedge a
                        // node.
                        let _ = tx.send((range, i, attempts, result));
                    }
                    drop(ticket);
                });
            }
            drop(tx);
            barrier.wait();
            // All sub-queries dispatched and snapshot-ordered: updates may
            // flow again (paper §3).
            self.gate.release_updates();
            let dispatched = Instant::now();

            // 4. Pipelined composition: consume partials as they complete.
            let mut composer = self.composer.lock();
            if let Err(e) = composer.begin(plan) {
                composer.abort();
                return Err(e);
            }
            let mut per_node: Vec<Option<ExecStats>> = vec![None; n];
            let mut failed: Vec<(usize, EngineError)> = Vec::new();
            let mut tried: Vec<Vec<usize>> = vec![Vec::new(); n];
            let mut accept_error: Option<EngineError> = None;
            let mut timing = PhaseTiming::default();
            let mut first_composed = false;
            let mut outstanding = n;
            for (range, node_idx, attempts, result) in rx.iter() {
                outstanding -= 1;
                recovery.retries += attempts.saturating_sub(1);
                match result {
                    Ok(out) => {
                        recovery.failed_attempts += attempts - 1;
                        per_node[range] = Some(out.stats);
                        if accept_error.is_none() {
                            let t = Instant::now();
                            let ok = match composer.accept_batched(range, out) {
                                Ok(()) => true,
                                Err(e) => {
                                    accept_error = Some(e);
                                    false
                                }
                            };
                            let spent = t.elapsed().as_secs_f64() * 1e3;
                            if outstanding == 0 {
                                timing.compose_tail_ms += spent;
                            } else {
                                timing.compose_overlap_ms += spent;
                            }
                            if ok && !first_composed {
                                // Stamped only by a successfully composed
                                // partial — errored partials used to skew
                                // this under fault injection.
                                first_composed = true;
                                timing.first_partial_ms = dispatched.elapsed().as_secs_f64() * 1e3;
                            }
                        }
                    }
                    Err(e) => {
                        recovery.failed_attempts += attempts;
                        tried[range].push(node_idx);
                        failed.push((range, e));
                        // With reassignment off a single failure dooms the
                        // query — cancel the siblings so they stop at their
                        // next batch boundary instead of finishing work
                        // nobody will compose.
                        if !policy.reassign {
                            gov.cancel();
                        }
                    }
                }
                if accept_error.is_some() {
                    // Composition is broken: nothing else can be accepted,
                    // so the query is doomed regardless of reassignment.
                    gov.cancel();
                }
            }

            // 5. Reassignment rounds: every still-missing range goes whole
            //    to a surviving replica it has not been tried on, until all
            //    ranges composed or some range has nowhere left to go.
            while policy.reassign
                && !failed.is_empty()
                && accept_error.is_none()
                && !gov.is_cancelled()
            {
                let mut batch: Vec<(usize, usize)> = Vec::with_capacity(failed.len());
                let mut stuck = false;
                for (rr, (range, _)) in failed.iter().enumerate() {
                    let candidates: Vec<usize> = (0..n)
                        .filter(|j| !tried[*range].contains(j))
                        .filter(|&j| self.health.is_available(j))
                        .collect();
                    if candidates.is_empty() {
                        stuck = true;
                        break;
                    }
                    batch.push((*range, candidates[rr % candidates.len()]));
                }
                if stuck {
                    break;
                }
                let (rtx, rrx) = crossbeam::channel::unbounded();
                for &(range, target) in &batch {
                    let node = &self.nodes[target];
                    let rtx = rtx.clone();
                    let policy = &policy;
                    let gov = &gov;
                    // Re-invoke the rewriter on the residual range. A whole
                    // failed node's residual is its entire original range,
                    // so the prepared statement binds the same values — and
                    // therefore the composed result is byte-identical to the
                    // planned sub-query.
                    let (lo, hi) = plan.ranges[range];
                    let (sql, bound) = plan.template.prepared_for_range(lo, hi);
                    s.spawn(move || {
                        let _ = node.prepare_subquery(&sql);
                        let ticket = node.begin_subquery();
                        let (attempts, result) = run_with_retries(node, &sql, &bound, policy, gov);
                        drop(ticket);
                        let _ = rtx.send((range, target, attempts, result));
                    });
                }
                drop(rtx);
                let mut outstanding = batch.len();
                let mut still_failed: Vec<(usize, EngineError)> = Vec::new();
                for (range, target, attempts, result) in rrx.iter() {
                    outstanding -= 1;
                    recovery.retries += attempts.saturating_sub(1);
                    match result {
                        Ok(out) => {
                            recovery.failed_attempts += attempts - 1;
                            recovery.reassigned.push((range, target));
                            per_node[range] = Some(out.stats);
                            if accept_error.is_none() {
                                let t = Instant::now();
                                let ok = match composer.accept_batched(range, out) {
                                    Ok(()) => true,
                                    Err(e) => {
                                        accept_error = Some(e);
                                        false
                                    }
                                };
                                let spent = t.elapsed().as_secs_f64() * 1e3;
                                if outstanding == 0 {
                                    timing.compose_tail_ms += spent;
                                } else {
                                    timing.compose_overlap_ms += spent;
                                }
                                if ok && !first_composed {
                                    first_composed = true;
                                    timing.first_partial_ms =
                                        dispatched.elapsed().as_secs_f64() * 1e3;
                                }
                            }
                        }
                        Err(e) => {
                            recovery.failed_attempts += attempts;
                            tried[range].push(target);
                            still_failed.push((range, e));
                        }
                    }
                }
                failed = still_failed;
            }

            // 6. Error out cleanly — the pooled composer must never be left
            //    mid-composition (the seed corrupted the next same-template
            //    query here).
            if let Some(e) = accept_error {
                gov.cancel();
                composer.abort();
                return Err(e);
            }
            if !failed.is_empty() {
                gov.cancel();
                composer.abort();
                // Surface the root cause: a sibling's `Cancelled` is fallout
                // from the doom-cancel above, not the reason the query died.
                failed.sort_by_key(|(range, _)| *range);
                let root = failed
                    .iter()
                    .position(|(_, e)| !matches!(e, EngineError::Cancelled(_)))
                    .unwrap_or(0);
                return Err(failed.swap_remove(root).1);
            }

            // 7. Finish the composition (serial tail).
            let t = Instant::now();
            let composed = match composer.finish() {
                Ok(c) => c,
                Err(e) => {
                    composer.abort();
                    return Err(e);
                }
            };
            timing.compose_tail_ms += t.elapsed().as_secs_f64() * 1e3;
            timing.total_ms = dispatched.elapsed().as_secs_f64() * 1e3;

            let per_node: Vec<ExecStats> = per_node
                .into_iter()
                .map(|s| s.expect("every range composed"))
                .collect();
            let mut merged = ExecStats::default();
            for s in &per_node {
                merged.merge(s);
            }
            merged.merge(&composed.composition_stats);
            let mut output = composed.output;
            output.stats = merged;
            Ok(SvpExecution {
                output,
                per_node,
                composition_stats: composed.composition_stats,
                partial_rows: composed.partial_rows,
                timing,
                recovery,
            })
        })
    }
}

/// The engine side of the controller's rejoin protocol: a node leaving
/// rotation is excluded from the consistency protocol (its begin/end calls
/// stop coming, and without exclusion one dead replica would wedge every
/// Blocking-mode write); a node re-entering has its transaction counter
/// seeded to the active maximum — the controller calls `on_enable` under
/// its write pause, so nothing is in flight and the seed is exact.
impl apuama_cjdbc::RejoinHooks for ApuamaEngine {
    fn on_disable(&self, node: usize) {
        self.gate.set_excluded(node, true);
    }

    fn on_enable(&self, node: usize, _applied_seq: u64) {
        self.gate.seed_counter(node, self.gate.active_max_counter());
        self.gate.set_excluded(node, false);
    }
}

/// Runs the prepared statement on `node` with the policy's deadline and
/// bounded same-node retries; returns `(attempts made, final outcome)`.
/// Every attempt executes under `gov` — the per-query governor — so a
/// doomed query stops retrying (and backing off) as soon as it is
/// cancelled or its deadline passes.
fn run_with_retries(
    node: &Arc<NodeProcessor>,
    sql: &str,
    params: &[Value],
    policy: &FaultPolicy,
    gov: &QueryGovernor,
) -> (u32, EngineResult<QueryOutput>) {
    let max_attempts = policy.max_retries.saturating_add(1);
    let mut last = None;
    for attempt in 1..=max_attempts {
        if attempt > 1 {
            let backoff = policy.backoff(attempt - 1);
            if !backoff.is_zero() {
                std::thread::sleep(backoff);
            }
        }
        // The query may have been doomed before this attempt (or while we
        // slept in backoff): bail without burning another execution.
        if let Err(e) = gov.check() {
            return (attempt - 1, Err(e));
        }
        match run_attempt(node, sql, params, policy.subquery_timeout_ms, gov) {
            Ok(out) => return (attempt, Ok(out)),
            Err(e) => last = Some(e),
        }
    }
    (max_attempts, Err(last.expect("at least one attempt ran")))
}

/// One attempt, under a deadline when the policy sets one.
///
/// The snapshot ticket guard is not `Send`, so the deadline cannot simply
/// join the statement thread: the statement runs on a detached thread over
/// a cloned `Arc<NodeProcessor>` (the *caller* keeps holding the ticket)
/// and the attempt gives up after the deadline. The abandoned statement is
/// *cancelled* through a per-attempt child of the query governor — it
/// observes the token at its next batch boundary, unwinds, and releases
/// its pool slot. (The seed left it running to completion, pinning a slot
/// for the statement's full duration.) The child token keeps sibling
/// attempts and the query itself unaffected.
fn run_attempt(
    node: &Arc<NodeProcessor>,
    sql: &str,
    params: &[Value],
    timeout_ms: Option<u64>,
    gov: &QueryGovernor,
) -> EngineResult<QueryOutput> {
    let Some(ms) = timeout_ms else {
        return node.run_subquery_bound_governed(sql, params, gov);
    };
    let (tx, rx) = std::sync::mpsc::channel();
    let worker_node = Arc::clone(node);
    let statement = sql.to_string();
    let bound: Vec<Value> = params.to_vec();
    let attempt_gov = gov.child();
    let worker_gov = attempt_gov.clone();
    std::thread::spawn(move || {
        let _ = tx.send(worker_node.run_subquery_bound_governed(&statement, &bound, &worker_gov));
    });
    match rx.recv_timeout(std::time::Duration::from_millis(ms)) {
        Ok(result) => result,
        Err(_) => {
            attempt_gov.cancel();
            node.record_timeout();
            Err(EngineError::Timeout(format!(
                "sub-query exceeded {ms} ms on {}",
                node.name()
            )))
        }
    }
}

/// The driver C-JDBC's backend for one node connects through.
pub struct ApuamaConnection {
    engine: Arc<ApuamaEngine>,
    node: usize,
    name: String,
}

impl ApuamaConnection {
    /// The node index this connection fronts.
    pub fn node_index(&self) -> usize {
        self.node
    }
}

impl Connection for ApuamaConnection {
    fn execute(&self, sql: &str) -> EngineResult<QueryOutput> {
        match classify(sql)? {
            StatementKind::Read => self.engine.execute_read(self.node, sql),
            StatementKind::Write => self.engine.execute_write(self.node, sql),
        }
    }

    fn execute_governed(&self, sql: &str, gov: &QueryGovernor) -> EngineResult<QueryOutput> {
        match classify(sql)? {
            StatementKind::Read => self.engine.execute_read_governed(self.node, sql, gov),
            // Writes stay short replicated statements: governed only by a
            // pre-dispatch check (a half-cancelled broadcast would diverge
            // the replicas).
            StatementKind::Write => {
                gov.check()?;
                self.engine.execute_write(self.node, sql)
            }
        }
    }

    fn mem_peak_bytes(&self) -> u64 {
        self.engine.nodes[self.node].mem_peak_bytes()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apuama_cjdbc::{Controller, ControllerConfig, EngineNode, NodeConnection};
    use apuama_engine::Database;
    use apuama_sql::Value;

    /// A tiny replicated cluster with Apuama interposed.
    fn cluster(n: usize, config: ApuamaConfig) -> (Arc<ApuamaEngine>, Vec<Arc<EngineNode>>) {
        let mut nodes = Vec::new();
        let mut conns: Vec<Arc<dyn Connection>> = Vec::new();
        for i in 0..n {
            let mut db = Database::in_memory();
            db.execute(
                "create table orders (o_orderkey int not null, o_totalprice float, \
                 primary key (o_orderkey)) clustered by (o_orderkey)",
            )
            .unwrap();
            let rows: Vec<Vec<Value>> = (1..=60i64)
                .map(|k| vec![Value::Int(k), Value::Float(k as f64)])
                .collect();
            db.load_table("orders", rows).unwrap();
            let node = EngineNode::new(format!("n{i}"), db);
            conns.push(Arc::new(NodeConnection::new(node.clone())));
            nodes.push(node);
        }
        let engine = ApuamaEngine::new(conns, DataCatalog::tpch(60), config);
        (engine, nodes)
    }

    #[test]
    fn svp_result_matches_single_node() {
        let (engine, nodes) = cluster(4, ApuamaConfig::default());
        let sql = "select count(*) as n, sum(o_totalprice) as t, avg(o_totalprice) as a \
                   from orders";
        let reference = nodes[0].with_db(|db| db.query(sql).unwrap());
        let out = engine.execute_read(0, sql).unwrap();
        assert_eq!(out.columns, vec!["n", "t", "a"]);
        assert_eq!(out.rows[0][0], reference.rows[0][0]);
        assert_eq!(out.rows[0][1], reference.rows[0][1]);
        let (a, b) = (
            out.rows[0][2].as_f64().unwrap(),
            reference.rows[0][2].as_f64().unwrap(),
        );
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn parallel_workers_config_reaches_every_node() {
        let (engine, nodes) = cluster(
            3,
            ApuamaConfig {
                parallel_workers: Some(3),
                ..ApuamaConfig::default()
            },
        );
        // The session knob landed on every backend, so SVP sub-queries
        // dispatched over these connections inherit it.
        for node in &nodes {
            let setting = node.with_db(|db| db.setting("parallel_workers"));
            assert_eq!(setting.as_deref(), Some("3"), "{}", node.name());
        }
        // And execution under the knob still answers correctly: sum of
        // 1..=60 (integer-valued floats, exact at any association).
        let out = engine
            .execute_read(0, "select sum(o_totalprice) as s from orders")
            .unwrap();
        assert_eq!(out.rows, vec![vec![Value::Float(1830.0)]]);
        // Default config leaves the node's own default untouched.
        let (_, nodes) = cluster(1, ApuamaConfig::default());
        assert_eq!(nodes[0].with_db(|db| db.setting("parallel_workers")), None);
    }

    #[test]
    fn svp_execution_reports_per_node_stats() {
        let (engine, _) = cluster(3, ApuamaConfig::default());
        let Rewritten::Svp(plan) = engine
            .rewriter()
            .rewrite("select sum(o_totalprice) as t from orders", 3)
            .unwrap()
        else {
            panic!()
        };
        let exec = engine.execute_svp(&plan).unwrap();
        assert_eq!(exec.per_node.len(), 3);
        // Partitioning means each node scanned roughly a third of the rows.
        for s in &exec.per_node {
            assert!(s.rows_scanned <= 30, "scanned {}", s.rows_scanned);
        }
        assert_eq!(exec.partial_rows, 3);
    }

    #[test]
    fn repeated_svp_runs_plan_once_per_node() {
        let (engine, nodes) = cluster(4, ApuamaConfig::default());
        let sql = "select count(*) as n, sum(o_totalprice) as t from orders";
        let reference = nodes[0].with_db(|db| db.query(sql).unwrap());
        for _ in 0..5 {
            let out = engine.execute_read(0, sql).unwrap();
            assert_eq!(out.rows, reference.rows);
        }
        // Each node saw one statement text five times (interior nodes share
        // the two-parameter text; outer nodes have their own one-sided
        // text). The cache fingerprints on `enable_seqscan`, so the warm-up
        // prepare (seqscan on) and the force-index sub-query executions
        // (seqscan off) plan once each; every later run hits.
        for node in &nodes {
            let stats = node.with_db(|db| db.plan_cache_stats());
            assert_eq!(stats.misses, 2, "{stats:?}");
            assert!(stats.hits >= 5, "{stats:?}");
        }
    }

    #[test]
    fn non_eligible_query_passes_through_to_preferred_node() {
        let (engine, _) = cluster(3, ApuamaConfig::default());
        // No fact table involved once we create a dimension-only table on
        // every node. Writes are broadcast statement-by-statement, the way
        // the C-JDBC scheduler serializes them.
        for stmt in ["create table dim (d int)", "insert into dim values (7)"] {
            for i in 0..3 {
                engine.execute_write(i, stmt).unwrap();
            }
        }
        let out = engine.execute_read(2, "select d from dim").unwrap();
        assert_eq!(out.rows, vec![vec![Value::Int(7)]]);
    }

    #[test]
    fn svp_disabled_config_behaves_like_cjdbc() {
        let (engine, _) = cluster(
            3,
            ApuamaConfig {
                svp_enabled: false,
                ..ApuamaConfig::default()
            },
        );
        let out = engine
            .execute_read(1, "select count(*) as n from orders")
            .unwrap();
        // Still correct, just single-node.
        assert_eq!(out.rows[0][0], Value::Int(60));
    }

    #[test]
    fn through_cjdbc_controller() {
        let (engine, _) = cluster(4, ApuamaConfig::default());
        let controller = Controller::new(engine.connections(), ControllerConfig::default());
        // OLAP query goes through the controller, gets hijacked by Apuama.
        let (out, _) = controller
            .execute("select sum(o_totalprice) as t from orders")
            .unwrap();
        assert_eq!(out.rows[0][0], Value::Float((1..=60).sum::<i64>() as f64));
        // An update broadcast through the controller reaches all replicas
        // and the counters converge.
        controller
            .execute("insert into orders values (61, 61.0)")
            .unwrap();
        assert_eq!(engine.txn_counters(), vec![1, 1, 1, 1]);
        let (out, _) = controller
            .execute("select count(*) as n from orders")
            .unwrap();
        assert_eq!(out.rows[0][0], Value::Int(61));
    }

    #[test]
    fn updates_and_svp_interleave_consistently() {
        let (engine, _) = cluster(3, ApuamaConfig::default());
        let controller = Arc::new(Controller::new(
            engine.connections(),
            ControllerConfig::default(),
        ));
        let sums: Vec<i64> = std::thread::scope(|s| {
            let writer = {
                let c = Arc::clone(&controller);
                s.spawn(move || {
                    for k in 61..=100i64 {
                        c.execute(&format!("insert into orders values ({k}, 0.0)"))
                            .unwrap();
                    }
                })
            };
            let reader = {
                let c = Arc::clone(&controller);
                s.spawn(move || {
                    let mut counts = Vec::new();
                    for _ in 0..15 {
                        let (out, _) = c.execute("select count(*) as n from orders").unwrap();
                        counts.push(out.rows[0][0].as_i64().unwrap());
                    }
                    counts
                })
            };
            writer.join().unwrap();
            reader.join().unwrap()
        });
        // Every SVP count is a consistent snapshot: monotone within the
        // writer's progression and within bounds. (A torn read across
        // partitions would typically double- or zero-count in-flight rows.)
        for w in sums.windows(2) {
            assert!(w[1] >= w[0], "counts regressed: {sums:?}");
        }
        assert!(sums.iter().all(|&n| (60..=100).contains(&n)), "{sums:?}");
        // Final state: all replicas converged.
        assert_eq!(engine.txn_counters(), vec![40, 40, 40]);
        let (out, _) = controller
            .execute("select count(*) as n from orders")
            .unwrap();
        assert_eq!(out.rows[0][0], Value::Int(100));
    }

    #[test]
    fn refresh_keys_beyond_catalog_range_are_still_counted() {
        // The catalog recorded high=60; insert far beyond it and make sure
        // the unbounded last partition owns the new keys.
        let (engine, _) = cluster(4, ApuamaConfig::default());
        let controller = Controller::new(engine.connections(), ControllerConfig::default());
        controller
            .execute("insert into orders values (5000, 1.0)")
            .unwrap();
        let (out, _) = controller
            .execute("select count(*) as n from orders")
            .unwrap();
        assert_eq!(out.rows[0][0], Value::Int(61));
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::fault::FaultPolicy;
    use apuama_cjdbc::{EngineNode, FaultPlan, FaultTarget, FaultyConnection, NodeConnection};
    use apuama_engine::Database;
    use apuama_sql::Value;
    use std::sync::Arc;

    /// A cluster whose every connection is wrapped in a (initially inert)
    /// fault injector.
    fn faulty_cluster(
        n: usize,
        config: ApuamaConfig,
    ) -> (Arc<ApuamaEngine>, Vec<Arc<FaultyConnection>>) {
        let mut faulties = Vec::new();
        let mut conns: Vec<Arc<dyn Connection>> = Vec::new();
        for i in 0..n {
            let mut db = Database::in_memory();
            db.execute(
                "create table orders (o_orderkey int not null, o_totalprice float, \
                 primary key (o_orderkey)) clustered by (o_orderkey)",
            )
            .unwrap();
            let rows: Vec<Vec<Value>> = (1..=60i64)
                .map(|k| vec![Value::Int(k), Value::Float(k as f64 * 1.37)])
                .collect();
            db.load_table("orders", rows).unwrap();
            let node = EngineNode::new(format!("n{i}"), db);
            let faulty =
                FaultyConnection::new(Arc::new(NodeConnection::new(node)), FaultPlan::default());
            conns.push(faulty.clone() as Arc<dyn Connection>);
            faulties.push(faulty);
        }
        let engine = ApuamaEngine::new(conns, DataCatalog::tpch(60), config);
        (engine, faulties)
    }

    const SQL: &str = "select count(*) as n, sum(o_totalprice) as t, avg(o_totalprice) as a \
                       from orders";

    #[test]
    fn dead_node_subqueries_are_reassigned_byte_identically() {
        let (healthy, _) = faulty_cluster(4, ApuamaConfig::default());
        let (engine, faulties) = faulty_cluster(4, ApuamaConfig::default());
        faulties[1].set_plan(FaultPlan {
            target: FaultTarget::Reads,
            ..FaultPlan::fail_all()
        });
        let want = healthy.execute_read(0, SQL).unwrap();
        let Rewritten::Svp(plan) = engine.rewriter().rewrite(SQL, 4).unwrap() else {
            panic!()
        };
        let exec = engine.execute_svp(&plan).unwrap();
        // Byte-identical to the healthy cluster, including float bits.
        assert_eq!(exec.output.rows, want.rows);
        // Range 1 was produced by some surviving node.
        assert!(exec
            .recovery
            .reassigned
            .iter()
            .any(|&(range, node)| range == 1 && node != 1));
        assert!(exec.recovery.failed_attempts > 0);
    }

    #[test]
    fn failed_svp_leaves_pooled_composer_clean_for_same_template() {
        // Satellite regression: a failed SVP followed by a successful
        // same-template SVP must be byte-identical to a fresh engine.
        let (engine, faulties) = faulty_cluster(
            3,
            ApuamaConfig {
                fault: FaultPolicy::fail_fast(),
                ..ApuamaConfig::default()
            },
        );
        faulties[2].set_plan(FaultPlan {
            target: FaultTarget::Reads,
            ..FaultPlan::fail_all()
        });
        assert!(engine.execute_read(0, SQL).is_err());
        faulties[2].heal();
        let replay = engine.execute_read(0, SQL).unwrap();
        let (fresh, _) = faulty_cluster(3, ApuamaConfig::default());
        let want = fresh.execute_read(0, SQL).unwrap();
        assert_eq!(replay.rows, want.rows);
    }

    #[test]
    fn first_partial_ms_ignores_errored_partials() {
        // Node 0 fails instantly; nodes 1 and 2 are delayed. The stamp must
        // come from a *composed* partial, i.e. after the delay — the seed
        // stamped it at the errored partial's arrival (~0 ms).
        let (engine, faulties) = faulty_cluster(3, ApuamaConfig::default());
        faulties[0].set_plan(FaultPlan {
            target: FaultTarget::Reads,
            ..FaultPlan::fail_all()
        });
        for f in &faulties[1..] {
            f.set_plan(FaultPlan {
                delay: std::time::Duration::from_millis(30),
                only_matching: Some("from orders".into()),
                ..FaultPlan::default()
            });
        }
        let Rewritten::Svp(plan) = engine.rewriter().rewrite(SQL, 3).unwrap() else {
            panic!()
        };
        let exec = engine.execute_svp(&plan).unwrap();
        assert!(
            exec.timing.first_partial_ms >= 25.0,
            "first_partial_ms = {} stamped by an errored partial",
            exec.timing.first_partial_ms
        );
    }

    #[test]
    fn stalled_subquery_times_out_and_is_reassigned() {
        let (healthy, _) = faulty_cluster(3, ApuamaConfig::default());
        let (engine, faulties) = faulty_cluster(
            3,
            ApuamaConfig {
                fault: FaultPolicy {
                    subquery_timeout_ms: Some(25),
                    max_retries: 0,
                    ..FaultPolicy::default()
                },
                ..ApuamaConfig::default()
            },
        );
        faulties[0].set_plan(FaultPlan {
            stall_every: 1,
            stall: std::time::Duration::from_millis(300),
            only_matching: Some("from orders".into()),
            ..FaultPlan::default()
        });
        let want = healthy.execute_read(0, SQL).unwrap();
        let Rewritten::Svp(plan) = engine.rewriter().rewrite(SQL, 3).unwrap() else {
            panic!()
        };
        let exec = engine.execute_svp(&plan).unwrap();
        assert_eq!(exec.output.rows, want.rows);
        assert!(exec
            .recovery
            .reassigned
            .iter()
            .any(|&(range, _)| range == 0));
        assert!(engine.health().failures(0) > 0, "timeout recorded");
    }

    #[test]
    fn open_circuit_routes_ranges_around_the_node_at_dispatch() {
        let (engine, faulties) = faulty_cluster(
            3,
            ApuamaConfig {
                fault: FaultPolicy {
                    breaker_threshold: 2,
                    probe_after_ms: 60_000,
                    ..FaultPolicy::default()
                },
                ..ApuamaConfig::default()
            },
        );
        faulties[1].set_plan(FaultPlan {
            target: FaultTarget::Reads,
            ..FaultPlan::fail_all()
        });
        // First query trips node 1's breaker (2 attempts fail), recovers by
        // reassignment.
        engine.execute_read(0, SQL).unwrap();
        assert_eq!(engine.health().state(1), apuama_cjdbc::CircuitState::Open);
        let calls_before = faulties[1].calls();
        // Second query never touches node 1: its range is pre-routed.
        let Rewritten::Svp(plan) = engine.rewriter().rewrite(SQL, 3).unwrap() else {
            panic!()
        };
        let exec = engine.execute_svp(&plan).unwrap();
        assert_eq!(faulties[1].calls(), calls_before);
        assert!(exec
            .recovery
            .reassigned
            .iter()
            .any(|&(range, node)| range == 1 && node != 1));
    }

    #[test]
    fn healthy_run_reports_clean_recovery() {
        let (engine, _) = faulty_cluster(3, ApuamaConfig::default());
        let Rewritten::Svp(plan) = engine.rewriter().rewrite(SQL, 3).unwrap() else {
            panic!()
        };
        let exec = engine.execute_svp(&plan).unwrap();
        assert!(exec.recovery.clean(), "{:?}", exec.recovery);
    }
}

#[cfg(test)]
mod governance_tests {
    use super::*;
    use crate::fault::FaultPolicy;
    use apuama_cjdbc::{EngineNode, FaultPlan, FaultyConnection, NodeConnection};
    use apuama_engine::{Database, EngineError, QueryGovernor};
    use apuama_sql::Value;
    use std::sync::Arc;
    use std::time::Duration;

    fn faulty_cluster(
        n: usize,
        config: ApuamaConfig,
    ) -> (Arc<ApuamaEngine>, Vec<Arc<FaultyConnection>>) {
        let mut faulties = Vec::new();
        let mut conns: Vec<Arc<dyn Connection>> = Vec::new();
        for i in 0..n {
            let mut db = Database::in_memory();
            db.execute(
                "create table orders (o_orderkey int not null, o_totalprice float, \
                 primary key (o_orderkey)) clustered by (o_orderkey)",
            )
            .unwrap();
            let rows: Vec<Vec<Value>> = (1..=60i64)
                .map(|k| vec![Value::Int(k), Value::Float(k as f64 * 1.37)])
                .collect();
            db.load_table("orders", rows).unwrap();
            let node = EngineNode::new(format!("n{i}"), db);
            let faulty =
                FaultyConnection::new(Arc::new(NodeConnection::new(node)), FaultPlan::default());
            conns.push(faulty.clone() as Arc<dyn Connection>);
            faulties.push(faulty);
        }
        let engine = ApuamaEngine::new(conns, DataCatalog::tpch(60), config);
        (engine, faulties)
    }

    const SQL: &str = "select count(*) as n, sum(o_totalprice) as t, avg(o_totalprice) as a \
                       from orders";

    fn delay_all(faulties: &[Arc<FaultyConnection>], ms: u64) {
        for f in faulties {
            f.set_plan(FaultPlan {
                delay: Duration::from_millis(ms),
                only_matching: Some("from orders".into()),
                ..FaultPlan::default()
            });
        }
    }

    fn heal_all(faulties: &[Arc<FaultyConnection>]) {
        for f in faulties {
            f.heal();
        }
    }

    /// Satellite (a) regression: the timeout path in `run_attempt` spawns a
    /// detached worker thread. Before governance it kept the node's pool
    /// slot and in-flight count pinned for the full stall; now the
    /// abandoned attempt's child token is cancelled and the thread exits at
    /// its next batch boundary, draining the in-flight count to zero.
    #[test]
    fn in_flight_drains_to_zero_after_timeout_reassignment() {
        let (engine, faulties) = faulty_cluster(
            3,
            ApuamaConfig {
                fault: FaultPolicy {
                    subquery_timeout_ms: Some(25),
                    max_retries: 0,
                    ..FaultPolicy::default()
                },
                ..ApuamaConfig::default()
            },
        );
        faulties[0].set_plan(FaultPlan {
            stall_every: 1,
            stall: Duration::from_millis(300),
            only_matching: Some("from orders".into()),
            ..FaultPlan::default()
        });
        let Rewritten::Svp(plan) = engine.rewriter().rewrite(SQL, 3).unwrap() else {
            panic!()
        };
        let exec = engine.execute_svp(&plan).unwrap();
        assert!(
            exec.recovery
                .reassigned
                .iter()
                .any(|&(range, _)| range == 0),
            "{:?}",
            exec.recovery
        );
        // The stalled node's worker is still asleep inside the injected
        // stall when the query completes; it must wake, observe its
        // cancelled token, and release the slot — not linger forever.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let in_flight: usize = engine
                .node_processors()
                .iter()
                .map(|n| n.subqueries_in_flight())
                .sum();
            if in_flight == 0 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "abandoned attempt leaked: {in_flight} sub-queries still in flight"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Satellite (b): the deadline outcome must leave the pooled composer
    /// as clean as the failure outcome — a same-template replay after a
    /// deadline-killed SVP is byte-identical to a fresh engine.
    #[test]
    fn deadline_exceeded_svp_leaves_pooled_composer_clean() {
        let (engine, faulties) = faulty_cluster(3, ApuamaConfig::default());
        delay_all(&faulties, 60);
        let Rewritten::Svp(plan) = engine.rewriter().rewrite(SQL, 3).unwrap() else {
            panic!()
        };
        let gov = QueryGovernor::new().with_deadline_in(Duration::from_millis(10));
        let err = engine.execute_svp_governed(&plan, Some(&gov)).unwrap_err();
        assert!(matches!(err, EngineError::Timeout(_)), "{err:?}");

        heal_all(&faulties);
        let replay = engine.execute_read(0, SQL).unwrap();
        let (fresh, _) = faulty_cluster(3, ApuamaConfig::default());
        let want = fresh.execute_read(0, SQL).unwrap();
        assert_eq!(replay.rows, want.rows);
    }

    /// Satellite (b), cancellation outcome: a caller that abandons the
    /// query mid-flight (cancel fires while sub-queries are delayed) must
    /// not poison the template's pooled composer either.
    #[test]
    fn cancelled_svp_leaves_pooled_composer_clean() {
        let (engine, faulties) = faulty_cluster(3, ApuamaConfig::default());
        delay_all(&faulties, 60);
        let Rewritten::Svp(plan) = engine.rewriter().rewrite(SQL, 3).unwrap() else {
            panic!()
        };
        let gov = QueryGovernor::new();
        let canceller = {
            let token = gov.cancel_token().clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                token.cancel();
            })
        };
        let err = engine.execute_svp_governed(&plan, Some(&gov)).unwrap_err();
        canceller.join().unwrap();
        assert!(matches!(err, EngineError::Cancelled(_)), "{err:?}");

        heal_all(&faulties);
        let replay = engine.execute_read(0, SQL).unwrap();
        let (fresh, _) = faulty_cluster(3, ApuamaConfig::default());
        let want = fresh.execute_read(0, SQL).unwrap();
        assert_eq!(replay.rows, want.rows);
    }

    /// Cancellation is health-neutral: the abandoning caller is not the
    /// nodes' fault, so no breaker strikes accrue from a cancelled query.
    #[test]
    fn cancelled_query_records_no_node_failures() {
        let (engine, faulties) = faulty_cluster(3, ApuamaConfig::default());
        delay_all(&faulties, 60);
        let Rewritten::Svp(plan) = engine.rewriter().rewrite(SQL, 3).unwrap() else {
            panic!()
        };
        let gov = QueryGovernor::new();
        let canceller = {
            let token = gov.cancel_token().clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                token.cancel();
            })
        };
        let err = engine.execute_svp_governed(&plan, Some(&gov)).unwrap_err();
        canceller.join().unwrap();
        assert!(matches!(err, EngineError::Cancelled(_)), "{err:?}");
        for node in 0..3 {
            assert_eq!(engine.health().failures(node), 0, "node {node}");
        }
    }

    /// `ApuamaConfig::query_deadline_ms` bounds every statement without
    /// the caller carrying a governor; the engine works again for the next
    /// statement once the slowdown clears.
    #[test]
    fn config_statement_deadline_times_out_and_recovers() {
        let (engine, faulties) = faulty_cluster(
            3,
            ApuamaConfig {
                query_deadline_ms: Some(15),
                ..ApuamaConfig::default()
            },
        );
        delay_all(&faulties, 80);
        let err = engine.execute_read(0, SQL).unwrap_err();
        assert!(matches!(err, EngineError::Timeout(_)), "{err:?}");

        heal_all(&faulties);
        let out = engine.execute_read(0, SQL).unwrap();
        let (fresh, _) = faulty_cluster(3, ApuamaConfig::default());
        let want = fresh.execute_read(0, SQL).unwrap();
        assert_eq!(out.rows, want.rows);
    }
}
