//! Adaptive Virtual Partitioning — the technique the paper compares SVP
//! against (§6; Lima, Mattoso & Valduriez, SBBD 2004, used by SmaQ).
//!
//! Where SVP hands each node **one** static range, AVP hands each node a
//! region and lets it chew through the region in **small, dynamically
//! sized chunks**:
//!
//! * the chunk starts small (so a mis-sized partition cannot stall a
//!   node for long),
//! * it doubles while the observed cost-per-key keeps up, and shrinks
//!   when performance degrades (the classic additive-probe/multiplicative
//!   adaptation of the original paper),
//! * a node that exhausts its region **steals** half of the largest
//!   remaining region — the dynamic load balancing SmaQ gets from AVP and
//!   static SVP cannot provide.
//!
//! The paper's §6 critique — "since AVP locally subdivides the local
//! sub-query it increases the level of concurrency while inducing a bad
//! memory cache use" — is directly measurable here: each chunk is a
//! separate sub-query with its own plan/descent overhead, and chunk
//! boundaries break the long sequential scans SVP's single range enjoys.
//! The `ablation` bench puts the two side by side.
//!
//! This module is execution-strategy only: it reuses the SVP rewriter's
//! [`QueryTemplate`] (same decomposition, same composition query), so AVP
//! and SVP answers are identical by construction; only the dispatch
//! differs.

use apuama_engine::{EngineResult, QueryOutput};

use crate::rewrite::QueryTemplate;

/// AVP tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct AvpConfig {
    /// First chunk size, in VPA keys. The original AVP starts deliberately
    /// tiny and lets the doubling find the right size.
    pub initial_chunk: i64,
    /// Upper bound on the chunk size.
    pub max_chunk: i64,
    /// A chunk whose cost-per-key is within this factor of the best seen
    /// so far counts as "still improving" and doubles the next chunk.
    pub tolerance: f64,
    /// Enable work stealing between nodes when a region drains.
    pub work_stealing: bool,
}

impl Default for AvpConfig {
    fn default() -> Self {
        AvpConfig {
            initial_chunk: 1024,
            max_chunk: 1 << 20,
            tolerance: 1.25,
            work_stealing: true,
        }
    }
}

/// What one node did during an AVP execution.
#[derive(Debug, Clone, Default)]
pub struct NodeTrace {
    /// Chunks this node executed.
    pub chunks: usize,
    /// Keys this node covered (sum of chunk widths).
    pub keys: i64,
    /// Total cost charged to this node (caller-defined units; the
    /// simulator passes virtual milliseconds).
    pub cost: f64,
    /// Chunk sizes in execution order (adaptation diagnostics).
    pub chunk_sizes: Vec<i64>,
}

/// Result of an AVP run.
#[derive(Debug, Clone)]
pub struct AvpOutcome {
    /// Partial results from every chunk, in execution order (feed these to
    /// [`crate::compose`] with the template's plan).
    pub partials: Vec<QueryOutput>,
    /// Per-node execution traces.
    pub per_node: Vec<NodeTrace>,
    /// Virtual makespan: the largest per-node cost (nodes run in
    /// parallel).
    pub makespan_cost: f64,
}

/// Result of a streaming AVP run: the execution trace alone — chunk
/// partials were delivered to the sink as they completed instead of being
/// accumulated here.
#[derive(Debug, Clone)]
pub struct AvpRun {
    /// Per-node execution traces.
    pub per_node: Vec<NodeTrace>,
    /// Virtual makespan: the largest per-node cost (nodes run in
    /// parallel).
    pub makespan_cost: f64,
}

/// One node's unprocessed key region.
#[derive(Debug, Clone, Copy)]
struct Region {
    next: i64,
    end: i64,
}

impl Region {
    fn remaining(&self) -> i64 {
        (self.end - self.next).max(0)
    }
}

/// Per-node adaptation state.
struct NodeState {
    region: Region,
    chunk: i64,
    best_rate: f64,
    clock: f64,
    trace: NodeTrace,
    done: bool,
}

/// Executes the template with AVP over `nodes` nodes.
///
/// `exec` runs one sub-query on one node and returns its output plus its
/// cost in caller units (wall milliseconds, simulated milliseconds, page
/// counts — anything additive). Nodes are driven in virtual-parallel: at
/// every step the node with the smallest accumulated cost receives its
/// next chunk, which makes the run deterministic and lets single-threaded
/// callers (the simulator) model concurrency exactly.
pub fn execute_avp<F>(
    template: &QueryTemplate,
    nodes: usize,
    config: AvpConfig,
    exec: F,
) -> EngineResult<AvpOutcome>
where
    F: FnMut(usize, &str) -> EngineResult<(QueryOutput, f64)>,
{
    let mut partials = Vec::new();
    let run = execute_avp_streaming(template, nodes, config, exec, |_, out| {
        partials.push(out);
        Ok(())
    })?;
    Ok(AvpOutcome {
        partials,
        per_node: run.per_node,
        makespan_cost: run.makespan_cost,
    })
}

/// Streaming variant of [`execute_avp`]: every chunk's partial output is
/// handed to `sink(node, partial)` the moment the chunk completes, instead
/// of accumulating a `partials` vector. Feed the sink into an incremental
/// [`crate::composer::Composer`] and composition overlaps chunk execution.
pub fn execute_avp_streaming<F, S>(
    template: &QueryTemplate,
    nodes: usize,
    config: AvpConfig,
    mut exec: F,
    mut sink: S,
) -> EngineResult<AvpRun>
where
    F: FnMut(usize, &str) -> EngineResult<(QueryOutput, f64)>,
    S: FnMut(usize, QueryOutput) -> EngineResult<()>,
{
    assert!(nodes > 0, "AVP needs at least one node");
    assert!(config.initial_chunk > 0 && config.max_chunk >= config.initial_chunk);
    let (lo, hi) = template.key_range();
    let span = (hi - lo).max(1);

    // Initial regions: the same aligned split SVP would use.
    let mut states: Vec<NodeState> = (0..nodes)
        .map(|i| {
            let start = lo + span * i as i64 / nodes as i64;
            let end = lo + span * (i + 1) as i64 / nodes as i64;
            NodeState {
                region: Region { next: start, end },
                chunk: config.initial_chunk,
                best_rate: f64::INFINITY,
                clock: 0.0,
                trace: NodeTrace::default(),
                done: false,
            }
        })
        .collect();

    // A `while let` would hide the steal-and-retry control flow below.
    #[allow(clippy::while_let_loop)]
    loop {
        // Virtual-parallel scheduling: the node with the lowest clock that
        // still has (or can steal) work goes next.
        let Some(node) = states
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.done)
            .min_by(|(_, a), (_, b)| a.clock.total_cmp(&b.clock))
            .map(|(i, _)| i)
        else {
            break;
        };

        // Out of local work? Steal half of the largest remaining region.
        if states[node].region.remaining() == 0 {
            let victim = if config.work_stealing {
                states
                    .iter()
                    .enumerate()
                    .filter(|(i, s)| *i != node && s.region.remaining() > 1)
                    .max_by_key(|(_, s)| s.region.remaining())
                    .map(|(i, _)| i)
            } else {
                None
            };
            match victim {
                Some(v) => {
                    let rem = states[v].region.remaining();
                    let give = rem / 2;
                    let new_end = states[v].region.end - give;
                    let stolen = Region {
                        next: new_end,
                        end: states[v].region.end,
                    };
                    states[v].region.end = new_end;
                    states[node].region = stolen;
                    // Fresh territory: restart the probe.
                    states[node].chunk = config.initial_chunk;
                    states[node].best_rate = f64::INFINITY;
                }
                None => {
                    states[node].done = true;
                    continue;
                }
            }
        }

        // Execute one chunk. The first chunk of the first region and the
        // last chunk of the last region stay unbounded outward so keys
        // outside the recorded catalog range (refresh inserts) are owned.
        let st = &mut states[node];
        let chunk_lo = st.region.next;
        let chunk_hi = (chunk_lo + st.chunk).min(st.region.end);
        let sql_lo = if chunk_lo <= lo { None } else { Some(chunk_lo) };
        let sql_hi = if chunk_hi >= hi { None } else { Some(chunk_hi) };
        let sql = template.subquery_for_range(sql_lo, sql_hi);
        let (out, cost) = exec(node, &sql)?;
        let st = &mut states[node];
        let width = chunk_hi - chunk_lo;
        st.region.next = chunk_hi;
        st.clock += cost;
        st.trace.chunks += 1;
        st.trace.keys += width;
        st.trace.cost += cost;
        st.trace.chunk_sizes.push(width);
        sink(node, out)?;

        // Adapt: double while cost-per-key stays near the best observed,
        // shrink otherwise.
        let rate = cost / width.max(1) as f64;
        if rate <= st.best_rate * config.tolerance {
            st.best_rate = st.best_rate.min(rate);
            st.chunk = (st.chunk * 2).min(config.max_chunk);
        } else {
            st.chunk = (st.chunk / 2).max(config.initial_chunk);
        }
    }

    let per_node: Vec<NodeTrace> = states.into_iter().map(|s| s.trace).collect();
    let makespan_cost = per_node.iter().map(|t| t.cost).fold(0.0, f64::max);
    Ok(AvpRun {
        per_node,
        makespan_cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::DataCatalog;
    use crate::composer::compose;
    use crate::rewrite::SvpRewriter;
    use apuama_engine::Database;
    use apuama_sql::Value;

    const KEYS: i64 = 500;

    fn replica() -> Database {
        let mut db = Database::in_memory();
        db.execute(
            "create table orders (o_orderkey int not null, o_qty int, \
             primary key (o_orderkey)) clustered by (o_orderkey)",
        )
        .unwrap();
        let rows: Vec<Vec<Value>> = (1..=KEYS)
            .map(|k| vec![Value::Int(k), Value::Int(k % 10)])
            .collect();
        db.load_table("orders", rows).unwrap();
        db
    }

    fn template(sql: &str) -> crate::rewrite::QueryTemplate {
        SvpRewriter::new(DataCatalog::tpch(KEYS))
            .template(sql)
            .unwrap()
            .expect("eligible")
    }

    fn tiny_config() -> AvpConfig {
        AvpConfig {
            initial_chunk: 16,
            max_chunk: 256,
            ..AvpConfig::default()
        }
    }

    #[test]
    fn avp_answer_equals_direct_execution() {
        let sql = "select o_qty, count(*) as n, sum(o_qty) as s from orders \
                   group by o_qty order by o_qty";
        let t = template(sql);
        let replicas: Vec<Database> = (0..3).map(|_| replica()).collect();
        let outcome = execute_avp(&t, 3, tiny_config(), |node, sub| {
            let out = replicas[node].query(sub)?;
            let cost = out.stats.rows_scanned as f64 + 1.0;
            Ok((out, cost))
        })
        .unwrap();
        let plan = t.svp_plan(3);
        let composed = compose(&plan, &outcome.partials).unwrap();
        let expected = replica().query(sql).unwrap();
        assert_eq!(composed.output.rows, expected.rows);
    }

    #[test]
    fn chunks_adapt_upwards_on_uniform_data() {
        let t = template("select count(*) as n from orders");
        let replicas: Vec<Database> = (0..2).map(|_| replica()).collect();
        let outcome = execute_avp(&t, 2, tiny_config(), |node, sub| {
            let out = replicas[node].query(sub)?;
            let cost = out.stats.rows_scanned as f64 + 1.0;
            Ok((out, cost))
        })
        .unwrap();
        for trace in &outcome.per_node {
            assert!(trace.chunks >= 2, "adaptation needs several chunks");
            // Doubling happened: some later chunk is wider than the first.
            let first = trace.chunk_sizes[0];
            assert!(
                trace.chunk_sizes.iter().any(|&c| c > first),
                "chunk sizes never grew: {:?}",
                trace.chunk_sizes
            );
        }
        // Full coverage.
        let total: i64 = outcome.per_node.iter().map(|t| t.keys).sum();
        assert_eq!(total, KEYS); // the half-open span [1, KEYS+1) has KEYS keys
    }

    #[test]
    fn work_stealing_rebalances_a_slow_node() {
        let t = template("select count(*) as n from orders");
        let replicas: Vec<Database> = (0..2).map(|_| replica()).collect();
        // Node 1 is 20x slower per row; with stealing, node 0 should end up
        // covering most keys.
        let outcome = execute_avp(&t, 2, tiny_config(), |node, sub| {
            let out = replicas[node].query(sub)?;
            let base = out.stats.rows_scanned as f64 + 1.0;
            let cost = if node == 1 { base * 20.0 } else { base };
            Ok((out, cost))
        })
        .unwrap();
        assert!(
            outcome.per_node[0].keys > outcome.per_node[1].keys * 2,
            "fast node should cover far more keys: {:?}",
            outcome.per_node.iter().map(|t| t.keys).collect::<Vec<_>>()
        );
        // And the makespan stays near-balanced despite the skew.
        let costs: Vec<f64> = outcome.per_node.iter().map(|t| t.cost).collect();
        let min = costs.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            outcome.makespan_cost < min * 3.0,
            "stealing should bound the imbalance: {costs:?}"
        );
    }

    #[test]
    fn no_stealing_leaves_slow_node_with_its_region() {
        let t = template("select count(*) as n from orders");
        let replicas: Vec<Database> = (0..2).map(|_| replica()).collect();
        let cfg = AvpConfig {
            work_stealing: false,
            ..tiny_config()
        };
        let outcome = execute_avp(&t, 2, cfg, |node, sub| {
            let out = replicas[node].query(sub)?;
            let base = out.stats.rows_scanned as f64 + 1.0;
            let cost = if node == 1 { base * 20.0 } else { base };
            Ok((out, cost))
        })
        .unwrap();
        // Each node covered exactly its static half.
        let half = (KEYS + 1) / 2;
        assert!((outcome.per_node[0].keys - half).abs() <= 1);
        assert!((outcome.per_node[1].keys - half).abs() <= 1);
    }

    #[test]
    fn single_node_avp_covers_everything() {
        let t = template("select sum(o_qty) as s from orders");
        let db = replica();
        let outcome = execute_avp(&t, 1, tiny_config(), |_, sub| {
            let out = db.query(sub)?;
            Ok((out, 1.0))
        })
        .unwrap();
        let plan = t.svp_plan(1);
        let composed = compose(&plan, &outcome.partials).unwrap();
        let expected = db.query("select sum(o_qty) as s from orders").unwrap();
        assert_eq!(composed.output.rows, expected.rows);
    }

    #[test]
    fn outermost_chunks_are_unbounded() {
        // Keys outside the catalog range must still be owned by the first
        // or last chunk (the refresh-stream property SVP also has).
        let t = template("select count(*) as n from orders");
        let db = replica();
        db.query("set enable_seqscan = on").unwrap();
        // Insert a key far beyond the range via a separate write handle.
        let mut db2 = replica();
        db2.execute("insert into orders values (100000, 1)")
            .unwrap();
        let outcome = execute_avp(&t, 2, tiny_config(), |_, sub| {
            let out = db2.query(sub)?;
            Ok((out, 1.0))
        })
        .unwrap();
        let plan = t.svp_plan(2);
        let composed = compose(&plan, &outcome.partials).unwrap();
        assert_eq!(composed.output.rows[0][0], Value::Int(KEYS + 1));
    }
}
