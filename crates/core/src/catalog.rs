//! The Data Catalog: which tables can be virtually partitioned, and how.
//!
//! Paper §4: "The Cluster Administrator has a Query Parser component capable
//! of determining which tables are referenced by a query and a Data Catalog
//! that contains information about tables that can be virtually
//! partitioned."
//!
//! For TPC-H the catalog holds the two fact tables: `orders`, partitioned on
//! its primary key `o_orderkey`, and `lineitem`, whose partitioning is
//! *derived* — `l_orderkey` is a foreign key to orders, so splitting the
//! same key range partitions both tables consistently (§5).

use apuama_sql::ast::{BinOp, Expr};
use apuama_sql::Value;

/// Virtual-partitioning metadata for one table.
#[derive(Debug, Clone, PartialEq)]
pub struct VirtualPartitioning {
    /// Table name.
    pub table: String,
    /// Virtual partitioning attribute (must be the clustering column for
    /// SVP to be effective — enforced by the engine-side physical design).
    pub vpa: String,
    /// Smallest VPA value in the loaded data.
    pub low: i64,
    /// Largest VPA value in the loaded data.
    pub high: i64,
    /// Key domain this partitioning belongs to. Tables sharing a domain
    /// (orders / lineitem via the foreign key) receive *aligned* ranges, so
    /// a query joining them on the VPA can be range-restricted on both
    /// sides safely.
    pub domain: String,
}

impl VirtualPartitioning {
    /// The half-open `[lo, hi)` sub-range of partition `i` of `n`.
    ///
    /// The first partition is left-unbounded and the last right-unbounded:
    /// refresh streams insert keys above the recorded `high`, and those
    /// tuples must still be owned by exactly one virtual partition or SVP
    /// results would silently diverge from the replicated truth.
    pub fn partition_bounds(&self, i: usize, n: usize) -> (Option<i64>, Option<i64>) {
        assert!(n > 0 && i < n, "partition {i} of {n} is out of range");
        let span = (self.high - self.low + 1).max(1);
        let lo = self.low + (span * i as i64) / n as i64;
        let hi = self.low + (span * (i + 1) as i64) / n as i64;
        let lo = if i == 0 { None } else { Some(lo) };
        let hi = if i == n - 1 { None } else { Some(hi) };
        (lo, hi)
    }

    /// The range predicate of partition `i` of `n`, as an expression on
    /// `qualifier.vpa` (or bare `vpa` when no qualifier is given) —
    /// the paper's `l_orderkey >= :v1 and l_orderkey < :v2`.
    pub fn partition_predicate(&self, qualifier: Option<&str>, i: usize, n: usize) -> Option<Expr> {
        let (lo, hi) = self.partition_bounds(i, n);
        let col = || match qualifier {
            Some(q) => Expr::Column(apuama_sql::ColumnRef::qualified(q, self.vpa.clone())),
            None => Expr::Column(apuama_sql::ColumnRef::new(self.vpa.clone())),
        };
        let lo_pred = lo.map(|v| Expr::binary(col(), BinOp::GtEq, Expr::Literal(Value::Int(v))));
        let hi_pred = hi.map(|v| Expr::binary(col(), BinOp::Lt, Expr::Literal(Value::Int(v))));
        match (lo_pred, hi_pred) {
            (Some(a), Some(b)) => Some(a.and(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            // A single partition covers everything: no predicate needed.
            (None, None) => None,
        }
    }
}

/// The catalog of partitionable tables.
#[derive(Debug, Clone, Default)]
pub struct DataCatalog {
    entries: Vec<VirtualPartitioning>,
}

impl DataCatalog {
    pub fn new() -> Self {
        DataCatalog::default()
    }

    /// Registers a partitionable table.
    pub fn add(&mut self, vp: VirtualPartitioning) {
        self.entries.retain(|e| e.table != vp.table);
        self.entries.push(vp);
    }

    /// Partitioning info for a table, if it is partitionable.
    pub fn get(&self, table: &str) -> Option<&VirtualPartitioning> {
        self.entries.iter().find(|e| e.table == table)
    }

    /// All partitionable tables.
    pub fn tables(&self) -> impl Iterator<Item = &VirtualPartitioning> {
        self.entries.iter()
    }

    /// The paper's TPC-H catalog: `orders` on `o_orderkey` and the derived
    /// partitioning of `lineitem` on `l_orderkey`, both over the dense key
    /// range `[1, order_count]`.
    pub fn tpch(order_count: i64) -> DataCatalog {
        let mut c = DataCatalog::new();
        c.add(VirtualPartitioning {
            table: "orders".into(),
            vpa: "o_orderkey".into(),
            low: 1,
            high: order_count,
            domain: "orderkey".into(),
        });
        c.add(VirtualPartitioning {
            table: "lineitem".into(),
            vpa: "l_orderkey".into(),
            low: 1,
            high: order_count,
            domain: "orderkey".into(),
        });
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vp() -> VirtualPartitioning {
        VirtualPartitioning {
            table: "lineitem".into(),
            vpa: "l_orderkey".into(),
            low: 1,
            high: 6_000_000,
            domain: "orderkey".into(),
        }
    }

    #[test]
    fn paper_example_bounds() {
        // Paper §2: [1; 6,000,000] over 4 nodes ⇒ Q1: v2 = 1,500,001;
        // Q2: v1 = 1,500,001, v2 = 3,000,001; ...
        let vp = vp();
        assert_eq!(vp.partition_bounds(0, 4), (None, Some(1_500_001)));
        assert_eq!(
            vp.partition_bounds(1, 4),
            (Some(1_500_001), Some(3_000_001))
        );
        assert_eq!(
            vp.partition_bounds(2, 4),
            (Some(3_000_001), Some(4_500_001))
        );
        assert_eq!(vp.partition_bounds(3, 4), (Some(4_500_001), None));
    }

    #[test]
    fn partitions_are_disjoint_and_exhaustive() {
        let vp = VirtualPartitioning {
            low: 1,
            high: 103, // deliberately not divisible
            ..self::vp()
        };
        for n in [1usize, 2, 3, 5, 7] {
            // Every key (including ones outside the recorded range — the
            // refresh-stream case) belongs to exactly one partition.
            for key in -5i64..=120 {
                let mut owners = 0;
                for i in 0..n {
                    let (lo, hi) = vp.partition_bounds(i, n);
                    let in_lo = lo.is_none_or(|v| key >= v);
                    let in_hi = hi.is_none_or(|v| key < v);
                    if in_lo && in_hi {
                        owners += 1;
                    }
                }
                assert_eq!(owners, 1, "key {key} with {n} partitions");
            }
        }
    }

    #[test]
    fn single_partition_has_no_predicate() {
        assert_eq!(vp().partition_predicate(None, 0, 1), None);
    }

    #[test]
    fn predicate_renders_like_the_paper() {
        let p = vp().partition_predicate(None, 1, 4).unwrap();
        assert_eq!(
            p.to_string(),
            "((l_orderkey >= 1500001) and (l_orderkey < 3000001))"
        );
        let p0 = vp().partition_predicate(None, 0, 4).unwrap();
        assert_eq!(p0.to_string(), "(l_orderkey < 1500001)");
    }

    #[test]
    fn qualified_predicate() {
        let p = vp().partition_predicate(Some("l1"), 3, 4).unwrap();
        assert_eq!(p.to_string(), "(l1.l_orderkey >= 4500001)");
    }

    #[test]
    fn tpch_catalog_aligned_domains() {
        let c = DataCatalog::tpch(1_000);
        let o = c.get("orders").unwrap();
        let l = c.get("lineitem").unwrap();
        assert_eq!(o.domain, l.domain);
        assert_eq!(o.high, 1_000);
        assert!(c.get("customer").is_none());
    }

    #[test]
    fn add_replaces_existing_entry() {
        let mut c = DataCatalog::tpch(10);
        c.add(VirtualPartitioning {
            table: "orders".into(),
            vpa: "o_orderkey".into(),
            low: 1,
            high: 99,
            domain: "orderkey".into(),
        });
        assert_eq!(c.get("orders").unwrap().high, 99);
        assert_eq!(c.tables().count(), 2);
    }
}
