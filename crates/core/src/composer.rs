//! The Result Composer.
//!
//! Paper §3: "Sub-queries produced by SVP in Apuama are independently
//! processed by each node and their partial results must be combined in
//! order to form the final query result. Apuama uses HSQLDB, a fast
//! in-memory DBMS, to perform result composition."
//!
//! Our HSQLDB stand-in is the same relational engine the nodes run, with an
//! unbounded buffer pool ([`Database::in_memory`]): partial results are
//! loaded into the staging table and the composition query re-aggregates
//! them. The composition's own [`ExecStats`] are reported separately so the
//! simulator can price the composition step (the paper measures it at under
//! a second even for large partials).

use std::collections::HashMap;

use apuama_engine::{Database, EngineError, EngineResult, ExecStats, QueryOutput};
use apuama_sql::{HashableValue, Value};
use apuama_storage::Row;

use crate::rewrite::{ComposeSpec, FoldFn, SvpPlan, PARTIALS_TABLE};

/// Result of composing partial outputs.
#[derive(Debug, Clone)]
pub struct Composed {
    /// The final query result.
    pub output: QueryOutput,
    /// Work done by the composition query itself (staging-table scan,
    /// re-aggregation, sort).
    pub composition_stats: ExecStats,
    /// Total partial rows staged.
    pub partial_rows: u64,
}

/// SQL type name for a staging column, inferred from the first non-null
/// value seen in that column (all-NULL columns degrade to text, which
/// compares fine for our dialect).
fn infer_type(rows: &[&Row], col: usize) -> &'static str {
    for row in rows {
        match &row[col] {
            Value::Null => continue,
            Value::Int(_) => return "int",
            Value::Float(_) => return "float",
            Value::Str(_) => return "text",
            Value::Date(_) => return "date",
            Value::Bool(_) => return "bool",
            Value::Interval(_) => return "int",
        }
    }
    "text"
}

/// Loads the partial outputs into an in-memory staging table and runs the
/// plan's composition query.
pub fn compose(plan: &SvpPlan, partials: &[QueryOutput]) -> EngineResult<Composed> {
    let arity = plan.partial_columns.len();
    for (i, p) in partials.iter().enumerate() {
        for row in &p.rows {
            if row.len() != arity {
                return Err(EngineError::Constraint(format!(
                    "partial result {i} has arity {} but the plan expects {arity}",
                    row.len()
                )));
            }
        }
    }
    let all_rows: Vec<&Row> = partials.iter().flat_map(|p| p.rows.iter()).collect();

    let mut mem = Database::in_memory();
    let columns_ddl = plan
        .partial_columns
        .iter()
        .enumerate()
        .map(|(i, name)| format!("{name} {}", infer_type(&all_rows, i)))
        .collect::<Vec<_>>()
        .join(", ");
    mem.execute(&format!("create table {PARTIALS_TABLE} ({columns_ddl})"))?;
    let partial_rows = all_rows.len() as u64;
    mem.load_table(
        PARTIALS_TABLE,
        all_rows.into_iter().cloned().collect::<Vec<Row>>(),
    )?;

    let mut output = mem.query(&plan.composition_sql)?;
    let composition_stats = output.stats;
    output.stats = ExecStats::default();
    Ok(Composed {
        output,
        composition_stats,
        partial_rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::DataCatalog;
    use crate::rewrite::{Rewritten, SvpRewriter};

    /// Runs an SVP plan end to end against `n` identical in-memory replicas
    /// and checks the composed result equals the plain single-node answer.
    fn check_equivalence(sql: &str, n: usize) {
        // One replica of a small orders/lineitem-ish dataset.
        let build = || {
            let mut db = Database::in_memory();
            db.execute(
                "create table orders (o_orderkey int not null, o_totalprice float, \
                 o_orderpriority text, primary key (o_orderkey)) clustered by (o_orderkey)",
            )
            .unwrap();
            db.execute(
                "create table lineitem (l_orderkey int not null, l_quantity float, \
                 l_discount float, primary key (l_orderkey)) clustered by (l_orderkey)",
            )
            .unwrap();
            for k in 1..=100i64 {
                db.execute(&format!(
                    "insert into orders values ({k}, {}.0, '{}')",
                    k * 10,
                    if k % 2 == 0 { "1-URGENT" } else { "5-LOW" }
                ))
                .unwrap();
                db.execute(&format!(
                    "insert into lineitem values ({k}, {}.0, 0.0{})",
                    k % 7 + 1,
                    k % 10
                ))
                .unwrap();
            }
            db
        };
        let reference = build().query(sql).unwrap();

        let rewriter = SvpRewriter::new(DataCatalog::tpch(100));
        let Rewritten::Svp(plan) = rewriter.rewrite(sql, n).unwrap() else {
            panic!("expected SVP plan for {sql}");
        };
        let replica = build();
        let partials: Vec<QueryOutput> = plan
            .subqueries
            .iter()
            .map(|s| replica.query(s).unwrap())
            .collect();
        let composed = compose(&plan, &partials).unwrap();
        assert_eq!(composed.output.columns, reference.columns, "{sql}");
        assert_eq!(composed.output.rows.len(), reference.rows.len(), "{sql}");
        for (a, b) in composed.output.rows.iter().zip(&reference.rows) {
            for (x, y) in a.iter().zip(b) {
                match (x.as_f64(), y.as_f64()) {
                    (Some(fx), Some(fy)) => {
                        assert!((fx - fy).abs() < 1e-6, "{sql}: {fx} vs {fy}")
                    }
                    _ => assert_eq!(x, y, "{sql}"),
                }
            }
        }
    }

    #[test]
    fn global_sum_recomposes() {
        check_equivalence("select sum(l_quantity) as s from lineitem", 4);
    }

    #[test]
    fn global_avg_recomposes() {
        check_equivalence("select avg(l_quantity) as a from lineitem", 4);
    }

    #[test]
    fn count_star_recomposes() {
        check_equivalence("select count(*) as n from orders", 3);
    }

    #[test]
    fn min_max_recompose() {
        check_equivalence(
            "select min(o_totalprice) as lo, max(o_totalprice) as hi from orders",
            5,
        );
    }

    #[test]
    fn group_by_with_order_and_limit() {
        check_equivalence(
            "select o_orderpriority, count(*) as n, sum(o_totalprice) as t from orders \
             group by o_orderpriority order by o_orderpriority limit 2",
            4,
        );
    }

    #[test]
    fn expression_over_aggregates() {
        check_equivalence(
            "select 100.0 * sum(l_discount) / sum(l_quantity) as ratio from lineitem",
            4,
        );
    }

    #[test]
    fn join_query_recomposes() {
        check_equivalence(
            "select o_orderpriority, sum(l_quantity) as q from orders, lineitem \
             where l_orderkey = o_orderkey group by o_orderpriority order by o_orderpriority",
            4,
        );
    }

    #[test]
    fn non_aggregated_union() {
        check_equivalence(
            "select o_orderkey, o_totalprice from orders where o_totalprice > 900.0 \
             order by o_orderkey",
            3,
        );
    }

    #[test]
    fn having_filters_globally_not_per_node() {
        // Per-node counts are all below the threshold; only the global
        // count passes. Composing must still produce the group.
        check_equivalence(
            "select o_orderpriority, count(*) as n from orders \
             group by o_orderpriority having count(*) > 30 order by o_orderpriority",
            10,
        );
    }

    #[test]
    fn empty_partials_compose_to_empty_or_null() {
        let rewriter = SvpRewriter::new(DataCatalog::tpch(100));
        let Rewritten::Svp(plan) = rewriter
            .rewrite("select sum(l_quantity) as s from lineitem", 2)
            .unwrap()
        else {
            panic!()
        };
        let empty = QueryOutput {
            columns: plan.partial_columns.clone(),
            rows: vec![],
            ..QueryOutput::default()
        };
        let composed = compose(&plan, &[empty.clone(), empty]).unwrap();
        // Global aggregate over nothing: one row, NULL sum.
        assert_eq!(composed.output.rows, vec![vec![Value::Null]]);
    }

    #[test]
    fn arity_mismatch_is_an_error() {
        let rewriter = SvpRewriter::new(DataCatalog::tpch(100));
        let Rewritten::Svp(plan) = rewriter
            .rewrite("select sum(l_quantity) as s from lineitem", 2)
            .unwrap()
        else {
            panic!()
        };
        let bad = QueryOutput {
            columns: vec!["a".into(), "b".into()],
            rows: vec![vec![Value::Int(1), Value::Int(2)]],
            ..QueryOutput::default()
        };
        assert!(compose(&plan, &[bad]).is_err());
    }
}

/// A composer that keeps its in-memory engine and staging table alive
/// across queries of the same shape, clearing rows instead of rebuilding
/// schema — the "connection-pooled HSQLDB" variant of the paper's design
/// (DESIGN.md §5, ablation candidate 4). For repeated OLAP queries this
/// trades one `DELETE` for a `CREATE TABLE` + loader per composition.
pub struct ReusableComposer {
    mem: Database,
    /// The staging schema currently materialized (column names); `None`
    /// until first use.
    staged_columns: Option<Vec<String>>,
}

impl Default for ReusableComposer {
    fn default() -> Self {
        Self::new()
    }
}

impl ReusableComposer {
    pub fn new() -> Self {
        ReusableComposer {
            mem: Database::in_memory(),
            staged_columns: None,
        }
    }

    /// Composes like [`compose`], reusing the staging table when the
    /// partial schema matches the previous call. Falls back to a fresh
    /// engine when the shape changes (different query template).
    pub fn compose(&mut self, plan: &SvpPlan, partials: &[QueryOutput]) -> EngineResult<Composed> {
        let arity = plan.partial_columns.len();
        for (i, p) in partials.iter().enumerate() {
            for row in &p.rows {
                if row.len() != arity {
                    return Err(EngineError::Constraint(format!(
                        "partial result {i} has arity {} but the plan expects {arity}",
                        row.len()
                    )));
                }
            }
        }
        let all_rows: Vec<&Row> = partials.iter().flat_map(|p| p.rows.iter()).collect();
        let reuse = self.staged_columns.as_ref() == Some(&plan.partial_columns);
        if reuse {
            self.mem.execute(&format!("delete from {PARTIALS_TABLE}"))?;
        } else {
            // Shape changed: start a fresh engine (our dialect has no DROP
            // TABLE — a fresh in-memory instance is equivalent and cheap).
            self.mem = Database::in_memory();
            let columns_ddl = plan
                .partial_columns
                .iter()
                .enumerate()
                .map(|(i, name)| format!("{name} {}", infer_type(&all_rows, i)))
                .collect::<Vec<_>>()
                .join(", ");
            self.mem
                .execute(&format!("create table {PARTIALS_TABLE} ({columns_ddl})"))?;
            self.staged_columns = Some(plan.partial_columns.clone());
        }
        let partial_rows = all_rows.len() as u64;
        // Row-wise inserts through the table API (bulk_load requires an
        // empty heap; after a reuse-DELETE the heap may hold tombstones).
        let staged: Vec<Row> = all_rows.into_iter().cloned().collect();
        self.mem.append_rows(PARTIALS_TABLE, staged)?;
        let mut output = self.mem.query(&plan.composition_sql)?;
        let composition_stats = output.stats;
        output.stats = ExecStats::default();
        Ok(Composed {
            output,
            composition_stats,
            partial_rows,
        })
    }
}

// ---------------------------------------------------------------------------
// Incremental composition
// ---------------------------------------------------------------------------

/// Which Result Composer implementation the engine pipelines partials into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ComposerStrategy {
    /// Buffer every partial row, then stage + compose once at the end (the
    /// original HSQLDB-style path, pooled across queries).
    Staged,
    /// Fold each partial into running per-group state as it arrives;
    /// composition work overlaps the still-running sub-queries and the
    /// final query runs over one folded row per group.
    #[default]
    Streaming,
}

impl ComposerStrategy {
    /// Builds a fresh composer for this strategy.
    pub fn new_composer(self) -> Box<dyn Composer + Send> {
        match self {
            ComposerStrategy::Staged => Box::new(StagedComposer::new()),
            ComposerStrategy::Streaming => Box::new(StreamingComposer::new()),
        }
    }
}

/// Incremental result composition: `begin(plan)` → `accept(node, partial)`
/// per arriving partial → `finish()`.
///
/// Implementations key all state on the *node index*, never on arrival
/// order, so the composed result is a function of the per-node partial
/// sequences alone — sub-queries may complete in any interleaving and the
/// output (rows, ordering, floating-point bit patterns) does not change.
pub trait Composer {
    /// Starts a new composition for `plan`, discarding any prior state.
    fn begin(&mut self, plan: &SvpPlan) -> EngineResult<()>;
    /// Feeds one partial result produced by `node`. A node may contribute
    /// several partials (AVP chunks); their relative order is the node's
    /// own execution order.
    fn accept(&mut self, node: usize, partial: QueryOutput) -> EngineResult<()>;
    /// Feeds one partial result, re-chunking oversized row sets to the
    /// engine's scan-batch grain ([`apuama_engine::SCAN_BATCH_ROWS`]) before
    /// handing them to [`Composer::accept`]. The engine's operator pipeline
    /// produces rows batch-at-a-time; consuming them at the same grain keeps
    /// the composer's working set bounded per call. Composers key state on
    /// the node index and fold partials in arrival order, so splitting one
    /// partial into consecutive chunks composes the identical result. The
    /// partial's stats are not forwarded — per-node statement stats are
    /// recorded by the orchestrator before composition, and no composer
    /// reads them from an accepted partial.
    ///
    /// Re-chunking moves each row exactly once into its chunk (no clone,
    /// no per-row allocation); the compute-heavy half of composition — the
    /// recombination query a staged composer runs over its scratch table —
    /// executes through the embedded engine, where the fused kernel
    /// transposes each scan batch into typed column vectors
    /// (`enable_columnar`) rather than re-walking rows of boxed values.
    fn accept_batched(&mut self, node: usize, partial: QueryOutput) -> EngineResult<()> {
        if partial.rows.len() as u64 <= apuama_engine::SCAN_BATCH_ROWS {
            return self.accept(node, partial);
        }
        let QueryOutput { columns, rows, .. } = partial;
        let mut iter = rows.into_iter();
        loop {
            let chunk: Vec<Row> = iter
                .by_ref()
                .take(apuama_engine::SCAN_BATCH_ROWS as usize)
                .collect();
            if chunk.is_empty() {
                return Ok(());
            }
            self.accept(
                node,
                QueryOutput {
                    columns: columns.clone(),
                    rows: chunk,
                    ..Default::default()
                },
            )?;
        }
    }
    /// Completes the composition and returns the final result.
    fn finish(&mut self) -> EngineResult<Composed>;
    /// Abandons the in-progress composition, discarding staged partials.
    /// Pooled composers live across queries, so every error path between
    /// `begin()` and `finish()` must call this — otherwise the next query's
    /// `begin()` is the only thing standing between it and stale state.
    /// Must be callable at any point (idempotent, including before
    /// `begin()`).
    fn abort(&mut self);
}

/// Runs a full begin/accept/finish cycle over per-node partials (partial
/// `i` attributed to node `i`) — the one-shot convenience the benches and
/// tests use.
pub fn compose_with(
    strategy: ComposerStrategy,
    plan: &SvpPlan,
    partials: &[QueryOutput],
) -> EngineResult<Composed> {
    let mut composer = strategy.new_composer();
    composer.begin(plan)?;
    for (node, p) in partials.iter().enumerate() {
        composer.accept(node, p.clone())?;
    }
    composer.finish()
}

fn arity_error(node: usize, got: usize, want: usize) -> EngineError {
    EngineError::Constraint(format!(
        "partial result from node {node} has arity {got} but the plan expects {want}"
    ))
}

/// [`Composer`] port of the staging-table path: buffers partials per node
/// and replays them node-major through the pooled [`ReusableComposer`] at
/// `finish()`.
pub struct StagedComposer {
    pool: ReusableComposer,
    plan: Option<SvpPlan>,
    nodes: Vec<Vec<QueryOutput>>,
}

impl Default for StagedComposer {
    fn default() -> Self {
        Self::new()
    }
}

impl StagedComposer {
    pub fn new() -> Self {
        StagedComposer {
            pool: ReusableComposer::new(),
            plan: None,
            nodes: Vec::new(),
        }
    }
}

impl Composer for StagedComposer {
    fn begin(&mut self, plan: &SvpPlan) -> EngineResult<()> {
        self.plan = Some(plan.clone());
        self.nodes.clear();
        Ok(())
    }

    fn accept(&mut self, node: usize, partial: QueryOutput) -> EngineResult<()> {
        let plan = self.plan.as_ref().expect("begin() before accept()");
        let arity = plan.partial_columns.len();
        if let Some(bad) = partial.rows.iter().find(|r| r.len() != arity) {
            return Err(arity_error(node, bad.len(), arity));
        }
        if self.nodes.len() <= node {
            self.nodes.resize_with(node + 1, Vec::new);
        }
        self.nodes[node].push(partial);
        Ok(())
    }

    fn finish(&mut self) -> EngineResult<Composed> {
        let plan = self.plan.take().expect("begin() before finish()");
        let flat: Vec<QueryOutput> = std::mem::take(&mut self.nodes)
            .into_iter()
            .flatten()
            .collect();
        self.pool.compose(&plan, &flat)
    }

    fn abort(&mut self) {
        self.plan = None;
        self.nodes.clear();
    }
}

/// Accumulator for one re-aggregated partial column within one group.
///
/// Mirrors the engine executor's aggregate accumulator exactly — same NULL
/// skipping, same int/float dual tracking with `wrapping_add`, same
/// `sql_cmp`-based min/max — so folding partials here and then running the
/// composition query over the folded rows produces bit-identical results
/// to staging every raw partial row.
#[derive(Debug, Clone)]
enum FoldAcc {
    Sum {
        int: i64,
        float: f64,
        any_float: bool,
        n: i64,
    },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl FoldAcc {
    fn new(fold: FoldFn) -> FoldAcc {
        match fold {
            FoldFn::Sum => FoldAcc::Sum {
                int: 0,
                float: 0.0,
                any_float: false,
                n: 0,
            },
            FoldFn::Min => FoldAcc::Min(None),
            FoldFn::Max => FoldAcc::Max(None),
        }
    }

    fn update(&mut self, v: &Value) -> EngineResult<()> {
        match self {
            FoldAcc::Sum {
                int,
                float,
                any_float,
                n,
            } => {
                if v.is_null() {
                    return Ok(());
                }
                match v {
                    Value::Int(i) => {
                        *int = int.wrapping_add(*i);
                        *float += *i as f64;
                    }
                    Value::Float(x) => {
                        *any_float = true;
                        *float += x;
                    }
                    other => return Err(EngineError::TypeError(format!("sum() over {other}"))),
                }
                *n += 1;
            }
            FoldAcc::Min(cur) => {
                if v.is_null() {
                    return Ok(());
                }
                let replace = match cur {
                    None => true,
                    Some(c) => v.sql_cmp(c) == Some(std::cmp::Ordering::Less),
                };
                if replace {
                    *cur = Some(v.clone());
                }
            }
            FoldAcc::Max(cur) => {
                if v.is_null() {
                    return Ok(());
                }
                let replace = match cur {
                    None => true,
                    Some(c) => v.sql_cmp(c) == Some(std::cmp::Ordering::Greater),
                };
                if replace {
                    *cur = Some(v.clone());
                }
            }
        }
        Ok(())
    }

    /// Folds another accumulator into this one (cross-node reduction, in
    /// node-index order).
    fn absorb(&mut self, other: &FoldAcc) -> EngineResult<()> {
        match (self, other) {
            (
                FoldAcc::Sum {
                    int,
                    float,
                    any_float,
                    n,
                },
                FoldAcc::Sum {
                    int: oi,
                    float: of,
                    any_float: oa,
                    n: on,
                },
            ) => {
                *int = int.wrapping_add(*oi);
                *float += of;
                *any_float |= oa;
                *n += on;
                Ok(())
            }
            (acc @ (FoldAcc::Min(_) | FoldAcc::Max(_)), FoldAcc::Min(v) | FoldAcc::Max(v)) => {
                if let Some(v) = v {
                    acc.update(v)?;
                }
                Ok(())
            }
            _ => unreachable!("fold shapes come from the same plan"),
        }
    }

    fn finalize(&self) -> Value {
        match self {
            FoldAcc::Sum {
                int,
                float,
                any_float,
                n,
            } => {
                if *n == 0 {
                    Value::Null
                } else if *any_float {
                    Value::Float(*float)
                } else {
                    Value::Int(*int)
                }
            }
            FoldAcc::Min(v) | FoldAcc::Max(v) => v.clone().unwrap_or(Value::Null),
        }
    }
}

/// Per-group folded state: first-seen group-key values plus one
/// accumulator per aggregate column.
#[derive(Debug, Clone)]
struct FoldGroup {
    keys: Vec<Value>,
    accs: Vec<FoldAcc>,
}

/// One node's running fold, groups in first-seen order (which is what the
/// engine's hash aggregation reports, so the final composition sees groups
/// in the same order the staged path would).
#[derive(Debug, Default)]
struct NodeFold {
    index: HashMap<Vec<HashableValue>, usize>,
    groups: Vec<FoldGroup>,
}

impl NodeFold {
    fn fold_row(&mut self, group_cols: usize, folds: &[FoldFn], row: &Row) -> EngineResult<()> {
        let key: Vec<HashableValue> = row[..group_cols].iter().map(Value::hash_key).collect();
        let gi = match self.index.get(&key) {
            Some(&gi) => gi,
            None => {
                self.groups.push(FoldGroup {
                    keys: row[..group_cols].to_vec(),
                    accs: folds.iter().map(|&f| FoldAcc::new(f)).collect(),
                });
                self.index.insert(key, self.groups.len() - 1);
                self.groups.len() - 1
            }
        };
        let group = &mut self.groups[gi];
        for (acc, v) in group.accs.iter_mut().zip(&row[group_cols..]) {
            acc.update(v)?;
        }
        Ok(())
    }
}

/// Streaming state, chosen at `begin()` from the plan's [`ComposeSpec`].
enum StreamState {
    Idle,
    /// Aggregated query: group-wise fold per node.
    Reagg {
        group_cols: usize,
        folds: Vec<FoldFn>,
        nodes: Vec<NodeFold>,
    },
    /// Plain union: buffer rows tagged `(node, seq)`, pruning to the top
    /// `limit` under the ORDER BY comparator when both are available.
    Union {
        /// ORDER BY keys as partial-column indices; `None` disables the
        /// cutoff (un-analyzable ORDER BY expression).
        order: Option<Vec<(usize, bool)>>,
        limit: Option<u64>,
        rows: Vec<(usize, u64, Row)>,
        /// Per-node row sequence counters.
        seqs: Vec<u64>,
    },
}

/// The streaming Result Composer: folds partial rows into per-node,
/// per-group accumulators as they arrive, reduces across nodes in node
/// order at `finish()`, and runs the plan's composition query over the
/// folded rows (one per group) so HAVING / ORDER BY / LIMIT / output
/// expressions get exactly the engine's semantics.
///
/// For non-aggregated queries with `ORDER BY … LIMIT k` over output
/// columns, arriving rows are cut off at the global top `k` (stable
/// comparator: ORDER BY keys via `Value::sort_cmp`, then `(node, seq)` —
/// the same tie-break a stable sort over the staging table gives), so
/// memory stays `O(k)` instead of `O(total partial rows)`.
pub struct StreamingComposer {
    /// The final mini-composition reuses the pooled staging machinery —
    /// folded rows form a tiny `svp_partials` table.
    pool: ReusableComposer,
    plan: Option<SvpPlan>,
    state: StreamState,
    accepted_rows: u64,
}

impl Default for StreamingComposer {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingComposer {
    pub fn new() -> Self {
        StreamingComposer {
            pool: ReusableComposer::new(),
            plan: None,
            state: StreamState::Idle,
            accepted_rows: 0,
        }
    }

    /// Inserts a row into the pruned union buffer, keeping `rows` sorted by
    /// (ORDER BY keys, node, seq) and truncated to `limit`.
    fn union_insert(
        rows: &mut Vec<(usize, u64, Row)>,
        keys: &[(usize, bool)],
        limit: usize,
        entry: (usize, u64, Row),
    ) {
        let cmp = |a: &(usize, u64, Row), b: &(usize, u64, Row)| {
            for &(col, desc) in keys {
                let ord = a.2[col].sort_cmp(&b.2[col]);
                let ord = if desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            (a.0, a.1).cmp(&(b.0, b.1))
        };
        let pos = rows
            .binary_search_by(|probe| cmp(probe, &entry))
            .unwrap_or_else(|p| p);
        if pos >= limit {
            return;
        }
        rows.insert(pos, entry);
        rows.truncate(limit);
    }
}

impl Composer for StreamingComposer {
    fn begin(&mut self, plan: &SvpPlan) -> EngineResult<()> {
        self.state = match &plan.compose {
            ComposeSpec::Reaggregate { group_cols, folds } => StreamState::Reagg {
                group_cols: *group_cols,
                folds: folds.clone(),
                nodes: Vec::new(),
            },
            ComposeSpec::Union { order, limit } => StreamState::Union {
                order: order.clone(),
                limit: *limit,
                rows: Vec::new(),
                seqs: Vec::new(),
            },
        };
        self.plan = Some(plan.clone());
        self.accepted_rows = 0;
        Ok(())
    }

    fn accept(&mut self, node: usize, partial: QueryOutput) -> EngineResult<()> {
        let plan = self.plan.as_ref().expect("begin() before accept()");
        let arity = plan.partial_columns.len();
        if let Some(bad) = partial.rows.iter().find(|r| r.len() != arity) {
            return Err(arity_error(node, bad.len(), arity));
        }
        self.accepted_rows += partial.rows.len() as u64;
        match &mut self.state {
            StreamState::Idle => panic!("begin() before accept()"),
            StreamState::Reagg {
                group_cols,
                folds,
                nodes,
            } => {
                if nodes.len() <= node {
                    nodes.resize_with(node + 1, NodeFold::default);
                }
                for row in &partial.rows {
                    nodes[node].fold_row(*group_cols, folds, row)?;
                }
            }
            StreamState::Union {
                order,
                limit,
                rows,
                seqs,
            } => {
                if seqs.len() <= node {
                    seqs.resize(node + 1, 0);
                }
                let cutoff = match (&order, limit) {
                    (Some(keys), Some(k)) => Some((keys.clone(), *k as usize)),
                    _ => None,
                };
                for row in partial.rows {
                    let seq = seqs[node];
                    seqs[node] += 1;
                    match &cutoff {
                        Some((keys, k)) => Self::union_insert(rows, keys, *k, (node, seq, row)),
                        None => rows.push((node, seq, row)),
                    }
                }
            }
        }
        Ok(())
    }

    fn finish(&mut self) -> EngineResult<Composed> {
        let plan = self.plan.take().expect("begin() before finish()");
        let folded: Vec<Row> = match std::mem::replace(&mut self.state, StreamState::Idle) {
            StreamState::Idle => panic!("begin() before finish()"),
            StreamState::Reagg {
                group_cols: _,
                folds: _,
                nodes,
            } => {
                // Cross-node reduction in node-index order; group output
                // order is global first-seen order, matching the staged
                // path's hash aggregation over node-major staging rows.
                let mut index: HashMap<Vec<HashableValue>, usize> = HashMap::new();
                let mut merged: Vec<FoldGroup> = Vec::new();
                for node in nodes {
                    for group in node.groups {
                        let key: Vec<HashableValue> =
                            group.keys.iter().map(Value::hash_key).collect();
                        match index.get(&key) {
                            Some(&gi) => {
                                let target = &mut merged[gi];
                                for (acc, other) in target.accs.iter_mut().zip(&group.accs) {
                                    acc.absorb(other)?;
                                }
                            }
                            None => {
                                index.insert(key, merged.len());
                                merged.push(group);
                            }
                        }
                    }
                }
                merged
                    .into_iter()
                    .map(|g| {
                        let mut row = g.keys;
                        row.extend(g.accs.iter().map(FoldAcc::finalize));
                        row
                    })
                    .collect()
            }
            StreamState::Union { mut rows, .. } => {
                // Restore staging insertion order (node-major, per-node
                // sequence); the composition query re-applies ORDER BY.
                rows.sort_by_key(|(node, seq, _)| (*node, *seq));
                rows.into_iter().map(|(_, _, row)| row).collect()
            }
        };
        let folded_output = QueryOutput {
            columns: plan.partial_columns.clone(),
            rows: folded,
            ..QueryOutput::default()
        };
        let mut composed = self.pool.compose(&plan, &[folded_output])?;
        // Report rows *accepted*, not rows staged after folding — callers
        // use this as "partial rows shipped to the composer".
        composed.partial_rows = self.accepted_rows;
        Ok(composed)
    }

    fn abort(&mut self) {
        self.plan = None;
        self.state = StreamState::Idle;
        self.accepted_rows = 0;
    }
}

#[cfg(test)]
mod incremental_tests {
    use super::*;
    use crate::catalog::DataCatalog;
    use crate::rewrite::{Rewritten, SvpRewriter};

    fn replica() -> Database {
        let mut db = Database::in_memory();
        db.execute(
            "create table orders (o_orderkey int not null, o_totalprice float, \
             o_orderpriority text, primary key (o_orderkey)) clustered by (o_orderkey)",
        )
        .unwrap();
        for k in 1..=100i64 {
            db.execute(&format!(
                "insert into orders values ({k}, {}.5, '{}')",
                k * 10,
                if k % 2 == 0 { "1-URGENT" } else { "5-LOW" }
            ))
            .unwrap();
        }
        db
    }

    fn plan_and_partials(sql: &str, n: usize) -> (SvpPlan, Vec<QueryOutput>) {
        let rewriter = SvpRewriter::new(DataCatalog::tpch(100));
        let Rewritten::Svp(plan) = rewriter.rewrite(sql, n).unwrap() else {
            panic!("expected SVP plan for {sql}");
        };
        let db = replica();
        let partials = plan
            .subqueries
            .iter()
            .map(|s| db.query(s).unwrap())
            .collect();
        (plan, partials)
    }

    const QUERIES: &[&str] = &[
        "select sum(o_totalprice) as s from orders",
        "select avg(o_totalprice) as a, count(*) as n from orders",
        "select min(o_totalprice) as lo, max(o_totalprice) as hi from orders",
        "select o_orderpriority, count(*) as n, sum(o_totalprice) as t from orders \
         group by o_orderpriority order by o_orderpriority limit 2",
        "select o_orderpriority, count(*) as n from orders group by o_orderpriority \
         having count(*) > 30 order by o_orderpriority",
        "select o_orderkey, o_totalprice from orders where o_totalprice > 900.0 \
         order by o_orderkey",
        "select o_orderkey, o_totalprice from orders where o_totalprice > 100.0 \
         order by o_totalprice desc, o_orderkey limit 7",
        "select o_orderkey from orders where o_totalprice > 980.0",
    ];

    #[test]
    fn streaming_equals_staged_bit_for_bit() {
        for sql in QUERIES {
            for n in [1usize, 3, 5] {
                let (plan, partials) = plan_and_partials(sql, n);
                let staged = compose_with(ComposerStrategy::Staged, &plan, &partials).unwrap();
                let streaming =
                    compose_with(ComposerStrategy::Streaming, &plan, &partials).unwrap();
                assert_eq!(streaming.output.columns, staged.output.columns, "{sql}");
                assert_eq!(streaming.output.rows, staged.output.rows, "{sql} n={n}");
                assert_eq!(streaming.partial_rows, staged.partial_rows, "{sql} n={n}");
            }
        }
    }

    #[test]
    fn arrival_order_does_not_change_the_result() {
        for sql in QUERIES {
            let (plan, partials) = plan_and_partials(sql, 4);
            let baseline = compose_with(ComposerStrategy::Streaming, &plan, &partials).unwrap();
            // Reverse and interleave arrival orders.
            for order in [vec![3usize, 2, 1, 0], vec![2, 0, 3, 1]] {
                let mut composer = StreamingComposer::new();
                composer.begin(&plan).unwrap();
                for &node in &order {
                    composer.accept(node, partials[node].clone()).unwrap();
                }
                let shuffled = composer.finish().unwrap();
                assert_eq!(
                    shuffled.output.rows, baseline.output.rows,
                    "{sql} {order:?}"
                );
            }
        }
    }

    #[test]
    fn both_strategies_match_the_one_shot_composer() {
        for sql in QUERIES {
            let (plan, partials) = plan_and_partials(sql, 3);
            let reference = compose(&plan, &partials).unwrap();
            for strategy in [ComposerStrategy::Staged, ComposerStrategy::Streaming] {
                let got = compose_with(strategy, &plan, &partials).unwrap();
                assert_eq!(got.output.rows, reference.output.rows, "{sql} {strategy:?}");
            }
        }
    }

    #[test]
    fn composer_instances_are_reusable_across_plans() {
        let mut composer = StreamingComposer::new();
        for round in 0..2 {
            for sql in [
                "select count(*) as n from orders",
                "select o_orderpriority, sum(o_totalprice) as t from orders \
                 group by o_orderpriority order by o_orderpriority",
            ] {
                let (plan, partials) = plan_and_partials(sql, 3);
                composer.begin(&plan).unwrap();
                for (i, p) in partials.iter().enumerate() {
                    composer.accept(i, p.clone()).unwrap();
                }
                let got = composer.finish().unwrap();
                let want = compose(&plan, &partials).unwrap();
                assert_eq!(got.output.rows, want.output.rows, "round {round}: {sql}");
            }
        }
    }

    #[test]
    fn streaming_cutoff_bounds_the_union_buffer() {
        let sql = "select o_orderkey, o_totalprice from orders \
                   order by o_totalprice desc limit 5";
        let (plan, partials) = plan_and_partials(sql, 4);
        let mut composer = StreamingComposer::new();
        composer.begin(&plan).unwrap();
        for (i, p) in partials.iter().enumerate() {
            composer.accept(i, p.clone()).unwrap();
        }
        if let StreamState::Union { rows, .. } = &composer.state {
            assert_eq!(rows.len(), 5, "buffer should hold only the top LIMIT rows");
        } else {
            panic!("plain ORDER BY/LIMIT query should stream as a union");
        }
        let got = composer.finish().unwrap();
        let want = compose(&plan, &partials).unwrap();
        assert_eq!(got.output.rows, want.output.rows);
        assert_eq!(got.partial_rows, want.partial_rows);
    }

    #[test]
    fn streaming_reports_accepted_rows_not_folded_rows() {
        // 3 nodes × 1 partial row each fold to a single global-aggregate
        // row; partial_rows must still say 3.
        let (plan, partials) = plan_and_partials("select sum(o_totalprice) as s from orders", 3);
        let got = compose_with(ComposerStrategy::Streaming, &plan, &partials).unwrap();
        assert_eq!(got.partial_rows, 3);
    }

    /// `accept_batched` re-chunks oversized partials to the engine's
    /// scan-batch grain; the composed result must not change for either
    /// strategy, aggregated or union-shaped.
    #[test]
    fn accept_batched_rechunks_oversized_partials_identically() {
        const BATCH: usize = apuama_engine::SCAN_BATCH_ROWS as usize;
        for sql in [
            "select o_orderpriority, count(*) as n, sum(o_totalprice) as t from orders \
             group by o_orderpriority order by o_orderpriority",
            "select o_orderkey, o_totalprice from orders where o_totalprice > 100.0 \
             order by o_totalprice desc, o_orderkey limit 7",
        ] {
            let (plan, partials) = plan_and_partials(sql, 2);
            // Inflate each partial well past one batch, to a size that is
            // not a multiple of it, so re-chunking actually splits.
            let inflated: Vec<QueryOutput> = partials
                .iter()
                .map(|p| {
                    assert!(!p.rows.is_empty(), "{sql}");
                    let mut rows = Vec::new();
                    while rows.len() <= 2 * BATCH {
                        rows.extend(p.rows.iter().cloned());
                    }
                    QueryOutput {
                        columns: p.columns.clone(),
                        rows,
                        ..QueryOutput::default()
                    }
                })
                .collect();
            for strategy in [ComposerStrategy::Staged, ComposerStrategy::Streaming] {
                let run = |batched: bool| {
                    let mut c = strategy.new_composer();
                    c.begin(&plan).unwrap();
                    for (i, p) in inflated.iter().enumerate() {
                        if batched {
                            c.accept_batched(i, p.clone()).unwrap();
                        } else {
                            c.accept(i, p.clone()).unwrap();
                        }
                    }
                    c.finish().unwrap()
                };
                let whole = run(false);
                let chunked = run(true);
                assert_eq!(chunked.output.rows, whole.output.rows, "{sql} {strategy:?}");
                assert_eq!(
                    chunked.partial_rows, whole.partial_rows,
                    "{sql} {strategy:?}"
                );
            }
        }
    }

    #[test]
    fn accept_rejects_arity_mismatch() {
        let (plan, _) = plan_and_partials("select sum(o_totalprice) as s from orders", 2);
        for strategy in [ComposerStrategy::Staged, ComposerStrategy::Streaming] {
            let mut composer = strategy.new_composer();
            composer.begin(&plan).unwrap();
            let bad = QueryOutput {
                columns: vec!["a".into(), "b".into()],
                rows: vec![vec![Value::Int(1), Value::Int(2)]],
                ..QueryOutput::default()
            };
            assert!(composer.accept(0, bad).is_err(), "{strategy:?}");
        }
    }

    #[test]
    fn empty_stream_composes_like_empty_staging() {
        let (plan, _) = plan_and_partials("select sum(o_totalprice) as s from orders", 2);
        let empty = QueryOutput {
            columns: plan.partial_columns.clone(),
            rows: vec![],
            ..QueryOutput::default()
        };
        let staged = compose_with(
            ComposerStrategy::Staged,
            &plan,
            &[empty.clone(), empty.clone()],
        )
        .unwrap();
        let streaming =
            compose_with(ComposerStrategy::Streaming, &plan, &[empty.clone(), empty]).unwrap();
        assert_eq!(staged.output.rows, vec![vec![Value::Null]]);
        assert_eq!(streaming.output.rows, staged.output.rows);
    }
}

#[cfg(test)]
mod reusable_tests {
    use super::*;
    use crate::catalog::DataCatalog;
    use crate::rewrite::{Rewritten, SvpRewriter};
    use apuama_sql::Value;

    fn plan_for(sql: &str, n: usize) -> SvpPlan {
        match SvpRewriter::new(DataCatalog::tpch(100))
            .rewrite(sql, n)
            .unwrap()
        {
            Rewritten::Svp(p) => p,
            _ => panic!("eligible"),
        }
    }

    fn partial(plan: &SvpPlan, rows: Vec<Row>) -> QueryOutput {
        QueryOutput {
            columns: plan.partial_columns.clone(),
            rows,
            ..QueryOutput::default()
        }
    }

    #[test]
    fn abort_discards_staged_partials_for_both_strategies() {
        let plan = plan_for(
            "select count(*) as n, sum(o_totalprice) as s from orders",
            2,
        );
        for strategy in [ComposerStrategy::Staged, ComposerStrategy::Streaming] {
            let mut composer = strategy.new_composer();
            // Abort before begin is a no-op.
            composer.abort();
            // Stage poison partials, then abort mid-composition.
            composer.begin(&plan).unwrap();
            composer
                .accept(
                    0,
                    partial(&plan, vec![vec![Value::Int(999), Value::Float(999.0)]]),
                )
                .unwrap();
            composer.abort();
            // A fresh composition after the abort sees none of it.
            let good = [
                partial(&plan, vec![vec![Value::Int(2), Value::Float(5.0)]]),
                partial(&plan, vec![vec![Value::Int(3), Value::Float(7.0)]]),
            ];
            let mut fresh = strategy.new_composer();
            fresh.begin(&plan).unwrap();
            composer.begin(&plan).unwrap();
            for (node, p) in good.iter().enumerate() {
                fresh.accept(node, p.clone()).unwrap();
                composer.accept(node, p.clone()).unwrap();
            }
            let want = fresh.finish().unwrap();
            let got = composer.finish().unwrap();
            assert_eq!(got.output.rows, want.output.rows, "{strategy:?}");
            assert_eq!(got.partial_rows, want.partial_rows, "{strategy:?}");
        }
    }

    #[test]
    fn reusable_matches_one_shot_composer_across_repeats() {
        let plan = plan_for(
            "select o_orderpriority, count(*) as n from orders group by o_orderpriority \
             order by o_orderpriority",
            3,
        );
        let mut reusable = ReusableComposer::new();
        for round in 1..=3i64 {
            let partials: Vec<QueryOutput> = (0..3)
                .map(|node| {
                    partial(
                        &plan,
                        vec![vec![
                            Value::Str(format!("P{}", node % 2)),
                            Value::Int(round * (node + 1)),
                        ]],
                    )
                })
                .collect();
            let fresh = compose(&plan, &partials).unwrap();
            let reused = reusable.compose(&plan, &partials).unwrap();
            assert_eq!(reused.output.rows, fresh.output.rows, "round {round}");
            assert_eq!(reused.partial_rows, fresh.partial_rows);
        }
    }

    #[test]
    fn shape_change_rebuilds_cleanly() {
        let mut reusable = ReusableComposer::new();
        let p1 = plan_for("select count(*) as n from orders", 2);
        let r1 = reusable
            .compose(
                &p1,
                &[
                    partial(&p1, vec![vec![Value::Int(3)]]),
                    partial(&p1, vec![vec![Value::Int(4)]]),
                ],
            )
            .unwrap();
        assert_eq!(r1.output.rows, vec![vec![Value::Int(7)]]);
        // Different template: more columns.
        let p2 = plan_for(
            "select min(o_totalprice) as lo, max(o_totalprice) as hi from orders",
            2,
        );
        let r2 = reusable
            .compose(
                &p2,
                &[
                    partial(&p2, vec![vec![Value::Float(1.0), Value::Float(9.0)]]),
                    partial(&p2, vec![vec![Value::Float(0.5), Value::Float(7.0)]]),
                ],
            )
            .unwrap();
        assert_eq!(
            r2.output.rows,
            vec![vec![Value::Float(0.5), Value::Float(9.0)]]
        );
        // And back to the first shape (forces another rebuild).
        let r3 = reusable
            .compose(
                &p1,
                &[
                    partial(&p1, vec![vec![Value::Int(1)]]),
                    partial(&p1, vec![vec![Value::Int(1)]]),
                ],
            )
            .unwrap();
        assert_eq!(r3.output.rows, vec![vec![Value::Int(2)]]);
    }

    #[test]
    fn leftover_rows_never_leak_between_queries() {
        let plan = plan_for("select sum(o_totalprice) as s from orders", 2);
        let mut reusable = ReusableComposer::new();
        let big = reusable
            .compose(
                &plan,
                &[
                    partial(&plan, vec![vec![Value::Float(100.0)]]),
                    partial(&plan, vec![vec![Value::Float(200.0)]]),
                ],
            )
            .unwrap();
        assert_eq!(big.output.rows, vec![vec![Value::Float(300.0)]]);
        let small = reusable
            .compose(
                &plan,
                &[
                    partial(&plan, vec![vec![Value::Float(1.0)]]),
                    partial(&plan, vec![vec![Value::Float(2.0)]]),
                ],
            )
            .unwrap();
        assert_eq!(small.output.rows, vec![vec![Value::Float(3.0)]]);
    }
}
