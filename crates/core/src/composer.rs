//! The Result Composer.
//!
//! Paper §3: "Sub-queries produced by SVP in Apuama are independently
//! processed by each node and their partial results must be combined in
//! order to form the final query result. Apuama uses HSQLDB, a fast
//! in-memory DBMS, to perform result composition."
//!
//! Our HSQLDB stand-in is the same relational engine the nodes run, with an
//! unbounded buffer pool ([`Database::in_memory`]): partial results are
//! loaded into the staging table and the composition query re-aggregates
//! them. The composition's own [`ExecStats`] are reported separately so the
//! simulator can price the composition step (the paper measures it at under
//! a second even for large partials).

use apuama_engine::{Database, EngineError, EngineResult, ExecStats, QueryOutput};
use apuama_sql::Value;
use apuama_storage::Row;

use crate::rewrite::{SvpPlan, PARTIALS_TABLE};

/// Result of composing partial outputs.
#[derive(Debug, Clone)]
pub struct Composed {
    /// The final query result.
    pub output: QueryOutput,
    /// Work done by the composition query itself (staging-table scan,
    /// re-aggregation, sort).
    pub composition_stats: ExecStats,
    /// Total partial rows staged.
    pub partial_rows: u64,
}

/// SQL type name for a staging column, inferred from the first non-null
/// value seen in that column (all-NULL columns degrade to text, which
/// compares fine for our dialect).
fn infer_type(rows: &[&Row], col: usize) -> &'static str {
    for row in rows {
        match &row[col] {
            Value::Null => continue,
            Value::Int(_) => return "int",
            Value::Float(_) => return "float",
            Value::Str(_) => return "text",
            Value::Date(_) => return "date",
            Value::Bool(_) => return "bool",
            Value::Interval(_) => return "int",
        }
    }
    "text"
}

/// Loads the partial outputs into an in-memory staging table and runs the
/// plan's composition query.
pub fn compose(plan: &SvpPlan, partials: &[QueryOutput]) -> EngineResult<Composed> {
    let arity = plan.partial_columns.len();
    for (i, p) in partials.iter().enumerate() {
        for row in &p.rows {
            if row.len() != arity {
                return Err(EngineError::Constraint(format!(
                    "partial result {i} has arity {} but the plan expects {arity}",
                    row.len()
                )));
            }
        }
    }
    let all_rows: Vec<&Row> = partials.iter().flat_map(|p| p.rows.iter()).collect();

    let mut mem = Database::in_memory();
    let columns_ddl = plan
        .partial_columns
        .iter()
        .enumerate()
        .map(|(i, name)| format!("{name} {}", infer_type(&all_rows, i)))
        .collect::<Vec<_>>()
        .join(", ");
    mem.execute(&format!("create table {PARTIALS_TABLE} ({columns_ddl})"))?;
    let partial_rows = all_rows.len() as u64;
    mem.load_table(
        PARTIALS_TABLE,
        all_rows.into_iter().cloned().collect::<Vec<Row>>(),
    )?;

    let mut output = mem.query(&plan.composition_sql)?;
    let composition_stats = output.stats;
    output.stats = ExecStats::default();
    Ok(Composed {
        output,
        composition_stats,
        partial_rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::DataCatalog;
    use crate::rewrite::{Rewritten, SvpRewriter};

    /// Runs an SVP plan end to end against `n` identical in-memory replicas
    /// and checks the composed result equals the plain single-node answer.
    fn check_equivalence(sql: &str, n: usize) {
        // One replica of a small orders/lineitem-ish dataset.
        let build = || {
            let mut db = Database::in_memory();
            db.execute(
                "create table orders (o_orderkey int not null, o_totalprice float, \
                 o_orderpriority text, primary key (o_orderkey)) clustered by (o_orderkey)",
            )
            .unwrap();
            db.execute(
                "create table lineitem (l_orderkey int not null, l_quantity float, \
                 l_discount float, primary key (l_orderkey)) clustered by (l_orderkey)",
            )
            .unwrap();
            for k in 1..=100i64 {
                db.execute(&format!(
                    "insert into orders values ({k}, {}.0, '{}')",
                    k * 10,
                    if k % 2 == 0 { "1-URGENT" } else { "5-LOW" }
                ))
                .unwrap();
                db.execute(&format!(
                    "insert into lineitem values ({k}, {}.0, 0.0{})",
                    k % 7 + 1,
                    k % 10
                ))
                .unwrap();
            }
            db
        };
        let reference = build().query(sql).unwrap();

        let rewriter = SvpRewriter::new(DataCatalog::tpch(100));
        let Rewritten::Svp(plan) = rewriter.rewrite(sql, n).unwrap() else {
            panic!("expected SVP plan for {sql}");
        };
        let replica = build();
        let partials: Vec<QueryOutput> = plan
            .subqueries
            .iter()
            .map(|s| replica.query(s).unwrap())
            .collect();
        let composed = compose(&plan, &partials).unwrap();
        assert_eq!(composed.output.columns, reference.columns, "{sql}");
        assert_eq!(composed.output.rows.len(), reference.rows.len(), "{sql}");
        for (a, b) in composed.output.rows.iter().zip(&reference.rows) {
            for (x, y) in a.iter().zip(b) {
                match (x.as_f64(), y.as_f64()) {
                    (Some(fx), Some(fy)) => {
                        assert!((fx - fy).abs() < 1e-6, "{sql}: {fx} vs {fy}")
                    }
                    _ => assert_eq!(x, y, "{sql}"),
                }
            }
        }
    }

    #[test]
    fn global_sum_recomposes() {
        check_equivalence("select sum(l_quantity) as s from lineitem", 4);
    }

    #[test]
    fn global_avg_recomposes() {
        check_equivalence("select avg(l_quantity) as a from lineitem", 4);
    }

    #[test]
    fn count_star_recomposes() {
        check_equivalence("select count(*) as n from orders", 3);
    }

    #[test]
    fn min_max_recompose() {
        check_equivalence(
            "select min(o_totalprice) as lo, max(o_totalprice) as hi from orders",
            5,
        );
    }

    #[test]
    fn group_by_with_order_and_limit() {
        check_equivalence(
            "select o_orderpriority, count(*) as n, sum(o_totalprice) as t from orders \
             group by o_orderpriority order by o_orderpriority limit 2",
            4,
        );
    }

    #[test]
    fn expression_over_aggregates() {
        check_equivalence(
            "select 100.0 * sum(l_discount) / sum(l_quantity) as ratio from lineitem",
            4,
        );
    }

    #[test]
    fn join_query_recomposes() {
        check_equivalence(
            "select o_orderpriority, sum(l_quantity) as q from orders, lineitem \
             where l_orderkey = o_orderkey group by o_orderpriority order by o_orderpriority",
            4,
        );
    }

    #[test]
    fn non_aggregated_union() {
        check_equivalence(
            "select o_orderkey, o_totalprice from orders where o_totalprice > 900.0 \
             order by o_orderkey",
            3,
        );
    }

    #[test]
    fn having_filters_globally_not_per_node() {
        // Per-node counts are all below the threshold; only the global
        // count passes. Composing must still produce the group.
        check_equivalence(
            "select o_orderpriority, count(*) as n from orders \
             group by o_orderpriority having count(*) > 30 order by o_orderpriority",
            10,
        );
    }

    #[test]
    fn empty_partials_compose_to_empty_or_null() {
        let rewriter = SvpRewriter::new(DataCatalog::tpch(100));
        let Rewritten::Svp(plan) = rewriter
            .rewrite("select sum(l_quantity) as s from lineitem", 2)
            .unwrap()
        else {
            panic!()
        };
        let empty = QueryOutput {
            columns: plan.partial_columns.clone(),
            rows: vec![],
            ..QueryOutput::default()
        };
        let composed = compose(&plan, &[empty.clone(), empty]).unwrap();
        // Global aggregate over nothing: one row, NULL sum.
        assert_eq!(composed.output.rows, vec![vec![Value::Null]]);
    }

    #[test]
    fn arity_mismatch_is_an_error() {
        let rewriter = SvpRewriter::new(DataCatalog::tpch(100));
        let Rewritten::Svp(plan) = rewriter
            .rewrite("select sum(l_quantity) as s from lineitem", 2)
            .unwrap()
        else {
            panic!()
        };
        let bad = QueryOutput {
            columns: vec!["a".into(), "b".into()],
            rows: vec![vec![Value::Int(1), Value::Int(2)]],
            ..QueryOutput::default()
        };
        assert!(compose(&plan, &[bad]).is_err());
    }
}

/// A composer that keeps its in-memory engine and staging table alive
/// across queries of the same shape, clearing rows instead of rebuilding
/// schema — the "connection-pooled HSQLDB" variant of the paper's design
/// (DESIGN.md §5, ablation candidate 4). For repeated OLAP queries this
/// trades one `DELETE` for a `CREATE TABLE` + loader per composition.
pub struct ReusableComposer {
    mem: Database,
    /// The staging schema currently materialized (column names); `None`
    /// until first use.
    staged_columns: Option<Vec<String>>,
}

impl Default for ReusableComposer {
    fn default() -> Self {
        Self::new()
    }
}

impl ReusableComposer {
    pub fn new() -> Self {
        ReusableComposer {
            mem: Database::in_memory(),
            staged_columns: None,
        }
    }

    /// Composes like [`compose`], reusing the staging table when the
    /// partial schema matches the previous call. Falls back to a fresh
    /// engine when the shape changes (different query template).
    pub fn compose(&mut self, plan: &SvpPlan, partials: &[QueryOutput]) -> EngineResult<Composed> {
        let arity = plan.partial_columns.len();
        for (i, p) in partials.iter().enumerate() {
            for row in &p.rows {
                if row.len() != arity {
                    return Err(EngineError::Constraint(format!(
                        "partial result {i} has arity {} but the plan expects {arity}",
                        row.len()
                    )));
                }
            }
        }
        let all_rows: Vec<&Row> = partials.iter().flat_map(|p| p.rows.iter()).collect();
        let reuse = self.staged_columns.as_ref() == Some(&plan.partial_columns);
        if reuse {
            self.mem.execute(&format!("delete from {PARTIALS_TABLE}"))?;
        } else {
            // Shape changed: start a fresh engine (our dialect has no DROP
            // TABLE — a fresh in-memory instance is equivalent and cheap).
            self.mem = Database::in_memory();
            let columns_ddl = plan
                .partial_columns
                .iter()
                .enumerate()
                .map(|(i, name)| format!("{name} {}", infer_type(&all_rows, i)))
                .collect::<Vec<_>>()
                .join(", ");
            self.mem
                .execute(&format!("create table {PARTIALS_TABLE} ({columns_ddl})"))?;
            self.staged_columns = Some(plan.partial_columns.clone());
        }
        let partial_rows = all_rows.len() as u64;
        // Row-wise inserts through the table API (bulk_load requires an
        // empty heap; after a reuse-DELETE the heap may hold tombstones).
        let staged: Vec<Row> = all_rows.into_iter().cloned().collect();
        self.mem.append_rows(PARTIALS_TABLE, staged)?;
        let mut output = self.mem.query(&plan.composition_sql)?;
        let composition_stats = output.stats;
        output.stats = ExecStats::default();
        Ok(Composed {
            output,
            composition_stats,
            partial_rows,
        })
    }
}

#[cfg(test)]
mod reusable_tests {
    use super::*;
    use crate::catalog::DataCatalog;
    use crate::rewrite::{Rewritten, SvpRewriter};
    use apuama_sql::Value;

    fn plan_for(sql: &str, n: usize) -> SvpPlan {
        match SvpRewriter::new(DataCatalog::tpch(100)).rewrite(sql, n).unwrap() {
            Rewritten::Svp(p) => p,
            _ => panic!("eligible"),
        }
    }

    fn partial(plan: &SvpPlan, rows: Vec<Row>) -> QueryOutput {
        QueryOutput {
            columns: plan.partial_columns.clone(),
            rows,
            ..QueryOutput::default()
        }
    }

    #[test]
    fn reusable_matches_one_shot_composer_across_repeats() {
        let plan = plan_for(
            "select o_orderpriority, count(*) as n from orders group by o_orderpriority \
             order by o_orderpriority",
            3,
        );
        let mut reusable = ReusableComposer::new();
        for round in 1..=3i64 {
            let partials: Vec<QueryOutput> = (0..3)
                .map(|node| {
                    partial(
                        &plan,
                        vec![vec![
                            Value::Str(format!("P{}", node % 2)),
                            Value::Int(round * (node + 1)),
                        ]],
                    )
                })
                .collect();
            let fresh = compose(&plan, &partials).unwrap();
            let reused = reusable.compose(&plan, &partials).unwrap();
            assert_eq!(reused.output.rows, fresh.output.rows, "round {round}");
            assert_eq!(reused.partial_rows, fresh.partial_rows);
        }
    }

    #[test]
    fn shape_change_rebuilds_cleanly() {
        let mut reusable = ReusableComposer::new();
        let p1 = plan_for("select count(*) as n from orders", 2);
        let r1 = reusable
            .compose(&p1, &[partial(&p1, vec![vec![Value::Int(3)]]),
                            partial(&p1, vec![vec![Value::Int(4)]])])
            .unwrap();
        assert_eq!(r1.output.rows, vec![vec![Value::Int(7)]]);
        // Different template: more columns.
        let p2 = plan_for("select min(o_totalprice) as lo, max(o_totalprice) as hi from orders", 2);
        let r2 = reusable
            .compose(
                &p2,
                &[
                    partial(&p2, vec![vec![Value::Float(1.0), Value::Float(9.0)]]),
                    partial(&p2, vec![vec![Value::Float(0.5), Value::Float(7.0)]]),
                ],
            )
            .unwrap();
        assert_eq!(r2.output.rows, vec![vec![Value::Float(0.5), Value::Float(9.0)]]);
        // And back to the first shape (forces another rebuild).
        let r3 = reusable
            .compose(&p1, &[partial(&p1, vec![vec![Value::Int(1)]]),
                            partial(&p1, vec![vec![Value::Int(1)]])])
            .unwrap();
        assert_eq!(r3.output.rows, vec![vec![Value::Int(2)]]);
    }

    #[test]
    fn leftover_rows_never_leak_between_queries() {
        let plan = plan_for("select sum(o_totalprice) as s from orders", 2);
        let mut reusable = ReusableComposer::new();
        let big = reusable
            .compose(
                &plan,
                &[
                    partial(&plan, vec![vec![Value::Float(100.0)]]),
                    partial(&plan, vec![vec![Value::Float(200.0)]]),
                ],
            )
            .unwrap();
        assert_eq!(big.output.rows, vec![vec![Value::Float(300.0)]]);
        let small = reusable
            .compose(
                &plan,
                &[
                    partial(&plan, vec![vec![Value::Float(1.0)]]),
                    partial(&plan, vec![vec![Value::Float(2.0)]]),
                ],
            )
            .unwrap();
        assert_eq!(small.output.rows, vec![vec![Value::Float(3.0)]]);
    }
}
