//! The replica-consistency protocol.
//!
//! Paper §3: "Apuama has a transaction counter for each node. When a query
//! must be processed with SVP, Apuama waits until a consistent state is
//! reached by all nodes. This happens when all transaction counters are
//! equal. If new update transactions arrive, they are blocked. Then,
//! Apuama starts executing SVP, dispatching all sub-queries to their
//! respective nodes. When all sub-queries are sent and started by the
//! DBMSs, update transactions are unblocked."
//!
//! The gate below implements exactly that, with one structural refinement
//! forced by the per-node driver seam: C-JDBC broadcasts one write to N
//! backends as N driver calls, so a broadcast can be *in flight* (applied
//! on some replicas, pending on others) when an SVP query arrives. New
//! broadcasts are blocked; in-flight ones are admitted to completion —
//! otherwise the counters could never converge and both sides would
//! deadlock. The C-JDBC scheduler serializes broadcasts, so at most one is
//! in flight at a time.

use std::collections::HashSet;

use parking_lot::{Condvar, Mutex};

/// Whether SVP queries synchronize with updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConsistencyMode {
    /// The paper's protocol: wait for convergence, block new updates until
    /// dispatch.
    #[default]
    Blocking,
    /// The paper's future-work direction (§7, after Refresco): SVP
    /// dispatches as soon as every pair of replicas is within `max_lag`
    /// committed transactions of each other, and updates are never
    /// blocked. `max_lag = 0` still waits for convergence but without
    /// blocking updates, so convergence may starve under a steady write
    /// stream — use `Blocking` for the paper's guarantee.
    BoundedStaleness {
        /// Largest tolerated spread between any two replicas' counters.
        max_lag: u64,
    },
    /// No synchronization at all: SVP proceeds immediately; results may mix
    /// replica states. Used by the ablation bench.
    Relaxed,
}

#[derive(Debug)]
struct GateState {
    /// Number of SVP queries currently holding updates blocked.
    blocks: u32,
    /// The one write broadcast currently in flight: its script and the set
    /// of node indices that have completed it.
    inflight: Option<(String, HashSet<usize>)>,
    /// Per-node committed write-transaction counters.
    counters: Vec<u64>,
    /// Nodes excluded from the protocol (disabled / catching up after a
    /// failure). An excluded node neither holds up convergence nor keeps a
    /// broadcast in flight — without this, one disabled replica would
    /// wedge every Blocking-mode write forever, since its begin/end calls
    /// never come. Its counter still tracks (catch-up replay bumps it) but
    /// carries no weight until the node is readmitted.
    excluded: Vec<bool>,
}

impl GateState {
    fn active_counters(&self) -> impl Iterator<Item = u64> + '_ {
        self.counters
            .iter()
            .zip(&self.excluded)
            .filter(|(_, &e)| !e)
            .map(|(&c, _)| c)
    }

    /// Equal counters over the non-excluded nodes (vacuously true when
    /// every node is excluded).
    fn converged(&self) -> bool {
        let mut it = self.active_counters();
        match it.next() {
            Some(first) => it.all(|c| c == first),
            None => true,
        }
    }

    /// Counter spread over the non-excluded nodes within `max_lag`.
    fn within_lag(&self, max_lag: u64) -> bool {
        let min = self.active_counters().min().unwrap_or(0);
        let max = self.active_counters().max().unwrap_or(0);
        max - min <= max_lag
    }

    /// Whether the in-flight broadcast has reached every non-excluded node.
    fn inflight_drained(&self) -> bool {
        match &self.inflight {
            Some((_, done)) => self
                .excluded
                .iter()
                .enumerate()
                .filter(|(_, &e)| !e)
                .all(|(i, _)| done.contains(&i)),
            None => true,
        }
    }
}

/// The update-blocking gate plus transaction counters.
#[derive(Debug)]
pub struct UpdateGate {
    state: Mutex<GateState>,
    changed: Condvar,
    mode: ConsistencyMode,
}

impl UpdateGate {
    pub fn new(nodes: usize, mode: ConsistencyMode) -> Self {
        assert!(nodes > 0);
        UpdateGate {
            state: Mutex::new(GateState {
                blocks: 0,
                inflight: None,
                counters: vec![0; nodes],
                excluded: vec![false; nodes],
            }),
            changed: Condvar::new(),
            mode,
        }
    }

    /// The configured mode.
    pub fn mode(&self) -> ConsistencyMode {
        self.mode
    }

    /// Snapshot of the per-node transaction counters.
    pub fn counters(&self) -> Vec<u64> {
        self.state.lock().counters.clone()
    }

    /// Excludes `node` from (or readmits it to) the consistency protocol.
    /// Excluding a node mid-broadcast re-evaluates the drain condition —
    /// the broadcast must not wait for a node that will never answer — and
    /// wakes every waiter, since convergence may hold now.
    pub fn set_excluded(&self, node: usize, excluded: bool) {
        let mut st = self.state.lock();
        st.excluded[node] = excluded;
        if st.inflight.is_some() && st.inflight_drained() {
            st.inflight = None;
        }
        drop(st);
        self.changed.notify_all();
    }

    /// Whether `node` is currently excluded from the protocol.
    pub fn is_excluded(&self, node: usize) -> bool {
        self.state.lock().excluded[node]
    }

    /// Overwrites `node`'s counter — the rejoin protocol seeds a caught-up
    /// replica to the cluster's value (see [`UpdateGate::active_max_counter`])
    /// before readmitting it, so convergence holds the moment it re-enters.
    pub fn seed_counter(&self, node: usize, value: u64) {
        let mut st = self.state.lock();
        st.counters[node] = value;
        drop(st);
        self.changed.notify_all();
    }

    /// Highest counter among the non-excluded nodes — the seed value for a
    /// rejoining replica. Call it with no broadcast in flight (e.g. under
    /// the write scheduler's token) for an exact value.
    pub fn active_max_counter(&self) -> u64 {
        self.state.lock().active_counters().max().unwrap_or(0)
    }

    /// Called before executing a write on `node`. Blocks while SVP holds
    /// the gate (Blocking mode only) — unless this call *continues* the
    /// broadcast already in flight, which must be allowed to finish.
    ///
    /// Writes on an excluded node bypass the gate entirely: they are
    /// catch-up replay traffic, invisible to SVP (which never reads from an
    /// excluded replica) and deliberately kept out of the in-flight
    /// tracking — an excluded node's single-replica write could otherwise
    /// never drain.
    pub fn begin_node_write(&self, node: usize, script: &str) {
        let mut st = self.state.lock();
        loop {
            if st.excluded[node] {
                return;
            }
            match &st.inflight {
                Some((s, done)) if s == script && !done.contains(&node) => {
                    // Continuation of the in-flight broadcast: admit.
                    return;
                }
                Some(_) => {
                    // A different broadcast is mid-flight; the scheduler
                    // normally prevents this — wait for it to drain.
                    self.changed.wait(&mut st);
                }
                None => {
                    if st.blocks > 0 && self.mode == ConsistencyMode::Blocking {
                        self.changed.wait(&mut st);
                    } else {
                        st.inflight = Some((script.to_string(), HashSet::new()));
                        return;
                    }
                }
            }
        }
    }

    /// Called after a write completed (successfully or not) on `node`. On
    /// an excluded node only the counter moves (replay progress); the
    /// in-flight bookkeeping belongs to the active nodes.
    pub fn end_node_write(&self, node: usize, script: &str, committed: bool) {
        let mut st = self.state.lock();
        if committed {
            st.counters[node] += 1;
        }
        if !st.excluded[node] {
            if let Some((s, done)) = &mut st.inflight {
                if s == script {
                    done.insert(node);
                }
            }
            if st.inflight.is_some() && st.inflight_drained() {
                st.inflight = None;
            }
        }
        drop(st);
        self.changed.notify_all();
    }

    /// SVP entry. In `Blocking` mode: blocks new updates, then waits until
    /// no broadcast is in flight and all counters are equal. In
    /// `BoundedStaleness` mode: waits (without blocking updates) until the
    /// counter spread is within the bound. In `Relaxed` mode: returns
    /// immediately.
    pub fn block_updates_and_wait(&self) {
        match self.mode {
            ConsistencyMode::Relaxed => {}
            ConsistencyMode::BoundedStaleness { max_lag } => {
                let mut st = self.state.lock();
                while !st.within_lag(max_lag) {
                    self.changed.wait(&mut st);
                }
            }
            ConsistencyMode::Blocking => {
                let mut st = self.state.lock();
                st.blocks += 1;
                while st.inflight.is_some() || !st.converged() {
                    self.changed.wait(&mut st);
                }
            }
        }
    }

    /// SVP dispatch complete: updates may flow again (Blocking mode only —
    /// the other modes never held them).
    pub fn release_updates(&self) {
        if self.mode != ConsistencyMode::Blocking {
            return;
        }
        let mut st = self.state.lock();
        debug_assert!(st.blocks > 0, "release without matching block");
        st.blocks = st.blocks.saturating_sub(1);
        drop(st);
        self.changed.notify_all();
    }

    /// True when replicas are converged (equal counters over the
    /// non-excluded nodes, nothing in flight).
    pub fn is_converged(&self) -> bool {
        let st = self.state.lock();
        st.inflight.is_none() && st.converged()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn broadcast_lifecycle_converges() {
        let g = UpdateGate::new(3, ConsistencyMode::Blocking);
        let script = "insert into t values (1)";
        for node in 0..3 {
            g.begin_node_write(node, script);
            g.end_node_write(node, script, true);
        }
        assert!(g.is_converged());
        assert_eq!(g.counters(), vec![1, 1, 1]);
    }

    #[test]
    fn inflight_broadcast_is_not_converged() {
        let g = UpdateGate::new(2, ConsistencyMode::Blocking);
        g.begin_node_write(0, "w");
        g.end_node_write(0, "w", true);
        assert!(!g.is_converged(), "counters diverge mid-broadcast");
        g.begin_node_write(1, "w");
        g.end_node_write(1, "w", true);
        assert!(g.is_converged());
    }

    #[test]
    fn svp_waits_for_inflight_broadcast() {
        let g = Arc::new(UpdateGate::new(2, ConsistencyMode::Blocking));
        g.begin_node_write(0, "w");
        g.end_node_write(0, "w", true);
        let g2 = Arc::clone(&g);
        let svp = std::thread::spawn(move || {
            g2.block_updates_and_wait();
            g2.release_updates();
        });
        std::thread::sleep(Duration::from_millis(50));
        assert!(!svp.is_finished(), "SVP must wait for the broadcast");
        g.begin_node_write(1, "w");
        g.end_node_write(1, "w", true);
        svp.join().unwrap();
    }

    #[test]
    fn new_update_blocks_while_svp_holds_gate() {
        let g = Arc::new(UpdateGate::new(1, ConsistencyMode::Blocking));
        g.block_updates_and_wait();
        let g2 = Arc::clone(&g);
        let writer = std::thread::spawn(move || {
            g2.begin_node_write(0, "w");
            g2.end_node_write(0, "w", true);
        });
        std::thread::sleep(Duration::from_millis(50));
        assert!(!writer.is_finished(), "new update must block");
        g.release_updates();
        writer.join().unwrap();
        assert_eq!(g.counters(), vec![1]);
    }

    #[test]
    fn inflight_broadcast_passes_closed_gate() {
        // The deadlock-avoidance refinement: a broadcast that already
        // started on node 0 must be admitted on node 1 even while SVP holds
        // the gate... but SVP cannot hold the gate while a broadcast is in
        // flight (it waits). So simulate the race the other way: gate
        // closes between node 0 and node 1 — impossible through the public
        // API because block_updates_and_wait waits for the drain. We assert
        // exactly that: the SVP call does not return early.
        let g = Arc::new(UpdateGate::new(2, ConsistencyMode::Blocking));
        g.begin_node_write(0, "w");
        g.end_node_write(0, "w", true);
        let g2 = Arc::clone(&g);
        let svp = std::thread::spawn(move || g2.block_updates_and_wait());
        std::thread::sleep(Duration::from_millis(30));
        // Broadcast continues despite the pending SVP block request.
        g.begin_node_write(1, "w");
        g.end_node_write(1, "w", true);
        svp.join().unwrap();
        g.release_updates();
    }

    #[test]
    fn relaxed_mode_never_blocks() {
        let g = UpdateGate::new(2, ConsistencyMode::Relaxed);
        g.block_updates_and_wait(); // returns immediately
        g.begin_node_write(0, "w"); // not blocked
        g.end_node_write(0, "w", true);
        g.release_updates();
        assert_eq!(g.counters(), vec![1, 0]);
    }

    #[test]
    fn failed_writes_do_not_bump_counters() {
        let g = UpdateGate::new(1, ConsistencyMode::Blocking);
        g.begin_node_write(0, "w");
        g.end_node_write(0, "w", false);
        assert_eq!(g.counters(), vec![0]);
        assert!(g.is_converged());
    }

    #[test]
    fn excluded_node_does_not_hold_up_convergence() {
        let g = UpdateGate::new(3, ConsistencyMode::Blocking);
        g.set_excluded(2, true);
        for node in 0..2 {
            g.begin_node_write(node, "w");
            g.end_node_write(node, "w", true);
        }
        // Node 2 never saw the write, yet the cluster is converged: the
        // protocol only counts active replicas.
        assert!(g.is_converged());
        assert_eq!(g.counters(), vec![1, 1, 0]);
    }

    #[test]
    fn excluding_a_node_mid_broadcast_drains_the_inflight_write() {
        let g = UpdateGate::new(2, ConsistencyMode::Blocking);
        g.begin_node_write(0, "w");
        g.end_node_write(0, "w", true);
        assert!(!g.is_converged(), "broadcast still in flight on node 1");
        // Node 1 dies: without exclusion this broadcast would never drain
        // and every Blocking-mode SVP query would wedge forever.
        g.set_excluded(1, true);
        assert!(g.is_converged());
    }

    #[test]
    fn excluded_replay_writes_bypass_a_closed_gate() {
        let g = Arc::new(UpdateGate::new(2, ConsistencyMode::Blocking));
        g.set_excluded(1, true);
        g.block_updates_and_wait(); // SVP holds the gate
                                    // Catch-up replay on the excluded node must not block and must not
                                    // register an in-flight broadcast.
        g.begin_node_write(1, "replay");
        g.end_node_write(1, "replay", true);
        assert_eq!(g.counters(), vec![0, 1]);
        g.release_updates();
        assert!(g.is_converged(), "replay left nothing in flight");
    }

    #[test]
    fn seed_and_readmit_restores_convergence() {
        let g = UpdateGate::new(2, ConsistencyMode::Blocking);
        g.set_excluded(1, true);
        for _ in 0..3 {
            g.begin_node_write(0, "w");
            g.end_node_write(0, "w", true);
        }
        assert_eq!(g.active_max_counter(), 3);
        // Rejoin: seed the recovered replica to the cluster's counter, then
        // readmit it — convergence must hold the moment it re-enters.
        g.seed_counter(1, g.active_max_counter());
        g.set_excluded(1, false);
        assert!(g.is_converged());
        assert_eq!(g.counters(), vec![3, 3]);
        assert!(!g.is_excluded(1));
    }
}

#[cfg(test)]
mod staleness_tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn bounded_staleness_never_blocks_writers() {
        let g = UpdateGate::new(2, ConsistencyMode::BoundedStaleness { max_lag: 3 });
        // A pending SVP "block" must not stop writers.
        g.begin_node_write(0, "w");
        g.end_node_write(0, "w", true);
        g.begin_node_write(1, "w");
        g.end_node_write(1, "w", true);
        assert_eq!(g.counters(), vec![1, 1]);
        g.block_updates_and_wait(); // spread 0 ≤ 3: immediate
        g.release_updates(); // no-op in this mode
    }

    #[test]
    fn bounded_staleness_admits_svp_within_lag() {
        let g = UpdateGate::new(2, ConsistencyMode::BoundedStaleness { max_lag: 2 });
        // Node 0 is two transactions ahead: spread = 2 ≤ 2 → admitted.
        g.begin_node_write(0, "w1");
        g.end_node_write(0, "w1", true);
        g.begin_node_write(1, "w1");
        g.end_node_write(1, "w1", true);
        g.begin_node_write(0, "w2");
        g.end_node_write(0, "w2", true);
        // w2 still in flight on node 1; spread is 1.
        g.block_updates_and_wait();
    }

    #[test]
    fn bounded_staleness_waits_beyond_lag() {
        let g = Arc::new(UpdateGate::new(
            2,
            ConsistencyMode::BoundedStaleness { max_lag: 0 },
        ));
        g.begin_node_write(0, "w");
        g.end_node_write(0, "w", true); // spread now 1 > 0
        let g2 = Arc::clone(&g);
        let svp = std::thread::spawn(move || g2.block_updates_and_wait());
        std::thread::sleep(Duration::from_millis(40));
        assert!(!svp.is_finished(), "spread 1 must hold the SVP query");
        g.begin_node_write(1, "w");
        g.end_node_write(1, "w", true); // spread back to 0
        svp.join().unwrap();
    }
}
