//! Ablation benches for the design choices DESIGN.md §5 calls out:
//!
//! 1. **SVP vs inter-query-only** — Apuama against the plain C-JDBC
//!    baseline (the paper's implicit comparator).
//! 2. **Optimizer interference** — `SET enable_seqscan = off` on/off; the
//!    paper (§3) claims SVP "can be severely hurt" without it.
//! 3. **Consistency cost** — read-only vs mixed workload at a fixed size.
//! 4. **SVP vs AVP** — static partitions vs adaptive chunks + stealing.
//! 5. **Load-balancer policy** — pass-through read balancing arms.
//! 6. **Composer strategy** — staged (HSQLDB-style staging table) vs the
//!    streaming composer that folds partials as they arrive.
//! 7. **Fault tolerance** — one node failing all of its SVP sub-queries;
//!    the failed range is detected, retried, and reassigned to a survivor.
//!    Answers must stay byte-identical; the table prices the slowdown.
//! 8. **Recovery & rejoin** — a node misses a write burst while down, the
//!    cluster runs degraded, then the recovery log replays the missed
//!    suffix (live rounds + a final drain under the write pause) and the
//!    node re-enters rotation. The table compares healthy, degraded, and
//!    post-rejoin makespans and prices the rejoin itself.
//! 9. **Resource governance under overload** — an open-loop arrival storm
//!    at ~4× the cluster's service rate, with and without admission
//!    control. Ungoverned, every query completes but the backlog (and the
//!    tail latency) grows with the storm; governed, excess arrivals are
//!    shed and the admitted queries keep their latency budget
//!    (DESIGN.md §11).
//!
//! Run with the same `APUAMA_*` environment knobs as the figure binaries.

use apuama_bench::{fmt_ms, fmt_ratio, FigureTable, HarnessConfig};
use apuama_sim::{
    price_rejoin, run_isolated, run_workload, SimCluster, SimClusterConfig, SimFault, WorkloadSpec,
};
use apuama_tpch::{QueryParams, TpchQuery};

fn main() {
    let cfg = HarnessConfig::from_env();
    eprintln!("ablation: SF={} seed={}", cfg.scale_factor, cfg.seed);
    let data = cfg.dataset();
    let n = *cfg.node_counts.iter().find(|&&n| n >= 4).unwrap_or(&4);
    let params = QueryParams::default();

    // -- 1. SVP vs inter-query-only baseline (isolated latency) -------------
    let mut t1 = FigureTable::new(
        format!("Ablation 1 — Apuama SVP vs plain C-JDBC, isolated queries, {n} nodes"),
        &["query", "svp", "baseline", "speedup"],
    );
    let svp_cluster = cfg.cluster(&data, n);
    let mut base_cfg = SimClusterConfig::paper(n);
    base_cfg.svp = false;
    let base_cluster = SimCluster::new(&data, base_cfg).expect("cluster builds");
    for q in apuama_tpch::ALL_QUERIES {
        svp_cluster.drop_caches();
        base_cluster.drop_caches();
        let sql = q.sql(&params);
        let svp = run_isolated(&svp_cluster, &sql, 5)
            .expect("svp run")
            .warm_mean_ms();
        let base = run_isolated(&base_cluster, &sql, 5)
            .expect("baseline run")
            .warm_mean_ms();
        t1.push_row(vec![
            q.label(),
            fmt_ms(svp),
            fmt_ms(base),
            fmt_ratio(base / svp),
        ]);
    }
    t1.print();
    t1.write_csv("ablation_svp_vs_baseline")
        .expect("csv writable");

    // -- 2. enable_seqscan interference ---------------------------------------
    // Three arms: (a) Apuama's interference (index forced); (b) optimizer
    // free choice — with this engine's exact histograms it coincides with
    // (a) for clustered ranges; (c) the failure mode the paper guards
    // against: the optimizer picks full table scans for the sub-queries
    // ("the virtual partition is ignored and the performance of SVP can be
    // severely hurt", §3) — forced here via `enable_indexscan = off`.
    let mut t2 = FigureTable::new(
        format!("Ablation 2 — optimizer interference around SVP sub-queries, {n} nodes"),
        &[
            "query",
            "index_forced",
            "free_choice",
            "full_scans",
            "fullscan/forced",
        ],
    );
    let mut noforce_cfg = SimClusterConfig::paper(n);
    noforce_cfg.force_index = false;
    let noforce_cluster = SimCluster::new(&data, noforce_cfg).expect("cluster builds");
    let fullscan_cluster = SimCluster::new(&data, noforce_cfg).expect("cluster builds");
    for i in 0..n {
        fullscan_cluster
            .node(i)
            .query("set enable_indexscan = off")
            .expect("set applies");
    }
    for q in [TpchQuery::Q1, TpchQuery::Q6, TpchQuery::Q12, TpchQuery::Q14] {
        svp_cluster.drop_caches();
        noforce_cluster.drop_caches();
        fullscan_cluster.drop_caches();
        let sql = q.sql(&params);
        let forced = run_isolated(&svp_cluster, &sql, 5)
            .expect("run")
            .warm_mean_ms();
        let unforced = run_isolated(&noforce_cluster, &sql, 5)
            .expect("run")
            .warm_mean_ms();
        let fullscan = run_isolated(&fullscan_cluster, &sql, 5)
            .expect("run")
            .warm_mean_ms();
        t2.push_row(vec![
            q.label(),
            fmt_ms(forced),
            fmt_ms(unforced),
            fmt_ms(fullscan),
            fmt_ratio(fullscan / forced),
        ]);
    }
    t2.print();
    t2.write_csv("ablation_force_index").expect("csv writable");

    // -- 3. consistency cost: read-only vs mixed ----------------------------
    let mut t3 = FigureTable::new(
        format!("Ablation 3 — update-stream cost at {n} nodes (3 read sequences)"),
        &["workload", "qpm", "makespan"],
    );
    let mut ro = cfg.cluster(&data, n);
    let r1 = run_workload(
        &mut ro,
        WorkloadSpec {
            read_streams: 3,
            rounds: 2,
            update_txns: 0,
            seed: cfg.seed,
        },
    )
    .expect("workload runs");
    t3.push_row(vec![
        "read-only".into(),
        format!("{:.2}", r1.throughput_qpm()),
        fmt_ms(r1.makespan_ms),
    ]);
    let mut mixed = cfg.cluster(&data, n);
    let r2 = run_workload(
        &mut mixed,
        WorkloadSpec {
            read_streams: 3,
            rounds: 2,
            update_txns: cfg.update_txns(),
            seed: cfg.seed,
        },
    )
    .expect("workload runs");
    t3.push_row(vec![
        format!("+{} update txns", cfg.update_txns()),
        format!("{:.2}", r2.throughput_qpm()),
        fmt_ms(r2.makespan_ms),
    ]);
    t3.print();
    t3.write_csv("ablation_consistency").expect("csv writable");

    svp_vs_avp(&cfg, &data, n);
    balancer_policies(&cfg, &data, n);
    composer_strategies(&cfg, &data, n);
    fault_tolerance(&cfg, &data, n);
    recovery_rejoin(&cfg, &data, n);
    overload_governance(&cfg, &data, n);
}

/// Ablation 4 — SVP's static partitions vs AVP's adaptive chunks with work
/// stealing (the paper's §6 comparison). Two scenarios:
///
/// * **uniform** nodes: SVP should win or tie — AVP pays per-chunk query
///   overhead and breaks long sequential scans (the paper's critique of
///   AVP's "bad memory cache use");
/// * **straggler**: one node 5× slower. SVP's makespan is pinned to the
///   straggler's full partition; AVP steals work around it.
fn svp_vs_avp(cfg: &HarnessConfig, data: &apuama_tpch::TpchData, n: usize) {
    use apuama::{execute_avp, AvpConfig, Rewritten};

    let mut t4 = FigureTable::new(
        format!("Ablation 4 — SVP vs AVP (adaptive chunks + work stealing), {n} nodes"),
        &["query", "scenario", "svp", "avp", "avp/svp"],
    );
    let params = QueryParams::default();
    let avp_cfg = AvpConfig::default();
    for q in [TpchQuery::Q1, TpchQuery::Q6] {
        let sql = q.sql(&params);
        for (scenario, slow_node_factor) in [("uniform", 1.0f64), ("straggler", 5.0)] {
            let cluster = cfg.cluster(data, n);
            let slowdown =
                |node: usize, ms: f64| if node == 0 { ms * slow_node_factor } else { ms };

            // SVP: one static sub-query per node; makespan = slowest node.
            cluster.drop_caches();
            let Rewritten::Svp(plan) = cluster.rewrite(&sql).expect("parses") else {
                panic!("{} must be eligible", q.label());
            };
            let mut svp_ms = 0.0f64;
            // Warm run (cold pass first, as in Fig. 2 methodology).
            for _ in 0..2 {
                svp_ms = 0.0;
                for (node, sub) in plan.subqueries.iter().enumerate() {
                    let (_, ms) = cluster.exec_subquery(node, sub).expect("subquery");
                    svp_ms = svp_ms.max(slowdown(node, ms));
                }
            }

            // AVP over the same replicas (cold again for fairness).
            cluster.drop_caches();
            let template = cluster.template(&sql).expect("parses").expect("eligible");
            let mut avp_ms = 0.0f64;
            for _ in 0..2 {
                let outcome = execute_avp(&template, n, avp_cfg, |node, sub| {
                    let (out, ms) = cluster.exec_subquery(node, sub)?;
                    Ok((out, slowdown(node, ms)))
                })
                .expect("avp run");
                avp_ms = outcome.makespan_cost;
            }

            t4.push_row(vec![
                q.label(),
                scenario.into(),
                fmt_ms(svp_ms),
                fmt_ms(avp_ms),
                fmt_ratio(avp_ms / svp_ms),
            ]);
        }
    }
    t4.print();
    t4.write_csv("ablation_svp_vs_avp").expect("csv writable");
}

/// Ablation 5 — read load-balancer policies on the inter-query-only
/// baseline (every query is a pass-through read, so the balancer is on the
/// critical path). The paper configures least-pending.
fn balancer_policies(cfg: &HarnessConfig, data: &apuama_tpch::TpchData, n: usize) {
    use apuama_sim::cluster::SimBalancer;

    let mut t5 = FigureTable::new(
        format!("Ablation 5 — load-balancer policy, inter-query baseline, {n} nodes"),
        &["policy", "qpm", "read_span"],
    );
    for (name, balancer) in [
        ("least-pending", SimBalancer::LeastPending),
        ("round-robin", SimBalancer::RoundRobin),
        ("random", SimBalancer::Random { seed: cfg.seed }),
    ] {
        let mut ccfg = SimClusterConfig::paper(n);
        ccfg.svp = false;
        ccfg.balancer = balancer;
        let mut cluster = SimCluster::new(data, ccfg).expect("cluster builds");
        let r = run_workload(
            &mut cluster,
            WorkloadSpec {
                read_streams: n.max(3),
                rounds: 1,
                update_txns: 0,
                seed: cfg.seed,
            },
        )
        .expect("workload runs");
        t5.push_row(vec![
            name.into(),
            format!("{:.2}", r.throughput_qpm()),
            fmt_ms(r.read_span_ms()),
        ]);
    }
    t5.print();
    t5.write_csv("ablation_balancer_policy")
        .expect("csv writable");
}

/// Ablation 6 — staged vs streaming result composition over all eight
/// evaluation queries and two node profiles. The same partial results are
/// priced through both strategies, so the comparison isolates the
/// composition timeline; the final rows are asserted byte-identical, which
/// is the correctness contract the streaming composer maintains.
fn composer_strategies(_cfg: &HarnessConfig, data: &apuama_tpch::TpchData, n: usize) {
    use apuama::{ComposerStrategy, Rewritten};

    let mut t6 = FigureTable::new(
        format!("Ablation 6 — staged vs streaming result composition, {n} nodes"),
        &[
            "query",
            "profile",
            "staged",
            "streaming",
            "streaming/staged",
        ],
    );
    let params = QueryParams::default();
    let mut staged_cfg = SimClusterConfig::paper(n);
    staged_cfg.composer = ComposerStrategy::Staged;
    let staged_cluster = SimCluster::new(data, staged_cfg).expect("cluster builds");
    let mut streaming_cfg = SimClusterConfig::paper(n);
    streaming_cfg.composer = ComposerStrategy::Streaming;
    let streaming_cluster = SimCluster::new(data, streaming_cfg).expect("cluster builds");
    for q in apuama_tpch::ALL_QUERIES {
        let sql = q.sql(&params);
        let Rewritten::Svp(plan) = staged_cluster.rewrite(&sql).expect("parses") else {
            panic!("{} must be eligible", q.label());
        };
        // One execution of the sub-queries; both strategies then price the
        // identical partial set.
        staged_cluster.drop_caches();
        let mut partials = Vec::with_capacity(n);
        let mut durs = Vec::with_capacity(n);
        for (node, sub) in plan.subqueries.iter().enumerate() {
            let (out, ms) = staged_cluster.exec_subquery(node, sub).expect("subquery");
            partials.push(out);
            durs.push(ms);
        }
        for (profile, factor) in [("uniform", 1.0f64), ("straggler", 5.0)] {
            let mut finish = durs.clone();
            finish[0] *= factor;
            let staged = staged_cluster
                .compose_timed(&plan, &partials, &finish)
                .expect("staged compose");
            let streaming = streaming_cluster
                .compose_timed(&plan, &partials, &finish)
                .expect("streaming compose");
            assert_eq!(
                staged.output.rows,
                streaming.output.rows,
                "{} {profile}: strategies must agree byte-for-byte",
                q.label()
            );
            assert!(
                streaming.done_ms <= staged.done_ms,
                "{} {profile}: streaming {}ms must not lose to staged {}ms",
                q.label(),
                streaming.done_ms,
                staged.done_ms
            );
            t6.push_row(vec![
                q.label(),
                profile.into(),
                fmt_ms(staged.done_ms),
                fmt_ms(streaming.done_ms),
                fmt_ratio(streaming.done_ms / staged.done_ms),
            ]);
        }
    }
    t6.print();
    t6.write_csv("ablation_composer_strategy")
        .expect("csv writable");
}

/// Ablation 7 — degraded-mode SVP: node 0 fails every sub-query it is
/// handed, the failure is detected after the configured retries, and the
/// orphaned VPA range is re-executed on the least-loaded survivor. The
/// answer must not change — only the makespan may. The ratio column is the
/// price of losing one node mid-query.
fn fault_tolerance(_cfg: &HarnessConfig, data: &apuama_tpch::TpchData, n: usize) {
    let mut t7 = FigureTable::new(
        format!("Ablation 7 — fault tolerance: node 0 dead mid-query, {n} nodes"),
        &["query", "healthy", "degraded", "degraded/healthy"],
    );
    let params = QueryParams::default();
    let healthy = SimCluster::new(data, SimClusterConfig::paper(n)).expect("cluster builds");
    let mut degraded_cfg = SimClusterConfig::paper(n);
    degraded_cfg.fault = Some(SimFault {
        node: 0,
        detect_ms: 50.0,
        retries: 1,
    });
    let degraded = SimCluster::new(data, degraded_cfg).expect("cluster builds");
    for q in apuama_tpch::ALL_QUERIES {
        let sql = q.sql(&params);
        healthy.drop_caches();
        degraded.drop_caches();
        let h = healthy.run_query_isolated(&sql).expect("healthy run");
        let d = degraded.run_query_isolated(&sql).expect("degraded run");
        assert_eq!(
            h.output.rows,
            d.output.rows,
            "{}: degraded mode must stay byte-identical",
            q.label()
        );
        assert!(
            d.makespan_ms >= h.makespan_ms,
            "{}: reassignment cannot be free (healthy {}ms, degraded {}ms)",
            q.label(),
            h.makespan_ms,
            d.makespan_ms
        );
        t7.push_row(vec![
            q.label(),
            fmt_ms(h.makespan_ms),
            fmt_ms(d.makespan_ms),
            fmt_ratio(d.makespan_ms / h.makespan_ms),
        ]);
    }
    t7.print();
    t7.write_csv("ablation_fault_tolerance")
        .expect("csv writable");
}

/// Ablation 8 — recovery & rejoin: node 0 is down while a refresh burst
/// lands on the survivors, the cluster answers queries degraded (node 0's
/// ranges reassigned), then the missed suffix is replayed — live rounds
/// first, the tail under the write pause — and node 0 re-enters rotation.
/// Answers must stay byte-identical through all three arms; the makespan
/// columns price running one node short, and the replay cost line prices
/// the rejoin itself.
fn recovery_rejoin(_cfg: &HarnessConfig, data: &apuama_tpch::TpchData, n: usize) {
    let mut t8 = FigureTable::new(
        format!("Ablation 8 — recovery & rejoin: node 0 down for a write burst, {n} nodes"),
        &[
            "query",
            "healthy",
            "degraded",
            "rejoined",
            "degraded/healthy",
        ],
    );
    let params = QueryParams::default();
    let mut healthy = SimCluster::new(data, SimClusterConfig::paper(n)).expect("cluster builds");
    let mut degraded = SimCluster::new(data, SimClusterConfig::paper(n)).expect("cluster builds");

    // The same refresh burst lands on both clusters — on every healthy
    // replica, but only on the survivors of the degraded one. These are the
    // scripts the recovery log would retain for node 0.
    let burst = 16i64;
    let key = healthy.reserve_refresh_keys(burst);
    degraded.reserve_refresh_keys(burst);
    let scripts: Vec<String> = (0..burst)
        .map(|i| {
            format!(
                "insert into orders values ({}, 1, 'O', 1.0, date '1995-01-01', \
                 '1-URGENT', 'c', 0, 'x')",
                key + i
            )
        })
        .collect();
    for s in &scripts {
        healthy.broadcast_write(s).expect("healthy broadcast");
        for node in 1..n {
            degraded.exec_write(node, s).expect("survivor write");
        }
    }
    degraded.set_fault(Some(SimFault {
        node: 0,
        detect_ms: 50.0,
        retries: 1,
    }));

    let mut degraded_runs = Vec::new();
    for q in apuama_tpch::ALL_QUERIES {
        let sql = q.sql(&params);
        healthy.drop_caches();
        degraded.drop_caches();
        let h = healthy.run_query_isolated(&sql).expect("healthy run");
        let d = degraded.run_query_isolated(&sql).expect("degraded run");
        assert_eq!(
            h.output.rows,
            d.output.rows,
            "{}: degraded answers must stay byte-identical",
            q.label()
        );
        degraded_runs.push((q, h, d));
    }

    // Rejoin: replay the whole missed suffix onto node 0, charging the
    // final catch-up batch to the write pause, then lift the fault.
    let cost = price_rejoin(&mut degraded, 0, &scripts, 4).expect("rejoin replays");
    degraded.set_fault(None);

    for (q, h, d) in degraded_runs {
        let sql = q.sql(&params);
        degraded.drop_caches();
        let r = degraded.run_query_isolated(&sql).expect("rejoined run");
        assert_eq!(
            h.output.rows,
            r.output.rows,
            "{}: post-rejoin answers must stay byte-identical",
            q.label()
        );
        assert!(
            r.makespan_ms <= d.makespan_ms,
            "{}: rejoining cannot be slower than degraded ({}ms vs {}ms)",
            q.label(),
            r.makespan_ms,
            d.makespan_ms
        );
        t8.push_row(vec![
            q.label(),
            fmt_ms(h.makespan_ms),
            fmt_ms(d.makespan_ms),
            fmt_ms(r.makespan_ms),
            fmt_ratio(d.makespan_ms / h.makespan_ms),
        ]);
    }
    t8.print();
    println!(
        "rejoin replay: {} scripts, live {} + pause {} = {} total",
        cost.replayed,
        fmt_ms(cost.live_ms),
        fmt_ms(cost.pause_ms),
        fmt_ms(cost.total_ms())
    );
    t8.write_csv("ablation_recovery_rejoin")
        .expect("csv writable");
}

/// Ablation 9 — admission control under an open-loop arrival storm
/// (DESIGN.md §11). Arrivals land at ~4× the cluster's isolated service
/// rate; the governed arm admits at most `2 × servers_per_node` queries
/// with a short bounded queue and sheds the rest. The claim being priced:
/// shedding excess load keeps the *admitted* queries' tail latency near
/// the unloaded baseline, while the ungoverned arm completes everything
/// only by letting every query's latency absorb the whole backlog.
fn overload_governance(cfg: &HarnessConfig, data: &apuama_tpch::TpchData, n: usize) {
    use apuama_sim::{run_overload, OverloadGovernance, OverloadSpec};

    let cluster = cfg.cluster(data, n);

    // Calibrate the storm: mean warm isolated latency over the eight
    // queries approximates the service time of one SVP query (which
    // occupies the whole cluster).
    let params = QueryParams::default();
    let mut mean_ms = 0.0;
    for q in apuama_tpch::ALL_QUERIES {
        cluster.drop_caches();
        mean_ms += run_isolated(&cluster, &q.sql(&params), 3)
            .expect("calibration run")
            .warm_mean_ms();
    }
    mean_ms /= apuama_tpch::ALL_QUERIES.len() as f64;

    let mut t9 = FigureTable::new(
        format!("Ablation 9 — admission control under a 4x open-loop storm, {n} nodes"),
        &[
            "arm",
            "submitted",
            "completed",
            "shed",
            "peak_backlog",
            "median",
            "p99",
            "makespan",
        ],
    );
    let storm = |governance| OverloadSpec {
        arrivals: 64,
        interval_ms: mean_ms / 4.0,
        seed: cfg.seed,
        governance,
    };
    let governance = OverloadGovernance {
        max_concurrent: 2 * cluster.config().servers_per_node,
        queue_depth: 8,
        queue_timeout_ms: mean_ms * 4.0,
    };
    let ungoverned = run_overload(&cluster, storm(None)).expect("ungoverned storm");
    let governed = run_overload(&cluster, storm(Some(governance))).expect("governed storm");
    for (name, r) in [("ungoverned", &ungoverned), ("governed", &governed)] {
        t9.push_row(vec![
            name.into(),
            r.submitted.to_string(),
            r.completed.to_string(),
            r.shed.to_string(),
            r.peak_backlog.to_string(),
            fmt_ms(r.median_ms()),
            fmt_ms(r.p99_ms()),
            fmt_ms(r.makespan_ms),
        ]);
    }
    assert_eq!(
        governed.completed + governed.shed,
        governed.submitted,
        "every arrival must be accounted for"
    );
    assert!(
        governed.p99_ms() < ungoverned.p99_ms(),
        "governed p99 {:.0}ms must beat ungoverned {:.0}ms",
        governed.p99_ms(),
        ungoverned.p99_ms()
    );
    t9.print();
    t9.write_csv("ablation_overload_governance")
        .expect("csv writable");
}
