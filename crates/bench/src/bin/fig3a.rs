//! Figure 3(a) — throughput (queries per minute) of three concurrent
//! read-only query sequences, versus the linear-scaling reference.
//!
//! Paper §5: "the throughput rises super-linearly. With 2 nodes, it is
//! near linear. With 4 nodes, the throughput is almost 2 times higher than
//! if a linear gain was obtained. From 8 to 32 nodes, the throughput is
//! constantly about 6 times higher than linear gain."

use apuama_bench::{fmt_ratio, FigureTable, HarnessConfig};
use apuama_sim::{run_workload, WorkloadSpec};

fn main() {
    let cfg = HarnessConfig::from_env();
    eprintln!(
        "fig3a: SF={} nodes={:?} seed={}",
        cfg.scale_factor, cfg.node_counts, cfg.seed
    );
    let data = cfg.dataset();
    let spec = |seed| WorkloadSpec {
        read_streams: 3,
        rounds: 2,
        update_txns: 0,
        seed,
    };

    let mut table = FigureTable::new(
        "Fig. 3(a) — throughput, 3 concurrent read-only sequences (queries/min)",
        &["nodes", "qpm", "linear_qpm", "vs_linear"],
    );
    let mut base_qpm = None;
    let base_nodes = cfg.node_counts[0] as f64;
    for &n in &cfg.node_counts {
        let mut cluster = cfg.cluster(&data, n);
        let report = run_workload(&mut cluster, spec(cfg.seed)).expect("workload runs");
        let qpm = report.throughput_qpm();
        let base = *base_qpm.get_or_insert(qpm);
        let linear = base * n as f64 / base_nodes;
        eprintln!(
            "  n={n}: {} queries in {:.1}s -> {qpm:.2} qpm",
            report.read_queries_done,
            report.makespan_ms / 1000.0
        );
        table.push_row(vec![
            n.to_string(),
            format!("{qpm:.2}"),
            format!("{linear:.2}"),
            fmt_ratio(qpm / linear),
        ]);
    }
    table.print();
    let csv = table.write_csv("fig3a_throughput").expect("csv writable");
    eprintln!("wrote {}", csv.display());
}
