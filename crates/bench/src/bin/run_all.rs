//! Runs every figure harness in sequence (fig2, fig3a, fig3b, fig4a,
//! fig4b, ablation) in this process, honouring the same `APUAMA_*`
//! environment knobs. Useful for producing the full EXPERIMENTS.md data in
//! one command:
//!
//! ```text
//! cargo run --release -p apuama-bench --bin run_all
//! ```

use std::process::Command;

fn main() {
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    for bin in ["fig2", "fig3a", "fig3b", "fig4a", "fig4b", "ablation"] {
        let path = dir.join(bin);
        eprintln!("\n########## {bin} ##########");
        let status = Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", path.display()));
        assert!(status.success(), "{bin} exited with {status}");
    }
    eprintln!("\nall figures regenerated; CSVs under target/figures/");
}
