//! Figure 4(b) — mixed-workload scale-up: n read-only sequences plus one
//! update sequence, on n nodes.
//!
//! Paper §5: "There is a performance gain up to 16 nodes. However, for 32
//! nodes, the performance is almost the same as with 4 nodes. This is due
//! to the replica synchronization when using a large number of nodes."

use apuama_bench::{fmt_ms, fmt_ratio, FigureTable, HarnessConfig};
use apuama_sim::{run_workload, WorkloadSpec};

fn main() {
    let cfg = HarnessConfig::from_env();
    let txns = cfg.update_txns();
    eprintln!(
        "fig4b: SF={} nodes={:?} seed={} update_txns={txns}",
        cfg.scale_factor, cfg.node_counts, cfg.seed
    );
    let data = cfg.dataset();

    let mut table = FigureTable::new(
        "Fig. 4(b) — scale-up: n read-only sequences + 1 update sequence on n nodes",
        &["nodes", "sequences", "time", "linear_time", "linear/actual"],
    );
    let mut base_ms = None;
    for &n in &cfg.node_counts {
        let mut cluster = cfg.cluster(&data, n);
        let report = run_workload(
            &mut cluster,
            WorkloadSpec {
                read_streams: n,
                rounds: 1,
                update_txns: txns,
                seed: cfg.seed,
            },
        )
        .expect("workload runs");
        let ms = report.read_span_ms();
        let base = *base_ms.get_or_insert(ms);
        eprintln!(
            "  n={n}: {} reads + {} updates in {:.1}s",
            report.read_queries_done,
            report.updates_done,
            ms / 1000.0
        );
        table.push_row(vec![
            n.to_string(),
            n.to_string(),
            fmt_ms(ms),
            fmt_ms(base),
            fmt_ratio(base / ms),
        ]);
    }
    table.print();
    let csv = table
        .write_csv("fig4b_mixed_scaleup")
        .expect("csv writable");
    eprintln!("wrote {}", csv.display());
}
