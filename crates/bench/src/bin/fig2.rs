//! Figure 2 — speedup experiments: normalized execution time of each
//! evaluation query, isolated, for 1–32 nodes.
//!
//! Paper methodology (§5): each (query, cluster size) runs five times; the
//! metric is the mean of the last four (warm) runs, normalized by the
//! one-node time. The paper reports ~50% at 2 nodes for every query,
//! super-linear drops for the highly selective Q4/Q6 once the virtual
//! partition fits in node memory, and near-linear scaling for the
//! CPU-bound Q1/Q21.

use apuama_bench::{fmt_ratio, FigureTable, HarnessConfig};
use apuama_sim::run_isolated;
use apuama_tpch::{QueryParams, ALL_QUERIES};

fn main() {
    let cfg = HarnessConfig::from_env();
    eprintln!(
        "fig2: SF={} nodes={:?} seed={}",
        cfg.scale_factor, cfg.node_counts, cfg.seed
    );
    let data = cfg.dataset();
    let params = QueryParams::default();

    // times[qi][ni] = warm-mean latency.
    let mut times = vec![vec![0.0f64; cfg.node_counts.len()]; ALL_QUERIES.len()];
    for (ni, &n) in cfg.node_counts.iter().enumerate() {
        let cluster = cfg.cluster(&data, n);
        for (qi, q) in ALL_QUERIES.iter().enumerate() {
            cluster.drop_caches();
            let report = run_isolated(&cluster, &q.sql(&params), 5)
                .unwrap_or_else(|e| panic!("{} on {n} nodes failed: {e}", q.label()));
            times[qi][ni] = report.warm_mean_ms();
            eprintln!(
                "  {} n={n}: cold={:.1}ms warm={:.1}ms",
                q.label(),
                report.cold_ms(),
                report.warm_mean_ms()
            );
        }
    }

    // Normalized table (1.0 at the first configuration), as the paper
    // plots it, plus the ideal-linear reference.
    let mut header: Vec<&str> = vec!["nodes", "linear"];
    let labels: Vec<String> = ALL_QUERIES.iter().map(|q| q.label()).collect();
    header.extend(labels.iter().map(String::as_str));
    let mut table = FigureTable::new(
        "Fig. 2 — normalized query execution time (isolated queries)",
        &header,
    );
    let base_nodes = cfg.node_counts[0] as f64;
    for (ni, &n) in cfg.node_counts.iter().enumerate() {
        let mut row = vec![n.to_string(), fmt_ratio(base_nodes / n as f64)];
        for qt in &times {
            row.push(fmt_ratio(qt[ni] / qt[0]));
        }
        table.push_row(row);
    }
    table.print();
    let csv = table.write_csv("fig2_speedup").expect("csv writable");
    eprintln!("wrote {}", csv.display());

    // Absolute times for reference.
    let mut abs = FigureTable::new("Fig. 2 — absolute warm-mean latency (ms)", &header);
    for (ni, &n) in cfg.node_counts.iter().enumerate() {
        let mut row = vec![n.to_string(), String::from("-")];
        for qt in &times {
            row.push(format!("{:.1}", qt[ni]));
        }
        abs.push_row(row);
    }
    abs.print();
    abs.write_csv("fig2_absolute").expect("csv writable");
}
