//! Figure 4(a) — mixed workload throughput: three read-only sequences plus
//! one update sequence.
//!
//! Paper §5: "From 2 to 8 nodes, performance of Apuama is near linear. For
//! 16 and 32 nodes, the consistency protocol makes the update propagation
//! delay hurt performance. There is almost no performance gain from 16 to
//! 32 nodes."

use apuama_bench::{fmt_ratio, FigureTable, HarnessConfig};
use apuama_sim::{run_workload, WorkloadSpec};

fn main() {
    let cfg = HarnessConfig::from_env();
    let txns = cfg.update_txns();
    eprintln!(
        "fig4a: SF={} nodes={:?} seed={} update_txns={txns}",
        cfg.scale_factor, cfg.node_counts, cfg.seed
    );
    let data = cfg.dataset();

    let mut table = FigureTable::new(
        "Fig. 4(a) — throughput, 3 read-only sequences + 1 update sequence (queries/min)",
        &["nodes", "qpm", "updates", "linear_qpm", "vs_linear"],
    );
    let mut base_qpm = None;
    let base_nodes = cfg.node_counts[0] as f64;
    for &n in &cfg.node_counts {
        let mut cluster = cfg.cluster(&data, n);
        let report = run_workload(
            &mut cluster,
            WorkloadSpec {
                read_streams: 3,
                rounds: 2,
                update_txns: txns,
                seed: cfg.seed,
            },
        )
        .expect("workload runs");
        let qpm = report.throughput_qpm();
        let base = *base_qpm.get_or_insert(qpm);
        let linear = base * n as f64 / base_nodes;
        eprintln!(
            "  n={n}: {} reads + {} updates in {:.1}s -> {qpm:.2} qpm",
            report.read_queries_done,
            report.updates_done,
            report.makespan_ms / 1000.0
        );
        table.push_row(vec![
            n.to_string(),
            format!("{qpm:.2}"),
            report.updates_done.to_string(),
            format!("{linear:.2}"),
            fmt_ratio(qpm / linear),
        ]);
    }
    table.print();
    let csv = table
        .write_csv("fig4a_mixed_throughput")
        .expect("csv writable");
    eprintln!("wrote {}", csv.display());
}
