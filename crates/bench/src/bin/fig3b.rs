//! Figure 3(b) — scale-up: total execution time with n concurrent
//! read-only sequences on n nodes.
//!
//! Paper §5: "the ideal situation is that the execution time would be the
//! same for all cluster configurations, as the Linear curve shows. [...]
//! From 8 to 32 nodes, the performance is always about 3 times better than
//! expected."

use apuama_bench::{fmt_ms, fmt_ratio, FigureTable, HarnessConfig};
use apuama_sim::{run_workload, WorkloadSpec};

fn main() {
    let cfg = HarnessConfig::from_env();
    eprintln!(
        "fig3b: SF={} nodes={:?} seed={}",
        cfg.scale_factor, cfg.node_counts, cfg.seed
    );
    let data = cfg.dataset();

    let mut table = FigureTable::new(
        "Fig. 3(b) — scale-up: time for n read-only sequences on n nodes",
        &["nodes", "sequences", "time", "linear_time", "linear/actual"],
    );
    let mut base_ms = None;
    for &n in &cfg.node_counts {
        let mut cluster = cfg.cluster(&data, n);
        let report = run_workload(
            &mut cluster,
            WorkloadSpec {
                read_streams: n,
                rounds: 1,
                update_txns: 0,
                seed: cfg.seed,
            },
        )
        .expect("workload runs");
        let ms = report.read_span_ms();
        let base = *base_ms.get_or_insert(ms);
        eprintln!(
            "  n={n}: {} queries in {:.1}s",
            report.read_queries_done,
            ms / 1000.0
        );
        table.push_row(vec![
            n.to_string(),
            n.to_string(),
            fmt_ms(ms),
            fmt_ms(base),
            fmt_ratio(base / ms),
        ]);
    }
    table.print();
    let csv = table.write_csv("fig3b_scaleup").expect("csv writable");
    eprintln!("wrote {}", csv.display());
}
