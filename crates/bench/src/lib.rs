//! Shared harness for the figure-reproduction binaries.
//!
//! Every binary sweeps cluster sizes, runs the paper's workload through the
//! simulator, and prints the series the corresponding figure plots (plus a
//! CSV under `target/figures/` for replotting). Environment knobs:
//!
//! * `APUAMA_SF` — TPC-H scale factor (default 0.01). The paper uses SF 5
//!   on 32 physical nodes; the default keeps a full five-figure run under
//!   a few minutes on a laptop while preserving every shape (see
//!   DESIGN.md §2 on why the RAM:database ratio, not the absolute size, is
//!   what matters).
//! * `APUAMA_NODES` — comma-separated node counts (default `1,2,4,8,16,32`).
//! * `APUAMA_SEED` — generator/parameter seed (default 42).
//! * `APUAMA_MODE` — `svp` (default) or `avp`: which intra-query execution
//!   strategy isolated-query figures use (Fig. 2 under AVP shows the
//!   chunking overhead and is the full-sweep companion of ablation 4).

use std::io::Write as _;

use apuama_sim::{SimCluster, SimClusterConfig};
use apuama_tpch::{generate, TpchConfig, TpchData};

/// Harness configuration resolved from the environment.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    pub scale_factor: f64,
    pub node_counts: Vec<usize>,
    pub seed: u64,
    /// Use AVP instead of SVP for isolated-query experiments.
    pub avp: bool,
}

impl HarnessConfig {
    /// Reads `APUAMA_SF`, `APUAMA_NODES`, `APUAMA_SEED`.
    pub fn from_env() -> HarnessConfig {
        let scale_factor = std::env::var("APUAMA_SF")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.01);
        let node_counts = std::env::var("APUAMA_NODES")
            .ok()
            .map(|v| {
                v.split(',')
                    .filter_map(|s| s.trim().parse().ok())
                    .collect::<Vec<usize>>()
            })
            .filter(|v| !v.is_empty())
            .unwrap_or_else(|| vec![1, 2, 4, 8, 16, 32]);
        let seed = std::env::var("APUAMA_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(42);
        let avp = std::env::var("APUAMA_MODE")
            .map(|v| v.eq_ignore_ascii_case("avp"))
            .unwrap_or(false);
        HarnessConfig {
            scale_factor,
            node_counts,
            seed,
            avp,
        }
    }

    /// Generates the dataset once (it is cloned into each cluster).
    pub fn dataset(&self) -> TpchData {
        generate(TpchConfig {
            scale_factor: self.scale_factor,
            seed: self.seed,
        })
    }

    /// Builds a paper-configured cluster of `n` nodes over `data`,
    /// honouring `APUAMA_MODE`.
    pub fn cluster(&self, data: &TpchData, n: usize) -> SimCluster {
        let mut cfg = SimClusterConfig::paper(n);
        if self.avp {
            cfg.avp = Some(apuama::AvpConfig::default());
        }
        SimCluster::new(data, cfg).expect("replica loading cannot fail on generated data")
    }

    /// Refresh-transaction count for the mixed-workload figures: the
    /// paper's 52,500 transactions were for SF 5; scale proportionally,
    /// keep it even (insert half + delete half) and at least 20.
    pub fn update_txns(&self) -> usize {
        let scaled = 52_500.0 * self.scale_factor / 5.0;
        ((scaled as usize).max(20) / 2) * 2
    }
}

/// A result table: header plus rows, printed aligned and mirrored to CSV.
pub struct FigureTable {
    pub title: String,
    pub columns: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl FigureTable {
    pub fn new(title: impl Into<String>, columns: &[&str]) -> FigureTable {
        FigureTable {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len());
        self.rows.push(cells);
    }

    /// Prints the aligned table to stdout.
    pub fn print(&self) {
        println!("\n== {} ==", self.title);
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                s.push_str(&format!("{:>width$}  ", c, width = widths[i]));
            }
            s
        };
        println!("{}", line(&self.columns));
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            println!("{}", line(row));
        }
    }

    /// Writes `target/figures/<name>.csv`.
    pub fn write_csv(&self, name: &str) -> std::io::Result<std::path::PathBuf> {
        let dir = std::path::Path::new("target/figures");
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut f = std::fs::File::create(&path)?;
        writeln!(f, "{}", self.columns.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(path)
    }
}

/// Formats a millisecond value compactly.
pub fn fmt_ms(ms: f64) -> String {
    if ms >= 10_000.0 {
        format!("{:.1}s", ms / 1000.0)
    } else {
        format!("{ms:.1}ms")
    }
}

/// Formats a ratio with two decimals.
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults() {
        // Note: relies on the vars being unset in the test environment.
        let c = HarnessConfig {
            scale_factor: 0.01,
            node_counts: vec![1, 2, 4],
            seed: 42,
            avp: false,
        };
        assert_eq!(c.update_txns(), 104);
    }

    #[test]
    fn table_roundtrip() {
        let mut t = FigureTable::new("t", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        t.print();
        let p = t.write_csv("test_table").unwrap();
        let s = std::fs::read_to_string(p).unwrap();
        assert_eq!(s, "a,b\n1,2\n");
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt_ms(1234.5), "1234.5ms");
        assert_eq!(fmt_ms(22_000.0), "22.0s");
        assert_eq!(fmt_ratio(1.234), "1.23");
    }
}
