//! Morsel-driven intra-node parallelism arms: what the third parallelism
//! tier buys on one node.
//!
//! Two statement shapes over the same 20 k-row lineitem-style table, each
//! timed serial (`parallel_workers = 1`) and parallel (`parallel_workers =
//! max(2, cores)`):
//!
//! * `fused` — the Q1-style scan→filter→aggregate statement on the fusion
//!   kernel's fast path; parallel mode runs one partial-aggregate pipeline
//!   per morsel and merges per-morsel group tables.
//! * `scan` — a selective filter + sort; parallel mode splits the scan
//!   into page-aligned morsels and chunk-sorts on the worker pool.
//!
//! Runs as a plain binary (`harness = false`), prints one line per arm,
//! and writes `BENCH_parallel.json` at the workspace root for CI's
//! `parallel_pipeline` step. The recorded `cores` count lets the perf gate
//! skip the speedup assertion on single-core machines, where the morsel
//! coordinator can only add overhead.

use std::time::Instant;

use apuama_engine::Database;
use apuama_sql::Value;

const ROWS: i64 = 20_000;

const FUSED: &str = "select l_returnflag, sum(l_quantity) as s, avg(l_extendedprice) as a, \
     count(*) as n from lineitem where l_orderkey >= $1 and l_orderkey < $2 \
     and l_quantity > $3 group by l_returnflag order by l_returnflag";

const SCAN: &str = "select l_orderkey, l_extendedprice from lineitem \
     where l_quantity > $1 order by l_extendedprice, l_orderkey limit 100";

fn lineitem() -> Database {
    let mut db = Database::in_memory();
    db.execute(
        "create table lineitem (l_orderkey int not null, l_quantity int, \
         l_extendedprice float, l_returnflag text, primary key (l_orderkey)) \
         clustered by (l_orderkey)",
    )
    .unwrap();
    let rows: Vec<Vec<Value>> = (0..ROWS)
        .map(|i| {
            vec![
                Value::Int(i),
                Value::Int(i % 50),
                Value::Float((i % 97) as f64 * 1.25),
                Value::Str(format!("F{}", i % 3)),
            ]
        })
        .collect();
    db.load_table("lineitem", rows).unwrap();
    db
}

/// Mean microseconds per execution over `iters` runs of `f` (after
/// `warmup` untimed runs).
fn time_us(warmup: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..warmup {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() * 1e6 / iters as f64
}

fn main() {
    let iters: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(400);
    let iters = (iters / 8).max(10);
    let warmup = (iters / 10).max(1);

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let workers = cores.max(2);

    let db = lineitem();
    db.query("set enable_kernel = on").unwrap();
    let fused_params = [Value::Int(0), Value::Int(ROWS), Value::Int(5)];
    let scan_params = [Value::Int(40)];
    db.prepare(FUSED).unwrap();
    db.prepare(SCAN).unwrap();

    // Sanity first: both modes must answer identically before either is
    // worth timing (quantities and 1.25-step prices are exact in f64).
    db.query("set parallel_workers = 1").unwrap();
    let want_fused = db.query_bound(FUSED, &fused_params).unwrap();
    let want_scan = db.query_bound(SCAN, &scan_params).unwrap();
    db.query(&format!("set parallel_workers = {workers}"))
        .unwrap();
    assert_eq!(
        db.query_bound(FUSED, &fused_params).unwrap().rows,
        want_fused.rows
    );
    assert_eq!(
        db.query_bound(SCAN, &scan_params).unwrap().rows,
        want_scan.rows
    );

    // -- fused aggregate arm ----------------------------------------------
    db.query("set parallel_workers = 1").unwrap();
    let fused_serial_us = time_us(warmup, iters, || {
        db.query_bound(FUSED, &fused_params).unwrap();
    });
    db.query(&format!("set parallel_workers = {workers}"))
        .unwrap();
    let fused_parallel_us = time_us(warmup, iters, || {
        db.query_bound(FUSED, &fused_params).unwrap();
    });

    // -- scan + sort arm ---------------------------------------------------
    db.query("set parallel_workers = 1").unwrap();
    let scan_serial_us = time_us(warmup, iters, || {
        db.query_bound(SCAN, &scan_params).unwrap();
    });
    db.query(&format!("set parallel_workers = {workers}"))
        .unwrap();
    let scan_parallel_us = time_us(warmup, iters, || {
        db.query_bound(SCAN, &scan_params).unwrap();
    });

    let speedup = fused_serial_us / fused_parallel_us;
    let scan_speedup = scan_serial_us / scan_parallel_us;
    println!(
        "bench parallel_pipeline: fused serial {fused_serial_us:.1} µs/exec, \
         parallel ×{workers} {fused_parallel_us:.1} µs/exec ({speedup:.2}x) on {cores} core(s)"
    );
    println!(
        "bench parallel_pipeline: scan serial {scan_serial_us:.1} µs/exec, \
         parallel ×{workers} {scan_parallel_us:.1} µs/exec ({scan_speedup:.2}x)"
    );

    // -- report ------------------------------------------------------------
    let json = format!(
        "{{\n  \"cores\": {cores},\n  \
         \"workers\": {workers},\n  \
         \"serial_us_per_exec\": {fused_serial_us:.2},\n  \
         \"parallel_us_per_exec\": {fused_parallel_us:.2},\n  \
         \"parallel_speedup_vs_serial\": {speedup:.3},\n  \
         \"scan_serial_us_per_exec\": {scan_serial_us:.2},\n  \
         \"scan_parallel_us_per_exec\": {scan_parallel_us:.2},\n  \
         \"scan_parallel_speedup_vs_serial\": {scan_speedup:.3}\n}}\n"
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_parallel.json");
    std::fs::write(&out, &json).unwrap();
    println!("wrote {}", out.display());
}
