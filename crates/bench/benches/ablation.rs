//! Criterion ablations of the design knobs (DESIGN.md §5): optimizer
//! interference, SVP vs baseline, consistency-mode gate overhead, and
//! load-balancer policy cost.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use apuama::{ConsistencyMode, UpdateGate};
use apuama_cjdbc::{LeastPendingBalancer, LoadBalancer, RandomBalancer, RoundRobinBalancer};
use apuama_sim::{run_isolated, SimCluster, SimClusterConfig};
use apuama_tpch::{generate, QueryParams, TpchConfig, TpchQuery};

const SF: f64 = 0.002;

fn dataset() -> apuama_tpch::TpchData {
    generate(TpchConfig {
        scale_factor: SF,
        seed: 42,
    })
}

/// SVP on vs off (plain inter-query baseline), isolated Q1 at 4 nodes.
fn svp_vs_baseline(c: &mut Criterion) {
    let data = dataset();
    let sql = TpchQuery::Q1.sql(&QueryParams::default());
    let mut group = c.benchmark_group("ablation_svp");
    group.sample_size(10);
    let svp = SimCluster::new(&data, SimClusterConfig::paper(4)).unwrap();
    group.bench_function("svp_on", |b| {
        b.iter(|| run_isolated(black_box(&svp), &sql, 2).unwrap())
    });
    let mut cfg = SimClusterConfig::paper(4);
    cfg.svp = false;
    let base = SimCluster::new(&data, cfg).unwrap();
    group.bench_function("svp_off", |b| {
        b.iter(|| run_isolated(black_box(&base), &sql, 2).unwrap())
    });
    group.finish();
}

/// `SET enable_seqscan = off` interference on vs off.
fn force_index(c: &mut Criterion) {
    let data = dataset();
    let sql = TpchQuery::Q6.sql(&QueryParams::default());
    let mut group = c.benchmark_group("ablation_force_index");
    group.sample_size(10);
    let forced = SimCluster::new(&data, SimClusterConfig::paper(4)).unwrap();
    group.bench_function("forced", |b| {
        b.iter(|| run_isolated(black_box(&forced), &sql, 2).unwrap())
    });
    let mut cfg = SimClusterConfig::paper(4);
    cfg.force_index = false;
    let unforced = SimCluster::new(&data, cfg).unwrap();
    group.bench_function("unforced", |b| {
        b.iter(|| run_isolated(black_box(&unforced), &sql, 2).unwrap())
    });
    group.finish();
}

/// Raw overhead of the consistency gate per write, blocking vs relaxed.
fn gate_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_gate");
    for (name, mode) in [
        ("blocking", ConsistencyMode::Blocking),
        ("relaxed", ConsistencyMode::Relaxed),
    ] {
        group.bench_function(name, |b| {
            let gate = UpdateGate::new(4, mode);
            b.iter(|| {
                for node in 0..4 {
                    gate.begin_node_write(node, "w");
                    gate.end_node_write(node, "w", true);
                }
            })
        });
    }
    group.finish();
}

/// Load-balancer decision cost.
fn balancer_cost(c: &mut Criterion) {
    let pending = vec![3usize, 1, 4, 1, 5, 9, 2, 6];
    let mut group = c.benchmark_group("ablation_balancer");
    let lp = LeastPendingBalancer;
    group.bench_function("least_pending", |b| {
        b.iter(|| lp.choose(black_box(&pending)))
    });
    let rr = RoundRobinBalancer::default();
    group.bench_function("round_robin", |b| b.iter(|| rr.choose(black_box(&pending))));
    let rnd = RandomBalancer::new(7);
    group.bench_function("random", |b| b.iter(|| rnd.choose(black_box(&pending))));
    group.finish();
}

criterion_group!(
    ablations,
    svp_vs_baseline,
    force_index,
    gate_overhead,
    balancer_cost
);

// Appended: composer strategy ablation (DESIGN.md §5, candidate 4).
mod composer_ablation {
    use super::*;
    use apuama::{
        compose, Composer, DataCatalog, ReusableComposer, Rewritten, StreamingComposer, SvpRewriter,
    };

    pub fn composer_strategies(c: &mut Criterion) {
        let rewriter = SvpRewriter::new(DataCatalog::tpch(1_000_000));
        let Rewritten::Svp(plan) = rewriter
            .rewrite(
                "select o_orderpriority, count(*) as n, sum(o_totalprice) as t \
                 from orders group by o_orderpriority order by o_orderpriority",
                16,
            )
            .unwrap()
        else {
            panic!()
        };
        let partial = apuama_engine::QueryOutput {
            columns: plan.partial_columns.clone(),
            rows: (0..5)
                .map(|i| {
                    vec![
                        apuama_sql::Value::Str(format!("{i}-PRIORITY")),
                        apuama_sql::Value::Int(10 + i),
                        apuama_sql::Value::Float(100.0 * i as f64),
                    ]
                })
                .collect(),
            ..Default::default()
        };
        let partials: Vec<_> = (0..16).map(|_| partial.clone()).collect();

        let mut group = c.benchmark_group("ablation_composer");
        group.bench_function("fresh_engine_per_query", |b| {
            b.iter(|| compose(black_box(&plan), &partials).unwrap())
        });
        group.bench_function("pooled_staging_table", |b| {
            let mut pooled = ReusableComposer::new();
            // Prime once so the steady state (schema reuse) is measured.
            pooled.compose(&plan, &partials).unwrap();
            b.iter(|| pooled.compose(black_box(&plan), &partials).unwrap())
        });
        group.bench_function("streaming_fold", |b| {
            let mut composer = StreamingComposer::new();
            // Prime once: steady state reuses the residual-statement pool.
            drive(&mut composer, &plan, &partials);
            b.iter(|| drive(black_box(&mut composer), &plan, &partials))
        });
        group.finish();
    }

    fn drive(
        composer: &mut StreamingComposer,
        plan: &apuama::SvpPlan,
        partials: &[apuama_engine::QueryOutput],
    ) -> apuama::Composed {
        composer.begin(plan).unwrap();
        for (i, p) in partials.iter().enumerate() {
            composer.accept(i, p.clone()).unwrap();
        }
        composer.finish().unwrap()
    }
}

criterion_group!(composer, composer_ablation::composer_strategies);

criterion_main!(ablations, composer);
