//! Prepared-plan micro-arms: what the plan cache and the fused kernel buy.
//!
//! Two arms, each a direct A/B on one node:
//!
//! * `prepared_vs_text` — the SVP dispatcher's eval-query shape (narrow
//!   range slice of a Q1-style aggregate) executed by re-sending rendered
//!   text versus prepare-once + bind-per-execution. Text pays lex, parse,
//!   and planning on every execution; the bound path pays them once.
//! * `kernel_vs_interpreted` — the same bound statement over the whole
//!   table with the fused scan→filter→aggregate kernel on versus off.
//!
//! Runs as a plain binary (`harness = false`), prints one line per arm,
//! and writes `BENCH_prepared.json` at the workspace root for CI's
//! `bench_smoke` step.

use std::time::Instant;

use apuama_engine::Database;
use apuama_sql::Value;

const ROWS: i64 = 20_000;
const SLICE: i64 = 128;

const Q1ISH: &str = "select l_returnflag, sum(l_quantity) as s, avg(l_extendedprice) as a, \
     count(*) as n from lineitem where l_orderkey >= $1 and l_orderkey < $2 \
     group by l_returnflag order by l_returnflag";

fn lineitem() -> Database {
    let mut db = Database::in_memory();
    db.execute(
        "create table lineitem (l_orderkey int not null, l_quantity int, \
         l_extendedprice float, l_returnflag text, primary key (l_orderkey)) \
         clustered by (l_orderkey)",
    )
    .unwrap();
    let rows: Vec<Vec<Value>> = (0..ROWS)
        .map(|i| {
            vec![
                Value::Int(i),
                Value::Int(i % 50),
                Value::Float((i % 97) as f64 * 1.25),
                Value::Str(format!("F{}", i % 3)),
            ]
        })
        .collect();
    db.load_table("lineitem", rows).unwrap();
    db
}

/// Mean microseconds per execution over `iters` runs of `f` (after
/// `warmup` untimed runs).
fn time_us(warmup: usize, iters: usize, mut f: impl FnMut(usize)) -> f64 {
    for i in 0..warmup {
        f(i);
    }
    let start = Instant::now();
    for i in 0..iters {
        f(warmup + i);
    }
    start.elapsed().as_secs_f64() * 1e6 / iters as f64
}

fn slice_bounds(i: usize) -> (i64, i64) {
    let lo = (i as i64 * SLICE) % (ROWS - SLICE);
    (lo, lo + SLICE)
}

fn main() {
    let iters: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(400);

    // -- arm 1: prepared_vs_text ------------------------------------------
    let db = lineitem();
    let text_us = time_us(iters / 10, iters, |i| {
        let (lo, hi) = slice_bounds(i);
        // What a text-only driver sends: render literals, then the engine
        // lexes, parses, and plans the statement before running it.
        let sql = Q1ISH
            .replace("$1", &lo.to_string())
            .replace("$2", &hi.to_string());
        db.query(&sql).unwrap();
    });
    db.prepare(Q1ISH).unwrap();
    let prepared_us = time_us(iters / 10, iters, |i| {
        let (lo, hi) = slice_bounds(i);
        db.query_bound(Q1ISH, &[Value::Int(lo), Value::Int(hi)])
            .unwrap();
    });
    let prepared_speedup = text_us / prepared_us;
    println!(
        "bench prepared_vs_text: text {text_us:.1} µs/exec, \
         prepared {prepared_us:.1} µs/exec, speedup {prepared_speedup:.2}x"
    );

    // -- arm 2: kernel_vs_interpreted -------------------------------------
    let db = lineitem();
    let scan_iters = (iters / 8).max(10);
    let params = [Value::Int(0), Value::Int(ROWS)];
    let kernel_us = time_us(scan_iters / 10, scan_iters, |_| {
        db.query_bound(Q1ISH, &params).unwrap();
    });
    db.query("set enable_kernel = off").unwrap();
    let interpreted_us = time_us(scan_iters / 10, scan_iters, |_| {
        db.query_bound(Q1ISH, &params).unwrap();
    });
    let kernel_speedup = interpreted_us / kernel_us;
    println!(
        "bench kernel_vs_interpreted: interpreted {interpreted_us:.1} µs/exec, \
         kernel {kernel_us:.1} µs/exec, speedup {kernel_speedup:.2}x"
    );

    // -- report ------------------------------------------------------------
    // Recorded so CI's perf gates can tell a timing regression from
    // single-core scheduling noise and skip (with a reason) accordingly.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"cores\": {cores},\n  \
         \"text_us_per_exec\": {text_us:.2},\n  \
         \"prepared_us_per_exec\": {prepared_us:.2},\n  \
         \"prepared_speedup\": {prepared_speedup:.3},\n  \
         \"interpreted_us_per_exec\": {interpreted_us:.2},\n  \
         \"kernel_us_per_exec\": {kernel_us:.2},\n  \
         \"kernel_speedup\": {kernel_speedup:.3}\n}}\n"
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_prepared.json");
    std::fs::write(&out, &json).unwrap();
    println!("wrote {}", out.display());
}
