//! Scaled-down Criterion versions of the paper's figures — one benchmark
//! group per figure, small enough for `cargo bench` to finish quickly. The
//! full sweeps (all node counts, paper workload sizes) live in the `fig2`…
//! `fig4b` binaries; see EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use apuama_sim::{run_isolated, run_workload, SimCluster, SimClusterConfig, WorkloadSpec};
use apuama_tpch::{generate, QueryParams, TpchConfig, TpchQuery};

const SF: f64 = 0.002;

fn dataset() -> apuama_tpch::TpchData {
    generate(TpchConfig {
        scale_factor: SF,
        seed: 42,
    })
}

/// Fig. 2 kernel: isolated Q6 latency at 1 vs 4 nodes.
fn fig2_kernel(c: &mut Criterion) {
    let data = dataset();
    let sql = TpchQuery::Q6.sql(&QueryParams::default());
    let mut group = c.benchmark_group("fig2_isolated_q6");
    group.sample_size(10);
    for nodes in [1usize, 4] {
        let cluster = SimCluster::new(&data, SimClusterConfig::paper(nodes)).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, _| {
            b.iter(|| run_isolated(black_box(&cluster), &sql, 2).unwrap())
        });
    }
    group.finish();
}

/// Fig. 3(a) kernel: 3 read streams, one round.
fn fig3a_kernel(c: &mut Criterion) {
    let data = dataset();
    let mut group = c.benchmark_group("fig3a_throughput");
    group.sample_size(10);
    for nodes in [1usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, &n| {
            b.iter(|| {
                let mut cluster = SimCluster::new(&data, SimClusterConfig::paper(n)).unwrap();
                run_workload(
                    &mut cluster,
                    WorkloadSpec {
                        read_streams: 3,
                        rounds: 1,
                        update_txns: 0,
                        seed: 1,
                    },
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

/// Fig. 3(b) kernel: n streams on n nodes.
fn fig3b_kernel(c: &mut Criterion) {
    let data = dataset();
    let mut group = c.benchmark_group("fig3b_scaleup");
    group.sample_size(10);
    for nodes in [1usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, &n| {
            b.iter(|| {
                let mut cluster = SimCluster::new(&data, SimClusterConfig::paper(n)).unwrap();
                run_workload(
                    &mut cluster,
                    WorkloadSpec {
                        read_streams: n,
                        rounds: 1,
                        update_txns: 0,
                        seed: 1,
                    },
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

/// Fig. 4(a)/4(b) kernel: mixed read + update workload.
fn fig4_kernel(c: &mut Criterion) {
    let data = dataset();
    let mut group = c.benchmark_group("fig4_mixed");
    group.sample_size(10);
    for nodes in [2usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, &n| {
            b.iter(|| {
                let mut cluster = SimCluster::new(&data, SimClusterConfig::paper(n)).unwrap();
                run_workload(
                    &mut cluster,
                    WorkloadSpec {
                        read_streams: 3,
                        rounds: 1,
                        update_txns: 10,
                        seed: 1,
                    },
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(
    figures,
    fig2_kernel,
    fig3a_kernel,
    fig3b_kernel,
    fig4_kernel
);
criterion_main!(figures);
