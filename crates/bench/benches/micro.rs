//! Component micro-benchmarks: the building blocks whose costs the paper's
//! architecture assumes are cheap (rewriting, composition) or dominant
//! (scans, probes).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use apuama::{compose, DataCatalog, Rewritten, SvpRewriter};
use apuama_engine::Database;
use apuama_sql::parse_statement;
use apuama_storage::{AccessKind, BufferPool, PageKey};
use apuama_tpch::{generate, load_into, QueryParams, TpchConfig, TpchQuery};

fn bench_parser(c: &mut Criterion) {
    let params = QueryParams::default();
    let q1 = TpchQuery::Q1.sql(&params);
    let q21 = TpchQuery::Q21.sql(&params);
    c.bench_function("parse_q1", |b| {
        b.iter(|| parse_statement(black_box(&q1)).unwrap())
    });
    c.bench_function("parse_q21_subqueries", |b| {
        b.iter(|| parse_statement(black_box(&q21)).unwrap())
    });
}

fn bench_rewriter(c: &mut Criterion) {
    let rewriter = SvpRewriter::new(DataCatalog::tpch(6_000_000));
    let params = QueryParams::default();
    let q1 = TpchQuery::Q1.sql(&params);
    let q21 = TpchQuery::Q21.sql(&params);
    c.bench_function("svp_rewrite_q1_32_nodes", |b| {
        b.iter(|| rewriter.rewrite(black_box(&q1), 32).unwrap())
    });
    c.bench_function("svp_rewrite_q21_32_nodes", |b| {
        b.iter(|| rewriter.rewrite(black_box(&q21), 32).unwrap())
    });
}

fn bench_buffer_pool(c: &mut Criterion) {
    c.bench_function("buffer_pool_hit", |b| {
        let mut pool = BufferPool::new(1024);
        for p in 0..1024u64 {
            pool.access(PageKey { table: 0, page: p }, AccessKind::Sequential);
        }
        let mut p = 0u64;
        b.iter(|| {
            p = (p + 1) % 1024;
            black_box(pool.access(PageKey { table: 0, page: p }, AccessKind::Sequential))
        })
    });
    c.bench_function("buffer_pool_thrash", |b| {
        let mut pool = BufferPool::new(64);
        let mut p = 0u64;
        b.iter(|| {
            p += 1;
            black_box(pool.access(PageKey { table: 0, page: p }, AccessKind::Sequential))
        })
    });
}

fn bench_engine_query(c: &mut Criterion) {
    let mut db = Database::in_memory();
    let data = generate(TpchConfig {
        scale_factor: 0.001,
        seed: 1,
    });
    load_into(&mut db, &data).unwrap();
    let params = QueryParams::default();
    let q6 = TpchQuery::Q6.sql(&params);
    let q3 = TpchQuery::Q3.sql(&params);
    c.bench_function("engine_q6_sf0.001", |b| {
        b.iter(|| db.query(black_box(&q6)).unwrap())
    });
    c.bench_function("engine_q3_join_sf0.001", |b| {
        b.iter(|| db.query(black_box(&q3)).unwrap())
    });
}

fn bench_composer(c: &mut Criterion) {
    // Compose 32 partial results of a grouped aggregate.
    let rewriter = SvpRewriter::new(DataCatalog::tpch(1_000_000));
    let Rewritten::Svp(plan) = rewriter
        .rewrite(
            "select o_orderpriority, count(*) as n, sum(o_totalprice) as t \
             from orders group by o_orderpriority order by o_orderpriority",
            32,
        )
        .unwrap()
    else {
        panic!()
    };
    let partial = apuama_engine::QueryOutput {
        columns: plan.partial_columns.clone(),
        rows: (0..5)
            .map(|i| {
                vec![
                    apuama_sql::Value::Str(format!("{i}-PRIORITY")),
                    apuama_sql::Value::Int(100 + i),
                    apuama_sql::Value::Float(1000.0 * i as f64),
                ]
            })
            .collect(),
        ..Default::default()
    };
    let partials: Vec<_> = (0..32).map(|_| partial.clone()).collect();
    c.bench_function("compose_32_partials", |b| {
        b.iter_batched(
            || partials.clone(),
            |p| compose(black_box(&plan), &p).unwrap(),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_parser,
    bench_rewriter,
    bench_buffer_pool,
    bench_engine_query,
    bench_composer
);
criterion_main!(benches);
