//! Operator-pipeline micro-arms: what the unified physical pipeline costs
//! and what the fusion rewrite buys on its supported shape.
//!
//! Three arms over the same Q1-style scan→filter→aggregate statement on
//! one node:
//!
//! * `interpreter_seed` — the seed's text path: every execution re-lexes,
//!   re-parses, and re-lowers before running the general operator tree
//!   (fusion off, `enable_batch_exec` off). This is the historical
//!   row-at-a-time interpreter's cost profile, preserved verbatim behind
//!   the knob.
//! * `unified_pipeline` — the same statement prepared once and executed
//!   through the cached general operator tree (fusion off,
//!   `enable_batch_exec` on): the compiled batch-at-a-time pipeline alone.
//! * `fused_rule` — the cached plan with `enable_kernel` on, so lowering
//!   applied the scan→filter→aggregate fusion rewrite.
//!
//! Runs as a plain binary (`harness = false`), prints one line per arm,
//! and writes `BENCH_operators.json` at the workspace root for CI's
//! `bench_smoke` step.

use std::time::Instant;

use apuama_engine::Database;
use apuama_sql::Value;

const ROWS: i64 = 20_000;

const Q1ISH: &str = "select l_returnflag, sum(l_quantity) as s, avg(l_extendedprice) as a, \
     count(*) as n from lineitem where l_orderkey >= $1 and l_orderkey < $2 \
     and l_quantity > $3 group by l_returnflag order by l_returnflag";

fn lineitem() -> Database {
    let mut db = Database::in_memory();
    db.execute(
        "create table lineitem (l_orderkey int not null, l_quantity int, \
         l_extendedprice float, l_returnflag text, primary key (l_orderkey)) \
         clustered by (l_orderkey)",
    )
    .unwrap();
    let rows: Vec<Vec<Value>> = (0..ROWS)
        .map(|i| {
            vec![
                Value::Int(i),
                Value::Int(i % 50),
                Value::Float((i % 97) as f64 * 1.25),
                Value::Str(format!("F{}", i % 3)),
            ]
        })
        .collect();
    db.load_table("lineitem", rows).unwrap();
    db
}

/// Mean microseconds per execution over `iters` runs of `f` (after
/// `warmup` untimed runs).
fn time_us(warmup: usize, iters: usize, mut f: impl FnMut(usize)) -> f64 {
    for i in 0..warmup {
        f(i);
    }
    let start = Instant::now();
    for i in 0..iters {
        f(warmup + i);
    }
    start.elapsed().as_secs_f64() * 1e6 / iters as f64
}

fn main() {
    let iters: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(400);
    // Full-table aggregation is the heavy arm; keep iteration counts sane.
    let scan_iters = (iters / 8).max(10);
    let warmup = (scan_iters / 10).max(1);
    let params = [Value::Int(0), Value::Int(ROWS), Value::Int(5)];
    let text = Q1ISH
        .replace("$1", "0")
        .replace("$2", &ROWS.to_string())
        .replace("$3", "5");

    // Recorded so CI's perf gates can tell a timing regression from
    // single-core scheduling noise and skip (with a reason) accordingly.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let db = lineitem();

    // -- arm 1: interpreter_seed (text, fusion off, legacy row-at-a-time
    //    execution — the seed's cost profile) -------------------------------
    db.query("set enable_kernel = off").unwrap();
    db.query("set enable_batch_exec = off").unwrap();
    let interpreter_us = time_us(warmup, scan_iters, |_| {
        db.query(&text).unwrap();
    });

    // -- arm 2: unified_pipeline (bound, fusion off, compiled batch exec) --
    db.query("set enable_batch_exec = on").unwrap();
    db.prepare(Q1ISH).unwrap();
    let pipeline_us = time_us(warmup, scan_iters, |_| {
        db.query_bound(Q1ISH, &params).unwrap();
    });

    // -- arm 3: fused_rule (bound, fusion rewrite applied) -----------------
    db.query("set enable_kernel = on").unwrap();
    let fused_us = time_us(warmup, scan_iters, |_| {
        db.query_bound(Q1ISH, &params).unwrap();
    });

    let pipeline_speedup = interpreter_us / pipeline_us;
    let fused_speedup = pipeline_us / fused_us;
    println!(
        "bench operator_pipeline: interpreter-seed {interpreter_us:.1} µs/exec, \
         unified-pipeline {pipeline_us:.1} µs/exec, fused-rule {fused_us:.1} µs/exec"
    );
    println!(
        "bench operator_pipeline: pipeline vs seed {pipeline_speedup:.2}x, \
         fusion rewrite vs pipeline {fused_speedup:.2}x"
    );

    // -- report ------------------------------------------------------------
    let json = format!(
        "{{\n  \"cores\": {cores},\n  \
         \"interpreter_seed_us_per_exec\": {interpreter_us:.2},\n  \
         \"unified_pipeline_us_per_exec\": {pipeline_us:.2},\n  \
         \"fused_rule_us_per_exec\": {fused_us:.2},\n  \
         \"pipeline_speedup_vs_seed\": {pipeline_speedup:.3},\n  \
         \"fused_speedup_vs_pipeline\": {fused_speedup:.3}\n}}\n"
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_operators.json");
    std::fs::write(&out, &json).unwrap();
    println!("wrote {}", out.display());
}
