//! Columnar-pipeline arms: what transposing scan batches into typed
//! column vectors (DESIGN.md §13) buys on the fused
//! scan→filter→aggregate shape.
//!
//! Three arms over the same Q1-style statement on one node, all prepared
//! once and executed through the cached plan:
//!
//! * `row_pipeline` — the general batch-at-a-time operator tree (fusion
//!   off, `enable_batch_exec` on, columnar irrelevant): the row-batch
//!   pipeline baseline the columnar fold is gated against.
//! * `fused_row` — the fusion rewrite with `enable_columnar = off`: the
//!   scalar row loop inside the kernel, for visibility into how much of
//!   the win is fusion vs vectorization.
//! * `columnar` — the fusion rewrite with `enable_columnar = on` (the
//!   default): predicate and aggregate loops over typed column vectors
//!   under a selection vector.
//!
//! Runs as a plain binary (`harness = false`), prints one line per arm,
//! and writes `BENCH_columnar.json` at the workspace root for CI's
//! `columnar_pipeline` step. The recorded `cores` count lets the perf
//! gate skip the speedup assertion on single-core machines, where one
//! noisy scheduler tick swamps a microsecond-scale arm.

use std::time::Instant;

use apuama_engine::Database;
use apuama_sql::Value;

const ROWS: i64 = 20_000;

const Q1ISH: &str = "select l_returnflag, sum(l_quantity) as s, avg(l_extendedprice) as a, \
     count(*) as n from lineitem where l_orderkey >= $1 and l_orderkey < $2 \
     and l_quantity > $3 group by l_returnflag order by l_returnflag";

fn lineitem() -> Database {
    let mut db = Database::in_memory();
    db.execute(
        "create table lineitem (l_orderkey int not null, l_quantity int, \
         l_extendedprice float, l_returnflag text, primary key (l_orderkey)) \
         clustered by (l_orderkey)",
    )
    .unwrap();
    let rows: Vec<Vec<Value>> = (0..ROWS)
        .map(|i| {
            vec![
                Value::Int(i),
                Value::Int(i % 50),
                Value::Float((i % 97) as f64 * 1.25),
                Value::Str(format!("F{}", i % 3)),
            ]
        })
        .collect();
    db.load_table("lineitem", rows).unwrap();
    db
}

/// Mean microseconds per execution over `iters` runs of `f` (after
/// `warmup` untimed runs).
fn time_us(warmup: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..warmup {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() * 1e6 / iters as f64
}

fn main() {
    let iters: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(400);
    let iters = (iters / 8).max(10);
    let warmup = (iters / 10).max(1);

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let db = lineitem();
    let params = [Value::Int(0), Value::Int(ROWS), Value::Int(5)];
    db.query("set enable_batch_exec = on").unwrap();
    db.prepare(Q1ISH).unwrap();

    // Sanity first: all three modes must answer identically before any is
    // worth timing (quantities and 1.25-step prices are exact in f64).
    db.query("set enable_kernel = off").unwrap();
    let want = db.query_bound(Q1ISH, &params).unwrap();
    db.query("set enable_kernel = on").unwrap();
    db.query("set enable_columnar = off").unwrap();
    assert_eq!(db.query_bound(Q1ISH, &params).unwrap().rows, want.rows);
    db.query("set enable_columnar = on").unwrap();
    assert_eq!(db.query_bound(Q1ISH, &params).unwrap().rows, want.rows);

    // -- arm 1: row_pipeline (fusion off, batch exec on) -------------------
    db.query("set enable_kernel = off").unwrap();
    let row_us = time_us(warmup, iters, || {
        db.query_bound(Q1ISH, &params).unwrap();
    });

    // -- arm 2: fused_row (fusion on, columnar off) ------------------------
    db.query("set enable_kernel = on").unwrap();
    db.query("set enable_columnar = off").unwrap();
    let fused_row_us = time_us(warmup, iters, || {
        db.query_bound(Q1ISH, &params).unwrap();
    });

    // -- arm 3: columnar (fusion on, columnar on — the default) ------------
    db.query("set enable_columnar = on").unwrap();
    let columnar_us = time_us(warmup, iters, || {
        db.query_bound(Q1ISH, &params).unwrap();
    });

    let columnar_speedup = row_us / columnar_us;
    let vectorization_speedup = fused_row_us / columnar_us;
    println!(
        "bench columnar_pipeline: row-pipeline {row_us:.1} µs/exec, \
         fused-row {fused_row_us:.1} µs/exec, columnar {columnar_us:.1} µs/exec \
         on {cores} core(s)"
    );
    println!(
        "bench columnar_pipeline: columnar vs row pipeline {columnar_speedup:.2}x, \
         vectorization vs fused-row {vectorization_speedup:.2}x"
    );

    // -- report ------------------------------------------------------------
    let json = format!(
        "{{\n  \"cores\": {cores},\n  \
         \"row_pipeline_us_per_exec\": {row_us:.2},\n  \
         \"fused_row_us_per_exec\": {fused_row_us:.2},\n  \
         \"columnar_us_per_exec\": {columnar_us:.2},\n  \
         \"columnar_speedup_vs_row_pipeline\": {columnar_speedup:.3},\n  \
         \"columnar_speedup_vs_fused_row\": {vectorization_speedup:.3}\n}}\n"
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_columnar.json");
    std::fs::write(&out, &json).unwrap();
    println!("wrote {}", out.display());
}
