//! Property: for ASTs generated from the full expression grammar,
//! `Display` output re-parses to a tree that renders identically —
//! the invariant the SVP rewriter stakes correctness on (it rewrites
//! trees and ships rendered text to backends).

use proptest::prelude::*;

use apuama_sql::ast::{BinOp, ColumnRef, Expr, OrderByItem, Select, SelectItem, TableRef, UnaryOp};
use apuama_sql::value::{Date, Interval, Value};
use apuama_sql::{parse_expression, parse_statement, Statement};

fn leaf() -> impl Strategy<Value = Expr> {
    prop_oneof![
        prop_oneof!["a", "b", "c_total", "l_orderkey", "x1"]
            .prop_map(|n: String| Expr::Column(ColumnRef::new(n))),
        ("t1", prop_oneof!["a", "b"]).prop_map(|(t, c)| Expr::Column(ColumnRef::qualified(t, c))),
        (-1000i64..1000).prop_map(|i| Expr::Literal(Value::Int(i))),
        (-100.0f64..100.0).prop_map(|f| Expr::Literal(Value::Float(f))),
        "[a-z ']{0,12}".prop_map(|s| Expr::Literal(Value::Str(s))),
        (1990i32..2000, 1u32..13, 1u32..28).prop_map(|(y, m, d)| {
            Expr::Literal(Value::Date(Date::from_ymd(y, m, d).expect("valid")))
        }),
        (1i32..500).prop_map(|n| Expr::Literal(Value::Interval(Interval::days(n)))),
        (1i32..20).prop_map(|n| Expr::Literal(Value::Interval(Interval::months(n)))),
        Just(Expr::Literal(Value::Null)),
        any::<bool>().prop_map(|b| Expr::Literal(Value::Bool(b))),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    leaf().prop_recursive(4, 48, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), arb_binop()).prop_map(|(l, r, op)| Expr::Binary {
                left: Box::new(l),
                op,
                right: Box::new(r),
            }),
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(e),
            }),
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(e),
            }),
            (inner.clone(), inner.clone(), inner.clone(), any::<bool>()).prop_map(
                |(e, lo, hi, neg)| Expr::Between {
                    expr: Box::new(e),
                    negated: neg,
                    low: Box::new(lo),
                    high: Box::new(hi),
                }
            ),
            (
                inner.clone(),
                proptest::collection::vec(inner.clone(), 1..4),
                any::<bool>()
            )
                .prop_map(|(e, list, neg)| Expr::InList {
                    expr: Box::new(e),
                    negated: neg,
                    list,
                }),
            (inner.clone(), any::<bool>()).prop_map(|(e, neg)| Expr::IsNull {
                expr: Box::new(e),
                negated: neg,
            }),
            (
                proptest::collection::vec((inner.clone(), inner.clone()), 1..3),
                proptest::option::of(inner.clone())
            )
                .prop_map(|(branches, else_expr)| Expr::Case {
                    branches,
                    else_expr: else_expr.map(Box::new),
                }),
            (
                prop_oneof!["sum", "min", "max", "coalesce", "abs"],
                proptest::collection::vec(inner.clone(), 1..3)
            )
                .prop_map(|(name, args)| Expr::Function {
                    name: name.to_string(),
                    args,
                    distinct: false,
                    star: false,
                }),
            (inner.clone(), "[a-z%_]{0,8}", any::<bool>()).prop_map(|(e, pat, neg)| {
                Expr::Like {
                    expr: Box::new(e),
                    negated: neg,
                    pattern: Box::new(Expr::Literal(Value::Str(pat))),
                }
            }),
        ]
    })
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Eq),
        Just(BinOp::NotEq),
        Just(BinOp::Lt),
        Just(BinOp::LtEq),
        Just(BinOp::Gt),
        Just(BinOp::GtEq),
        Just(BinOp::And),
        Just(BinOp::Or),
    ]
}

fn arb_select() -> impl Strategy<Value = Select> {
    (
        proptest::collection::vec((arb_expr(), proptest::option::of("[a-z]{1,6}")), 1..4),
        prop_oneof!["orders", "lineitem", "t"],
        proptest::option::of(arb_expr()),
        proptest::collection::vec(arb_expr(), 0..2),
        proptest::collection::vec((arb_expr(), any::<bool>()), 0..2),
        proptest::option::of(0u64..100),
    )
        .prop_map(
            |(items, table, selection, group_by, order_by, limit)| Select {
                items: items
                    .into_iter()
                    .map(|(expr, alias)| SelectItem::Expr {
                        expr,
                        alias: alias.map(|a| a.to_string()),
                    })
                    .collect(),
                from: vec![TableRef::Table {
                    name: table.to_string(),
                    alias: None,
                }],
                selection,
                group_by,
                having: None,
                order_by: order_by
                    .into_iter()
                    .map(|(expr, desc)| OrderByItem { expr, desc })
                    .collect(),
                limit,
                ..Select::default()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // One parse normalizes constructions the parser folds (e.g. `- 0`
    // becomes the literal 0); after that, Display ∘ parse must be a fixed
    // point. That is the invariant the SVP rewriter needs: every tree it
    // handles came out of the parser, and the text it renders must mean
    // the same thing when a backend parses it again.
    #[test]
    fn expression_display_is_stable_after_one_parse(e in arb_expr()) {
        let r1 = e.to_string();
        let once = parse_expression(&r1)
            .unwrap_or_else(|err| panic!("failed to reparse {r1:?}: {err}"));
        let r2 = once.to_string();
        let twice = parse_expression(&r2)
            .unwrap_or_else(|err| panic!("failed to re-reparse {r2:?}: {err}"));
        prop_assert_eq!(twice.to_string(), r2);
    }

    #[test]
    fn select_display_is_stable_after_one_parse(s in arb_select()) {
        let stmt = Statement::Select(s);
        let r1 = stmt.to_string();
        let once = parse_statement(&r1)
            .unwrap_or_else(|err| panic!("failed to reparse {r1:?}: {err}"));
        let r2 = once.to_string();
        let twice = parse_statement(&r2)
            .unwrap_or_else(|err| panic!("failed to re-reparse {r2:?}: {err}"));
        prop_assert_eq!(twice.to_string(), r2);
    }

    #[test]
    fn lexer_never_panics_on_arbitrary_input(s in "\\PC{0,64}") {
        // Errors are fine; panics are not.
        let _ = apuama_sql::Lexer::new(&s).tokenize();
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(s in "\\PC{0,64}") {
        let _ = parse_statement(&s);
    }
}
