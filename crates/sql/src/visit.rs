//! AST walkers and in-place mutators.
//!
//! The Apuama middleware needs exactly two tree operations, both provided
//! here in a general form:
//!
//! * **discovery** — which base tables does a query reference (the paper's
//!   Query Parser component feeding the Data Catalog lookup), and
//! * **mutation** — rewriting expressions in place (SVP's range-predicate
//!   injection and aggregate decomposition).

use crate::ast::{Expr, Select, SelectItem, Statement, TableRef};

/// Calls `f` for every expression in the select, including inside
/// subqueries. Traversal is pre-order.
pub fn walk_select_exprs<'a>(select: &'a Select, f: &mut dyn FnMut(&'a Expr)) {
    for item in &select.items {
        if let SelectItem::Expr { expr, .. } = item {
            walk_expr(expr, f);
        }
    }
    for t in &select.from {
        if let TableRef::Subquery { query, .. } = t {
            walk_select_exprs(query, f);
        }
    }
    if let Some(e) = &select.selection {
        walk_expr(e, f);
    }
    for g in &select.group_by {
        walk_expr(g, f);
    }
    if let Some(h) = &select.having {
        walk_expr(h, f);
    }
    for o in &select.order_by {
        walk_expr(&o.expr, f);
    }
}

/// Pre-order walk over one expression tree, descending into subqueries.
pub fn walk_expr<'a>(expr: &'a Expr, f: &mut dyn FnMut(&'a Expr)) {
    f(expr);
    match expr {
        Expr::Column(_) | Expr::Literal(_) | Expr::Parameter(_) => {}
        Expr::Unary { expr, .. } => walk_expr(expr, f),
        Expr::Binary { left, right, .. } => {
            walk_expr(left, f);
            walk_expr(right, f);
        }
        Expr::Function { args, .. } => {
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::Case {
            branches,
            else_expr,
        } => {
            for (c, r) in branches {
                walk_expr(c, f);
                walk_expr(r, f);
            }
            if let Some(e) = else_expr {
                walk_expr(e, f);
            }
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            walk_expr(expr, f);
            walk_expr(low, f);
            walk_expr(high, f);
        }
        Expr::InList { expr, list, .. } => {
            walk_expr(expr, f);
            for e in list {
                walk_expr(e, f);
            }
        }
        Expr::InSubquery { expr, query, .. } => {
            walk_expr(expr, f);
            walk_select_exprs(query, f);
        }
        Expr::Exists { query, .. } => walk_select_exprs(query, f),
        Expr::ScalarSubquery(q) => walk_select_exprs(q, f),
        Expr::Like { expr, pattern, .. } => {
            walk_expr(expr, f);
            walk_expr(pattern, f);
        }
        Expr::IsNull { expr, .. } => walk_expr(expr, f),
    }
}

/// Collects the names of all base tables referenced anywhere in the select
/// (FROM clauses of the query itself, derived tables, and subqueries in any
/// expression position), in first-appearance order, deduplicated.
pub fn referenced_tables(select: &Select) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    let mut push = |name: &str| {
        if !out.iter().any(|n| n == name) {
            out.push(name.to_string());
        }
    };
    collect_tables(select, &mut push);
    out
}

fn collect_tables(select: &Select, push: &mut dyn FnMut(&str)) {
    for t in &select.from {
        match t {
            TableRef::Table { name, .. } => push(name),
            TableRef::Subquery { query, .. } => collect_tables(query, push),
        }
    }
    let mut visit = |e: &Expr| match e {
        Expr::Exists { query, .. } | Expr::InSubquery { query, .. } => collect_tables(query, push),
        Expr::ScalarSubquery(q) => collect_tables(q, push),
        _ => {}
    };
    // Walk only the top-level expressions for subquery discovery; nested
    // subqueries are reached recursively via `collect_tables` above, so we
    // must not descend into subqueries twice here. A shallow walk suffices
    // because `walk_select_exprs` already descends into subquery bodies and
    // would double-count.
    for item in &select.items {
        if let SelectItem::Expr { expr, .. } = item {
            shallow_walk(expr, &mut visit);
        }
    }
    if let Some(e) = &select.selection {
        shallow_walk(e, &mut visit);
    }
    for g in &select.group_by {
        shallow_walk(g, &mut visit);
    }
    if let Some(h) = &select.having {
        shallow_walk(h, &mut visit);
    }
    for o in &select.order_by {
        shallow_walk(&o.expr, &mut visit);
    }
}

/// Walks an expression tree but does NOT descend into subqueries; the
/// callback sees subquery nodes themselves.
pub fn shallow_walk<'a>(expr: &'a Expr, f: &mut dyn FnMut(&'a Expr)) {
    f(expr);
    match expr {
        Expr::Column(_) | Expr::Literal(_) | Expr::Parameter(_) => {}
        Expr::Unary { expr, .. } => shallow_walk(expr, f),
        Expr::Binary { left, right, .. } => {
            shallow_walk(left, f);
            shallow_walk(right, f);
        }
        Expr::Function { args, .. } => {
            for a in args {
                shallow_walk(a, f);
            }
        }
        Expr::Case {
            branches,
            else_expr,
        } => {
            for (c, r) in branches {
                shallow_walk(c, f);
                shallow_walk(r, f);
            }
            if let Some(e) = else_expr {
                shallow_walk(e, f);
            }
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            shallow_walk(expr, f);
            shallow_walk(low, f);
            shallow_walk(high, f);
        }
        Expr::InList { expr, list, .. } => {
            shallow_walk(expr, f);
            for e in list {
                shallow_walk(e, f);
            }
        }
        Expr::InSubquery { expr, .. } => shallow_walk(expr, f),
        Expr::Exists { .. } | Expr::ScalarSubquery(_) => {}
        Expr::Like { expr, pattern, .. } => {
            shallow_walk(expr, f);
            shallow_walk(pattern, f);
        }
        Expr::IsNull { expr, .. } => shallow_walk(expr, f),
    }
}

/// Collects tables referenced by a statement (SELECT/INSERT/DELETE/UPDATE).
pub fn statement_tables(stmt: &Statement) -> Vec<String> {
    match stmt {
        Statement::Select(s) => referenced_tables(s),
        Statement::Explain { inner, .. } => statement_tables(inner),
        Statement::Insert { table, .. }
        | Statement::Delete { table, .. }
        | Statement::Update { table, .. } => vec![table.clone()],
        Statement::CreateTable { name, .. } => vec![name.clone()],
        Statement::CreateIndex { table, .. } => vec![table.clone()],
        Statement::Set { .. } | Statement::Begin | Statement::Commit | Statement::Rollback => {
            vec![]
        }
    }
}

/// Rewrites every expression of the top-level select in place (not
/// descending into subqueries — SVP's aggregate decomposition must only
/// touch the outer query block).
pub fn rewrite_top_level_exprs(select: &mut Select, f: &mut dyn FnMut(&mut Expr)) {
    for item in &mut select.items {
        if let SelectItem::Expr { expr, .. } = item {
            f(expr);
        }
    }
    if let Some(e) = &mut select.selection {
        f(e);
    }
    for g in &mut select.group_by {
        f(g);
    }
    if let Some(h) = &mut select.having {
        f(h);
    }
    for o in &mut select.order_by {
        f(&mut o.expr);
    }
}

/// Post-order mutable walk over one expression tree, descending into
/// subqueries. The callback may replace whole nodes (parameter binding).
pub fn rewrite_expr_deep(expr: &mut Expr, f: &mut dyn FnMut(&mut Expr)) {
    match expr {
        Expr::Column(_) | Expr::Literal(_) | Expr::Parameter(_) => {}
        Expr::Unary { expr, .. } => rewrite_expr_deep(expr, f),
        Expr::Binary { left, right, .. } => {
            rewrite_expr_deep(left, f);
            rewrite_expr_deep(right, f);
        }
        Expr::Function { args, .. } => {
            for a in args {
                rewrite_expr_deep(a, f);
            }
        }
        Expr::Case {
            branches,
            else_expr,
        } => {
            for (c, r) in branches {
                rewrite_expr_deep(c, f);
                rewrite_expr_deep(r, f);
            }
            if let Some(e) = else_expr {
                rewrite_expr_deep(e, f);
            }
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            rewrite_expr_deep(expr, f);
            rewrite_expr_deep(low, f);
            rewrite_expr_deep(high, f);
        }
        Expr::InList { expr, list, .. } => {
            rewrite_expr_deep(expr, f);
            for e in list {
                rewrite_expr_deep(e, f);
            }
        }
        Expr::InSubquery { expr, query, .. } => {
            rewrite_expr_deep(expr, f);
            rewrite_select_exprs_deep(query, f);
        }
        Expr::Exists { query, .. } => rewrite_select_exprs_deep(query, f),
        Expr::ScalarSubquery(q) => rewrite_select_exprs_deep(q, f),
        Expr::Like { expr, pattern, .. } => {
            rewrite_expr_deep(expr, f);
            rewrite_expr_deep(pattern, f);
        }
        Expr::IsNull { expr, .. } => rewrite_expr_deep(expr, f),
    }
    f(expr);
}

/// Applies [`rewrite_expr_deep`] to every expression of the select,
/// including derived tables and subqueries.
pub fn rewrite_select_exprs_deep(select: &mut Select, f: &mut dyn FnMut(&mut Expr)) {
    for item in &mut select.items {
        if let SelectItem::Expr { expr, .. } = item {
            rewrite_expr_deep(expr, f);
        }
    }
    for t in &mut select.from {
        if let TableRef::Subquery { query, .. } = t {
            rewrite_select_exprs_deep(query, f);
        }
    }
    if let Some(e) = &mut select.selection {
        rewrite_expr_deep(e, f);
    }
    for g in &mut select.group_by {
        rewrite_expr_deep(g, f);
    }
    if let Some(h) = &mut select.having {
        rewrite_expr_deep(h, f);
    }
    for o in &mut select.order_by {
        rewrite_expr_deep(&mut o.expr, f);
    }
}

/// Highest `$N` placeholder referenced anywhere in the select (0 when the
/// statement has no parameters) — the number of values a bind must supply.
pub fn parameter_count(select: &Select) -> usize {
    let mut max = 0usize;
    walk_select_exprs(select, &mut |e| {
        if let Expr::Parameter(n) = e {
            max = max.max(*n);
        }
    });
    max
}

/// Replaces every `$N` placeholder with the corresponding literal from
/// `params` (1-based). Errors if a placeholder has no matching value. This
/// is the textual-fallback path for backends without a native bound-execute:
/// the bound statement renders to plain SQL byte-identical to what the
/// template would have produced with inlined literals.
pub fn bind_parameters(select: &mut Select, params: &[crate::Value]) -> Result<(), String> {
    let mut missing = None;
    rewrite_select_exprs_deep(select, &mut |e| {
        if let Expr::Parameter(n) = e {
            match params.get(*n - 1) {
                Some(v) => *e = Expr::Literal(v.clone()),
                None => missing = Some(*n),
            }
        }
    });
    match missing {
        Some(n) => Err(format!(
            "statement references ${n} but only {} parameter(s) were bound",
            params.len()
        )),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;

    fn tables_of(sql: &str) -> Vec<String> {
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => referenced_tables(&s),
            _ => panic!("expected select"),
        }
    }

    #[test]
    fn tables_from_simple_join() {
        assert_eq!(
            tables_of("select * from lineitem, orders where l_orderkey = o_orderkey"),
            vec!["lineitem", "orders"]
        );
    }

    #[test]
    fn tables_from_exists_subquery() {
        assert_eq!(
            tables_of(
                "select o_orderpriority from orders where exists \
                 (select * from lineitem where l_orderkey = o_orderkey)"
            ),
            vec!["orders", "lineitem"]
        );
    }

    #[test]
    fn tables_deduplicated() {
        assert_eq!(
            tables_of(
                "select * from lineitem l1 where exists \
                 (select * from lineitem l2 where l2.l_orderkey = l1.l_orderkey)"
            ),
            vec!["lineitem"]
        );
    }

    #[test]
    fn tables_from_scalar_subquery_in_select_list() {
        assert_eq!(
            tables_of("select (select max(o_orderkey) from orders) from nation"),
            vec!["nation", "orders"]
        );
    }

    #[test]
    fn tables_from_derived_table() {
        assert_eq!(
            tables_of("select x from (select l_orderkey as x from lineitem) d"),
            vec!["lineitem"]
        );
    }

    #[test]
    fn statement_tables_for_dml() {
        let s = parse_statement("delete from orders where o_orderkey = 5").unwrap();
        assert_eq!(statement_tables(&s), vec!["orders"]);
    }

    #[test]
    fn walk_counts_all_exprs() {
        let stmt = parse_statement("select a + b from t where c > 1").unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        let mut count = 0;
        walk_select_exprs(&s, &mut |_| count += 1);
        // (a+b), a, b, (c>1), c, 1 = 6 nodes
        assert_eq!(count, 6);
    }

    #[test]
    fn bind_parameters_replaces_placeholders_everywhere() {
        let stmt = parse_statement(
            "select k from t where k >= $1 and k < $2 \
             and exists (select 1 from u where u.k >= $1)",
        )
        .unwrap();
        let Statement::Select(mut s) = stmt else {
            panic!()
        };
        assert_eq!(parameter_count(&s), 2);
        bind_parameters(&mut s, &[crate::Value::Int(10), crate::Value::Int(20)]).unwrap();
        assert_eq!(parameter_count(&s), 0);
        assert_eq!(
            s.to_string(),
            "select k from t where (((k >= 10) and (k < 20)) \
             and (exists (select 1 from u where (u.k >= 10))))"
        );
    }

    #[test]
    fn bind_parameters_rejects_short_binds() {
        let stmt = parse_statement("select k from t where k >= $1 and k < $2").unwrap();
        let Statement::Select(mut s) = stmt else {
            panic!()
        };
        assert!(bind_parameters(&mut s, &[crate::Value::Int(10)]).is_err());
    }

    #[test]
    fn rewrite_top_level_only() {
        let stmt = parse_statement(
            "select sum(x) from t where exists (select sum(y) from u where u.k = t.k)",
        )
        .unwrap();
        let Statement::Select(mut s) = stmt else {
            panic!()
        };
        let mut touched = 0;
        rewrite_top_level_exprs(&mut s, &mut |_| touched += 1);
        // One select item and one where predicate.
        assert_eq!(touched, 2);
    }
}
