//! Dynamic scalar values and calendar arithmetic.
//!
//! [`Value`] is the single runtime scalar type shared by the parser, the
//! single-node engine, the result composer and the cluster layers. TPC-H
//! needs exact date arithmetic (`date '1998-12-01' - interval '90' day`), so
//! dates are stored as a day count from 1970-01-01 with a proleptic-Gregorian
//! conversion implemented here (no external chrono dependency).

use std::cmp::Ordering;
use std::fmt;

/// A calendar date stored as days since the Unix epoch (1970-01-01).
///
/// Supports the subset of calendar arithmetic TPC-H predicates use:
/// construction from `YYYY-MM-DD`, adding day/month/year intervals, and
/// total ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date(pub i32);

const DAYS_PER_400Y: i64 = 146_097;
const DAYS_PER_100Y: i64 = 36_524;
const DAYS_PER_4Y: i64 = 1_461;

fn is_leap(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

impl Date {
    /// Builds a date from calendar components. Returns `None` for
    /// out-of-range months or days.
    pub fn from_ymd(year: i32, month: u32, day: u32) -> Option<Date> {
        if !(1..=12).contains(&month) || day == 0 || day > days_in_month(year, month) {
            return None;
        }
        // Days from 1970-01-01 to the start of `year`.
        let y = year as i64 - 1970;
        let mut days = y * 365;
        // Count leap days between 1970 and `year` (exclusive of `year`).
        let leaps = |to: i64| -> i64 {
            // number of leap years in [1970, 1970+to) using absolute years
            let a = 1970;
            let b = 1970 + to;
            let count = |n: i64| n / 4 - n / 100 + n / 400;
            count(b - 1) - count(a - 1)
        };
        if y >= 0 {
            days += leaps(y);
        } else {
            days -= {
                let a = year as i64;
                let b = 1970i64;
                let count = |n: i64| n / 4 - n / 100 + n / 400;
                count(b - 1) - count(a - 1)
            };
        }
        for m in 1..month {
            days += days_in_month(year, m) as i64;
        }
        days += day as i64 - 1;
        Some(Date(days as i32))
    }

    /// Parses a `YYYY-MM-DD` literal.
    pub fn parse(text: &str) -> Option<Date> {
        let mut parts = text.splitn(3, '-');
        let y: i32 = parts.next()?.parse().ok()?;
        let m: u32 = parts.next()?.parse().ok()?;
        let d: u32 = parts.next()?.parse().ok()?;
        Date::from_ymd(y, m, d)
    }

    /// Decomposes the day count back into `(year, month, day)`.
    pub fn to_ymd(self) -> (i32, u32, u32) {
        // Shift to an epoch of 2000-03-01 (aligned with the 400-year cycle)
        // and decompose; this is the classic civil-from-days algorithm.
        let mut days = self.0 as i64 - 11_017; // days from 2000-03-01
        let mut qc = days.div_euclid(DAYS_PER_400Y);
        days = days.rem_euclid(DAYS_PER_400Y);
        let mut c = days / DAYS_PER_100Y;
        if c == 4 {
            c = 3;
        }
        days -= c * DAYS_PER_100Y;
        let mut q = days / DAYS_PER_4Y;
        if q == 25 {
            q = 24;
        }
        days -= q * DAYS_PER_4Y;
        let mut y = days / 365;
        if y == 4 {
            y = 3;
        }
        days -= y * 365;
        let mut year = (2000 + qc * 400 + c * 100 + q * 4 + y) as i32;
        // `days` counts from March 1; month table for March-based year.
        const MDAYS: [i64; 12] = [31, 30, 31, 30, 31, 31, 30, 31, 30, 31, 31, 29];
        let mut month = 0usize;
        while days >= MDAYS[month] {
            days -= MDAYS[month];
            month += 1;
        }
        let mut m = month as u32 + 3;
        if m > 12 {
            m -= 12;
            year += 1;
        }
        let _ = &mut qc;
        (year, m, days as u32 + 1)
    }

    /// Adds a calendar interval, clamping the day-of-month when the target
    /// month is shorter (`2000-01-31 + 1 month = 2000-02-29`), matching SQL
    /// engines' behaviour.
    pub fn add_interval(self, iv: Interval) -> Date {
        let (mut y, mut m, mut d) = self.to_ymd();
        let total = (y as i64) * 12 + (m as i64 - 1) + iv.months as i64;
        y = total.div_euclid(12) as i32;
        m = total.rem_euclid(12) as u32 + 1;
        let dim = days_in_month(y, m);
        if d > dim {
            d = dim;
        }
        let base = Date::from_ymd(y, m, d).expect("component arithmetic stays in range");
        Date(base.0 + iv.days)
    }

    /// Extracts the year component (for `GROUP BY` on shipping years etc.).
    pub fn year(self) -> i32 {
        self.to_ymd().0
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.to_ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

/// A calendar interval: a month component plus a day component, mirroring
/// SQL's `INTERVAL 'n' DAY | MONTH | YEAR`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    /// Whole months (years are stored as 12 months).
    pub months: i32,
    /// Whole days.
    pub days: i32,
}

impl Interval {
    pub fn days(n: i32) -> Interval {
        Interval { months: 0, days: n }
    }
    pub fn months(n: i32) -> Interval {
        Interval { months: n, days: 0 }
    }
    pub fn years(n: i32) -> Interval {
        Interval {
            months: n * 12,
            days: 0,
        }
    }

    /// Flips the sign of both components (for `date - interval`).
    pub fn negate(self) -> Interval {
        Interval {
            months: -self.months,
            days: -self.days,
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Render in the canonical single-unit form whenever possible so the
        // output stays parseable by our own parser.
        if self.days == 0 && self.months % 12 == 0 && self.months != 0 {
            write!(f, "interval '{}' year", self.months / 12)
        } else if self.days == 0 {
            write!(f, "interval '{}' month", self.months)
        } else if self.months == 0 {
            write!(f, "interval '{}' day", self.days)
        } else {
            // Mixed intervals never appear in our dialect, but render
            // something unambiguous anyway.
            write!(
                f,
                "(interval '{}' month + interval '{}' day)",
                self.months, self.days
            )
        }
    }
}

/// The dynamic scalar value type.
///
/// `NULL` compares as SQL three-valued logic in the engine's evaluator;
/// inside sort keys and group keys the engine uses [`Value::sort_cmp`], which
/// places NULL first, giving a total order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Date(Date),
    Interval(Interval),
}

impl Value {
    /// True if the value is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view used by arithmetic and aggregation; integers widen to
    /// floats when mixed.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view (no float truncation — engines should be explicit).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Date view.
    pub fn as_date(&self) -> Option<Date> {
        match self {
            Value::Date(d) => Some(*d),
            _ => None,
        }
    }

    /// Boolean view (used by predicate evaluation).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// SQL comparison: returns `None` when either side is NULL or the types
    /// are incomparable (three-valued logic's UNKNOWN).
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).partial_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.partial_cmp(&(*b as f64)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Date(a), Value::Date(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Total order for sorting and grouping: NULL sorts first, then by type
    /// rank, then by value. NaN floats sort after all other floats.
    pub fn sort_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) => 2,
                Value::Str(_) => 3,
                Value::Date(_) => 4,
                Value::Interval(_) => 5,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            _ => rank(self).cmp(&rank(other)).then_with(|| {
                self.sql_cmp(other).unwrap_or_else(|| match (self, other) {
                    (Value::Float(a), Value::Float(b)) => {
                        // NaN handling for the total order.
                        match (a.is_nan(), b.is_nan()) {
                            (true, true) => Ordering::Equal,
                            (true, false) => Ordering::Greater,
                            (false, true) => Ordering::Less,
                            _ => Ordering::Equal,
                        }
                    }
                    (Value::Interval(a), Value::Interval(b)) => {
                        (a.months, a.days).cmp(&(b.months, b.days))
                    }
                    _ => Ordering::Equal,
                })
            }),
        }
    }

    /// Key used for hashing in group-by / hash-join build sides: a canonical
    /// byte representation with floats normalized via `to_bits` of the
    /// canonicalized value.
    pub fn hash_key(&self) -> HashableValue {
        HashableValue(self.clone())
    }
}

/// Wrapper giving [`Value`] `Eq + Hash` semantics suitable for hash tables
/// (NULL equals NULL — SQL GROUP BY treats NULLs as one group; hash joins in
/// the engine filter NULL keys before probing, matching SQL join semantics).
#[derive(Debug, Clone)]
pub struct HashableValue(pub Value);

impl PartialEq for HashableValue {
    fn eq(&self, other: &Self) -> bool {
        self.0.sort_cmp(&other.0) == Ordering::Equal
    }
}
impl Eq for HashableValue {}

impl std::hash::Hash for HashableValue {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        hash_value(&self.0, state)
    }
}

/// Canonical hash of one value, consistent with [`HashableValue`]'s
/// equality (`sort_cmp == Equal`): `Int` and `Float` hash as the same
/// `f64` bit pattern and `-0.0` canonicalizes to `0.0`. Exposed so hash
/// tables keyed on borrowed `&Value`s (the engine's group tables) hash
/// exactly like a `HashableValue` key without cloning the value first.
pub fn hash_value<H: std::hash::Hasher>(v: &Value, state: &mut H) {
    use std::hash::Hash;
    match v {
        Value::Null => 0u8.hash(state),
        Value::Bool(b) => {
            1u8.hash(state);
            b.hash(state);
        }
        Value::Int(i) => {
            2u8.hash(state);
            (*i as f64).to_bits().hash(state);
        }
        Value::Float(f) => {
            2u8.hash(state);
            let canon = if *f == 0.0 { 0.0 } else { *f };
            canon.to_bits().hash(state);
        }
        Value::Str(s) => {
            3u8.hash(state);
            s.hash(state);
        }
        Value::Date(d) => {
            4u8.hash(state);
            d.0.hash(state);
        }
        Value::Interval(iv) => {
            5u8.hash(state);
            iv.months.hash(state);
            iv.days.hash(state);
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{}", if *b { "true" } else { "false" }),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    // Keep a trailing ".0" so the literal re-parses as a float.
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Value::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Value::Date(d) => write!(f, "date '{d}'"),
            Value::Interval(iv) => write!(f, "{iv}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<Date> for Value {
    fn from(v: Date) -> Self {
        Value::Date(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_roundtrip_epoch() {
        let d = Date::from_ymd(1970, 1, 1).unwrap();
        assert_eq!(d.0, 0);
        assert_eq!(d.to_ymd(), (1970, 1, 1));
    }

    #[test]
    fn date_roundtrip_known_days() {
        // 1998-12-01 is 10561 days after the epoch.
        let d = Date::parse("1998-12-01").unwrap();
        assert_eq!(d.to_ymd(), (1998, 12, 1));
        assert_eq!(d.0, 10_561);
    }

    #[test]
    fn date_roundtrip_many() {
        for days in (-20_000..40_000).step_by(7) {
            let d = Date(days);
            let (y, m, dd) = d.to_ymd();
            assert_eq!(Date::from_ymd(y, m, dd), Some(d), "days={days}");
        }
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap(2000));
        assert!(!is_leap(1900));
        assert!(is_leap(1996));
        assert!(!is_leap(1997));
        assert_eq!(Date::from_ymd(1900, 2, 29), None);
        assert!(Date::from_ymd(2000, 2, 29).is_some());
    }

    #[test]
    fn interval_day_arithmetic() {
        let d = Date::parse("1998-12-01").unwrap();
        let e = d.add_interval(Interval::days(-90));
        assert_eq!(e.to_string(), "1998-09-02");
    }

    #[test]
    fn interval_month_clamps_day() {
        let d = Date::parse("2000-01-31").unwrap();
        assert_eq!(
            d.add_interval(Interval::months(1)).to_string(),
            "2000-02-29"
        );
        let d = Date::parse("1999-01-31").unwrap();
        assert_eq!(
            d.add_interval(Interval::months(1)).to_string(),
            "1999-02-28"
        );
    }

    #[test]
    fn interval_year_arithmetic() {
        let d = Date::parse("1994-01-01").unwrap();
        assert_eq!(d.add_interval(Interval::years(1)).to_string(), "1995-01-01");
    }

    #[test]
    fn sql_cmp_null_is_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
    }

    #[test]
    fn sql_cmp_mixed_numeric() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(1.5)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn sort_cmp_total_order_nulls_first() {
        let mut vals = [Value::Int(3), Value::Null, Value::Int(1)];
        vals.sort_by(|a, b| a.sort_cmp(b));
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Int(1));
    }

    #[test]
    fn display_roundtrips_string_quoting() {
        assert_eq!(Value::Str("it's".into()).to_string(), "'it''s'");
    }

    #[test]
    fn hashable_int_float_unify() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Value::Int(2).hash_key());
        assert!(set.contains(&Value::Float(2.0).hash_key()));
    }

    #[test]
    fn date_display_is_padded() {
        let d = Date::from_ymd(1995, 3, 5).unwrap();
        assert_eq!(d.to_string(), "1995-03-05");
    }

    #[test]
    fn date_year_extraction() {
        assert_eq!(Date::parse("1997-06-15").unwrap().year(), 1997);
    }
}
