//! Recursive-descent parser for the supported SQL dialect.
//!
//! Grammar (informal):
//!
//! ```text
//! statement   := select | insert | delete | update | create | set
//!              | begin | commit | rollback
//! select      := SELECT [DISTINCT] items FROM table_refs [WHERE expr]
//!                [GROUP BY exprs] [HAVING expr] [ORDER BY order_items]
//!                [LIMIT n]
//! expr        := or_expr
//! or_expr     := and_expr (OR and_expr)*
//! and_expr    := not_expr (AND not_expr)*
//! not_expr    := [NOT] cmp_expr
//! cmp_expr    := add_expr [cmp_op add_expr | BETWEEN | IN | LIKE | IS NULL]
//! add_expr    := mul_expr ((+|-) mul_expr)*
//! mul_expr    := unary ((*|/) unary)*
//! unary       := [-] primary
//! primary     := literal | date/interval literal | column | function(...)
//!              | (expr) | (select) | CASE ... END | EXISTS (select)
//! ```

use crate::ast::*;
use crate::lexer::{Lexer, Symbol, Token};
use crate::value::{Date, Interval, Value};
use crate::{ParseError, ParseResult};

/// Parses a single SQL statement (a trailing `;` is tolerated).
pub fn parse_statement(sql: &str) -> ParseResult<Statement> {
    let mut p = Parser::new(sql)?;
    let stmt = p.statement()?;
    p.eat_symbol(Symbol::Semicolon);
    p.expect_eof()?;
    Ok(stmt)
}

/// Parses a `;`-separated script into statements.
pub fn parse_statements(sql: &str) -> ParseResult<Vec<Statement>> {
    let mut p = Parser::new(sql)?;
    let mut out = Vec::new();
    loop {
        while p.eat_symbol(Symbol::Semicolon) {}
        if p.at_eof() {
            return Ok(out);
        }
        out.push(p.statement()?);
    }
}

/// Parses a standalone expression (used in tests and by the rewriter).
pub fn parse_expression(sql: &str) -> ParseResult<Expr> {
    let mut p = Parser::new(sql)?;
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

/// The parser itself. Public so callers with unusual needs (e.g. the TPC-H
/// query templates) can drive it incrementally.
pub struct Parser {
    tokens: Vec<(Token, usize)>,
    pos: usize,
}

impl Parser {
    pub fn new(sql: &str) -> ParseResult<Self> {
        Ok(Parser {
            tokens: Lexer::new(sql).tokenize()?,
            pos: 0,
        })
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].0
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos.min(self.tokens.len() - 1)].1
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].0.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), Token::Eof)
    }

    fn expect_eof(&self) -> ParseResult<()> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(self.error(format!("unexpected trailing input: {:?}", self.peek())))
        }
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(msg, self.offset())
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> ParseResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected keyword '{kw}', found {:?}", self.peek())))
        }
    }

    fn eat_symbol(&mut self, s: Symbol) -> bool {
        if *self.peek() == Token::Symbol(s) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, s: Symbol) -> ParseResult<()> {
        if self.eat_symbol(s) {
            Ok(())
        } else {
            Err(self.error(format!("expected {s:?}, found {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> ParseResult<String> {
        match self.peek().clone() {
            Token::Ident(s) => {
                self.advance();
                Ok(s)
            }
            other => Err(self.error(format!("expected identifier, found {other:?}"))),
        }
    }

    fn string(&mut self) -> ParseResult<String> {
        match self.peek().clone() {
            Token::Str(s) => {
                self.advance();
                Ok(s)
            }
            other => Err(self.error(format!("expected string literal, found {other:?}"))),
        }
    }

    // -- statements ---------------------------------------------------------

    /// Parses one statement at the current position.
    pub fn statement(&mut self) -> ParseResult<Statement> {
        match self.peek().clone() {
            Token::Ident(kw) => match kw.as_str() {
                "select" => Ok(Statement::Select(self.select()?)),
                "explain" => {
                    self.advance();
                    let analyze = self.eat_kw("analyze");
                    Ok(Statement::Explain {
                        analyze,
                        inner: Box::new(self.statement()?),
                    })
                }
                "insert" => self.insert(),
                "delete" => self.delete(),
                "update" => self.update(),
                "create" => self.create(),
                "set" => self.set(),
                "begin" | "start" => {
                    self.advance();
                    self.eat_kw("transaction");
                    Ok(Statement::Begin)
                }
                "commit" => {
                    self.advance();
                    Ok(Statement::Commit)
                }
                "rollback" => {
                    self.advance();
                    Ok(Statement::Rollback)
                }
                other => Err(self.error(format!("unknown statement keyword '{other}'"))),
            },
            other => Err(self.error(format!("expected statement, found {other:?}"))),
        }
    }

    /// Parses a SELECT (entry point also used for subqueries).
    pub fn select(&mut self) -> ParseResult<Select> {
        self.expect_kw("select")?;
        let quantifier = if self.eat_kw("distinct") {
            SetQuantifier::Distinct
        } else {
            self.eat_kw("all");
            SetQuantifier::All
        };
        let mut items = Vec::new();
        loop {
            if self.eat_symbol(Symbol::Star) {
                items.push(SelectItem::Wildcard);
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_kw("as") {
                    Some(self.ident()?)
                } else if let Token::Ident(name) = self.peek().clone() {
                    // Bare alias, as in `sum(x) total`, unless it's a clause
                    // keyword.
                    if RESERVED_AFTER_ITEM.contains(&name.as_str()) {
                        None
                    } else {
                        self.advance();
                        Some(name)
                    }
                } else {
                    None
                };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_symbol(Symbol::Comma) {
                break;
            }
        }
        let mut from = Vec::new();
        if self.eat_kw("from") {
            loop {
                from.push(self.table_ref()?);
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
        }
        let selection = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_kw("having") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    self.eat_kw("asc");
                    false
                };
                order_by.push(OrderByItem { expr, desc });
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("limit") {
            match self.advance() {
                Token::Int(n) if n >= 0 => Some(n as u64),
                other => return Err(self.error(format!("expected LIMIT count, got {other:?}"))),
            }
        } else {
            None
        };
        Ok(Select {
            quantifier,
            items,
            from,
            selection,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn table_ref(&mut self) -> ParseResult<TableRef> {
        if self.eat_symbol(Symbol::LParen) {
            let query = Box::new(self.select()?);
            self.expect_symbol(Symbol::RParen)?;
            self.eat_kw("as");
            let alias = self.ident()?;
            return Ok(TableRef::Subquery { query, alias });
        }
        let name = self.ident()?;
        let alias = if self.eat_kw("as") {
            Some(self.ident()?)
        } else if let Token::Ident(a) = self.peek().clone() {
            if RESERVED_AFTER_TABLE.contains(&a.as_str()) {
                None
            } else {
                self.advance();
                Some(a)
            }
        } else {
            None
        };
        Ok(TableRef::Table { name, alias })
    }

    fn insert(&mut self) -> ParseResult<Statement> {
        self.expect_kw("insert")?;
        self.expect_kw("into")?;
        let table = self.ident()?;
        let mut columns = Vec::new();
        if self.eat_symbol(Symbol::LParen) {
            loop {
                columns.push(self.ident()?);
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
            self.expect_symbol(Symbol::RParen)?;
        }
        self.expect_kw("values")?;
        let mut rows = Vec::new();
        loop {
            self.expect_symbol(Symbol::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
            self.expect_symbol(Symbol::RParen)?;
            rows.push(row);
            if !self.eat_symbol(Symbol::Comma) {
                break;
            }
        }
        Ok(Statement::Insert {
            table,
            columns,
            rows,
        })
    }

    fn delete(&mut self) -> ParseResult<Statement> {
        self.expect_kw("delete")?;
        self.expect_kw("from")?;
        let table = self.ident()?;
        let selection = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete { table, selection })
    }

    fn update(&mut self) -> ParseResult<Statement> {
        self.expect_kw("update")?;
        let table = self.ident()?;
        self.expect_kw("set")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect_symbol(Symbol::Eq)?;
            assignments.push((col, self.expr()?));
            if !self.eat_symbol(Symbol::Comma) {
                break;
            }
        }
        let selection = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            assignments,
            selection,
        })
    }

    fn create(&mut self) -> ParseResult<Statement> {
        self.expect_kw("create")?;
        if self.eat_kw("index") {
            let name = self.ident()?;
            self.expect_kw("on")?;
            let table = self.ident()?;
            self.expect_symbol(Symbol::LParen)?;
            let column = self.ident()?;
            self.expect_symbol(Symbol::RParen)?;
            return Ok(Statement::CreateIndex {
                name,
                table,
                column,
            });
        }
        self.expect_kw("table")?;
        let name = self.ident()?;
        self.expect_symbol(Symbol::LParen)?;
        let mut columns = Vec::new();
        let mut primary_key = Vec::new();
        loop {
            if self.eat_kw("primary") {
                self.expect_kw("key")?;
                self.expect_symbol(Symbol::LParen)?;
                loop {
                    primary_key.push(self.ident()?);
                    if !self.eat_symbol(Symbol::Comma) {
                        break;
                    }
                }
                self.expect_symbol(Symbol::RParen)?;
            } else {
                let col_name = self.ident()?;
                let ty = self.data_type()?;
                let mut not_null = false;
                if self.eat_kw("not") {
                    self.expect_kw("null")?;
                    not_null = true;
                }
                columns.push(ColumnDef {
                    name: col_name,
                    data_type: ty,
                    not_null,
                });
            }
            if !self.eat_symbol(Symbol::Comma) {
                break;
            }
        }
        self.expect_symbol(Symbol::RParen)?;
        let clustered_by = if self.eat_kw("clustered") {
            self.expect_kw("by")?;
            self.expect_symbol(Symbol::LParen)?;
            let c = self.ident()?;
            self.expect_symbol(Symbol::RParen)?;
            Some(c)
        } else {
            None
        };
        Ok(Statement::CreateTable {
            name,
            columns,
            primary_key,
            clustered_by,
        })
    }

    fn data_type(&mut self) -> ParseResult<DataType> {
        let name = self.ident()?;
        let ty = match name.as_str() {
            "int" | "integer" | "bigint" | "smallint" => DataType::Int,
            "float" | "double" | "real" | "decimal" | "numeric" => {
                // Tolerate `decimal(15,2)` precision suffixes.
                if self.eat_symbol(Symbol::LParen) {
                    while !self.eat_symbol(Symbol::RParen) {
                        self.advance();
                    }
                }
                DataType::Float
            }
            "text" | "varchar" | "char" | "string" => {
                if self.eat_symbol(Symbol::LParen) {
                    while !self.eat_symbol(Symbol::RParen) {
                        self.advance();
                    }
                }
                DataType::Text
            }
            "date" => DataType::Date,
            "bool" | "boolean" => DataType::Bool,
            other => return Err(self.error(format!("unknown data type '{other}'"))),
        };
        Ok(ty)
    }

    fn set(&mut self) -> ParseResult<Statement> {
        self.expect_kw("set")?;
        let name = self.ident()?;
        // Accept both `set x = v` and PostgreSQL's `set x to v`.
        if !self.eat_symbol(Symbol::Eq) {
            self.expect_kw("to")?;
        }
        let value = match self.advance() {
            Token::Ident(s) => s,
            Token::Int(i) => i.to_string(),
            Token::Float(fl) => fl.to_string(),
            Token::Str(s) => s,
            other => return Err(self.error(format!("bad SET value {other:?}"))),
        };
        Ok(Statement::Set { name, value })
    }

    // -- expressions --------------------------------------------------------

    /// Parses an expression at the lowest precedence (OR).
    pub fn expr(&mut self) -> ParseResult<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("or") {
            let rhs = self.and_expr()?;
            lhs = Expr::binary(lhs, BinOp::Or, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> ParseResult<Expr> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw("and") {
            let rhs = self.not_expr()?;
            lhs = Expr::binary(lhs, BinOp::And, rhs);
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> ParseResult<Expr> {
        if self.peek().is_kw("not") && !self.peek_is_not_exists() {
            self.advance();
            let inner = self.not_expr()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner),
            });
        }
        self.cmp_expr()
    }

    /// `NOT EXISTS` is handled inside `primary` so the negation attaches to
    /// the EXISTS node (the SVP rewriter relies on that shape).
    fn peek_is_not_exists(&self) -> bool {
        if !self.peek().is_kw("not") {
            return false;
        }
        matches!(&self.tokens.get(self.pos + 1), Some((t, _)) if t.is_kw("exists"))
    }

    fn cmp_expr(&mut self) -> ParseResult<Expr> {
        let lhs = self.add_expr()?;
        // Postfix predicates.
        let negated = if self.peek().is_kw("not")
            && matches!(&self.tokens.get(self.pos + 1),
                Some((t, _)) if t.is_kw("between") || t.is_kw("in") || t.is_kw("like"))
        {
            self.advance();
            true
        } else {
            false
        };
        if self.eat_kw("between") {
            let low = self.add_expr()?;
            self.expect_kw("and")?;
            let high = self.add_expr()?;
            return Ok(Expr::Between {
                expr: Box::new(lhs),
                negated,
                low: Box::new(low),
                high: Box::new(high),
            });
        }
        if self.eat_kw("in") {
            self.expect_symbol(Symbol::LParen)?;
            if self.peek().is_kw("select") {
                let query = Box::new(self.select()?);
                self.expect_symbol(Symbol::RParen)?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(lhs),
                    negated,
                    query,
                });
            }
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
            self.expect_symbol(Symbol::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(lhs),
                negated,
                list,
            });
        }
        if self.eat_kw("like") {
            let pattern = self.add_expr()?;
            return Ok(Expr::Like {
                expr: Box::new(lhs),
                negated,
                pattern: Box::new(pattern),
            });
        }
        if negated {
            return Err(self.error("dangling NOT before comparison"));
        }
        if self.eat_kw("is") {
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(Expr::IsNull {
                expr: Box::new(lhs),
                negated,
            });
        }
        let op = match self.peek() {
            Token::Symbol(Symbol::Eq) => Some(BinOp::Eq),
            Token::Symbol(Symbol::NotEq) => Some(BinOp::NotEq),
            Token::Symbol(Symbol::Lt) => Some(BinOp::Lt),
            Token::Symbol(Symbol::LtEq) => Some(BinOp::LtEq),
            Token::Symbol(Symbol::Gt) => Some(BinOp::Gt),
            Token::Symbol(Symbol::GtEq) => Some(BinOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let rhs = self.add_expr()?;
            return Ok(Expr::binary(lhs, op, rhs));
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> ParseResult<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Token::Symbol(Symbol::Plus) => BinOp::Add,
                Token::Symbol(Symbol::Minus) => BinOp::Sub,
                _ => break,
            };
            self.advance();
            let rhs = self.mul_expr()?;
            lhs = Expr::binary(lhs, op, rhs);
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> ParseResult<Expr> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Token::Symbol(Symbol::Star) => BinOp::Mul,
                Token::Symbol(Symbol::Slash) => BinOp::Div,
                _ => break,
            };
            self.advance();
            let rhs = self.unary()?;
            lhs = Expr::binary(lhs, op, rhs);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> ParseResult<Expr> {
        if self.eat_symbol(Symbol::Minus) {
            let inner = self.unary()?;
            // Fold negation into numeric literals for cleaner trees.
            return Ok(match inner {
                Expr::Literal(Value::Int(i)) => Expr::Literal(Value::Int(-i)),
                Expr::Literal(Value::Float(x)) => Expr::Literal(Value::Float(-x)),
                other => Expr::Unary {
                    op: UnaryOp::Neg,
                    expr: Box::new(other),
                },
            });
        }
        if self.eat_symbol(Symbol::Plus) {
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> ParseResult<Expr> {
        match self.peek().clone() {
            Token::Int(i) => {
                self.advance();
                Ok(Expr::Literal(Value::Int(i)))
            }
            Token::Float(x) => {
                self.advance();
                Ok(Expr::Literal(Value::Float(x)))
            }
            Token::Str(s) => {
                self.advance();
                Ok(Expr::Literal(Value::Str(s)))
            }
            Token::Param(n) => {
                self.advance();
                Ok(Expr::Parameter(n))
            }
            Token::Symbol(Symbol::LParen) => {
                self.advance();
                if self.peek().is_kw("select") {
                    let q = Box::new(self.select()?);
                    self.expect_symbol(Symbol::RParen)?;
                    Ok(Expr::ScalarSubquery(q))
                } else {
                    let e = self.expr()?;
                    self.expect_symbol(Symbol::RParen)?;
                    Ok(e)
                }
            }
            Token::Ident(name) => self.ident_led(name),
            other => Err(self.error(format!("expected expression, found {other:?}"))),
        }
    }

    fn ident_led(&mut self, name: String) -> ParseResult<Expr> {
        match name.as_str() {
            "null" => {
                self.advance();
                Ok(Expr::Literal(Value::Null))
            }
            "true" => {
                self.advance();
                Ok(Expr::Literal(Value::Bool(true)))
            }
            "false" => {
                self.advance();
                Ok(Expr::Literal(Value::Bool(false)))
            }
            "date" => {
                // `date '1994-01-01'` — fall back to a column named "date"
                // never happens in this dialect.
                self.advance();
                let text = self.string()?;
                let d = Date::parse(&text)
                    .ok_or_else(|| self.error(format!("bad date literal '{text}'")))?;
                Ok(Expr::Literal(Value::Date(d)))
            }
            "interval" => {
                self.advance();
                let text = self.string()?;
                let n: i32 = text
                    .trim()
                    .parse()
                    .map_err(|_| self.error(format!("bad interval quantity '{text}'")))?;
                let unit = self.ident()?;
                let iv = match unit.as_str() {
                    "day" | "days" => Interval::days(n),
                    "month" | "months" => Interval::months(n),
                    "year" | "years" => Interval::years(n),
                    other => return Err(self.error(format!("bad interval unit '{other}'"))),
                };
                Ok(Expr::Literal(Value::Interval(iv)))
            }
            "case" => {
                self.advance();
                let mut branches = Vec::new();
                while self.eat_kw("when") {
                    let cond = self.expr()?;
                    self.expect_kw("then")?;
                    let result = self.expr()?;
                    branches.push((cond, result));
                }
                let else_expr = if self.eat_kw("else") {
                    Some(Box::new(self.expr()?))
                } else {
                    None
                };
                self.expect_kw("end")?;
                if branches.is_empty() {
                    return Err(self.error("CASE requires at least one WHEN branch"));
                }
                Ok(Expr::Case {
                    branches,
                    else_expr,
                })
            }
            "exists" => {
                self.advance();
                self.expect_symbol(Symbol::LParen)?;
                let query = Box::new(self.select()?);
                self.expect_symbol(Symbol::RParen)?;
                Ok(Expr::Exists {
                    negated: false,
                    query,
                })
            }
            "not" if self.peek_is_not_exists() => {
                self.advance(); // not
                self.advance(); // exists
                self.expect_symbol(Symbol::LParen)?;
                let query = Box::new(self.select()?);
                self.expect_symbol(Symbol::RParen)?;
                Ok(Expr::Exists {
                    negated: true,
                    query,
                })
            }
            _ => {
                self.advance();
                // Function call?
                if self.eat_symbol(Symbol::LParen) {
                    if self.eat_symbol(Symbol::Star) {
                        self.expect_symbol(Symbol::RParen)?;
                        return Ok(Expr::Function {
                            name,
                            args: vec![],
                            distinct: false,
                            star: true,
                        });
                    }
                    let distinct = self.eat_kw("distinct");
                    let mut args = Vec::new();
                    if !self.eat_symbol(Symbol::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_symbol(Symbol::Comma) {
                                break;
                            }
                        }
                        self.expect_symbol(Symbol::RParen)?;
                    }
                    return Ok(Expr::Function {
                        name,
                        args,
                        distinct,
                        star: false,
                    });
                }
                // Qualified column?
                if self.eat_symbol(Symbol::Dot) {
                    let col = self.ident()?;
                    return Ok(Expr::Column(ColumnRef::qualified(name, col)));
                }
                Ok(Expr::Column(ColumnRef::new(name)))
            }
        }
    }
}

/// Keywords that terminate a bare select-item alias.
const RESERVED_AFTER_ITEM: &[&str] = &[
    "from", "where", "group", "having", "order", "limit", "as", "and", "or", "not", "between",
    "in", "like", "is", "asc", "desc", "union",
];

/// Keywords that terminate a bare table alias.
const RESERVED_AFTER_TABLE: &[&str] = &[
    "where", "group", "having", "order", "limit", "on", "join", "inner", "left", "right", "cross",
    "and", "or", "union", "set",
];

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(sql: &str) -> String {
        parse_statement(sql).unwrap().to_string()
    }

    #[test]
    fn simple_select() {
        let s = parse_statement("select a, b from t where a > 3").unwrap();
        match s {
            Statement::Select(sel) => {
                assert_eq!(sel.items.len(), 2);
                assert_eq!(sel.from.len(), 1);
                assert!(sel.selection.is_some());
            }
            _ => panic!("expected select"),
        }
    }

    #[test]
    fn select_rendered_sql_reparses() {
        let sql = "select l_returnflag, sum(l_quantity) as sum_qty from lineitem \
                   where l_shipdate <= date '1998-12-01' - interval '90' day \
                   group by l_returnflag order by l_returnflag limit 10";
        let once = roundtrip(sql);
        let twice = parse_statement(&once).unwrap().to_string();
        assert_eq!(once, twice);
    }

    #[test]
    fn parameter_placeholders_parse_and_roundtrip() {
        let e = parse_expression("k >= $1 and k < $2").unwrap();
        assert_eq!(e.to_string(), "((k >= $1) and (k < $2))");
        let sql = "select sum(v) as s from t where k >= $1 and k < $2";
        assert_eq!(
            roundtrip(sql),
            parse_statement(&roundtrip(sql)).unwrap().to_string()
        );
    }

    #[test]
    fn date_and_interval_literals() {
        let e = parse_expression("date '1994-01-01' + interval '1' year").unwrap();
        assert_eq!(e.to_string(), "(date '1994-01-01' + interval '1' year)");
    }

    #[test]
    fn between_and_in() {
        let e = parse_expression("x between 1 and 5 and y in (1, 2, 3)").unwrap();
        assert!(matches!(e, Expr::Binary { op: BinOp::And, .. }));
    }

    #[test]
    fn not_between() {
        let e = parse_expression("x not between 1 and 5").unwrap();
        assert!(matches!(e, Expr::Between { negated: true, .. }));
    }

    #[test]
    fn exists_and_not_exists() {
        let e = parse_expression("exists (select 1 from t)").unwrap();
        assert!(matches!(e, Expr::Exists { negated: false, .. }));
        let e = parse_expression("not exists (select 1 from t)").unwrap();
        assert!(matches!(e, Expr::Exists { negated: true, .. }));
    }

    #[test]
    fn in_subquery() {
        let e = parse_expression("x in (select y from t)").unwrap();
        assert!(matches!(e, Expr::InSubquery { negated: false, .. }));
    }

    #[test]
    fn scalar_subquery() {
        let e = parse_expression("(select max(y) from t)").unwrap();
        assert!(matches!(e, Expr::ScalarSubquery(_)));
    }

    #[test]
    fn case_expression() {
        let e =
            parse_expression("case when a = 1 then 'x' when a = 2 then 'y' else 'z' end").unwrap();
        match e {
            Expr::Case {
                branches,
                else_expr,
            } => {
                assert_eq!(branches.len(), 2);
                assert!(else_expr.is_some());
            }
            _ => panic!(),
        }
    }

    #[test]
    fn operator_precedence() {
        let e = parse_expression("1 + 2 * 3").unwrap();
        assert_eq!(e.to_string(), "(1 + (2 * 3))");
        let e = parse_expression("a or b and c").unwrap();
        assert_eq!(e.to_string(), "(a or (b and c))");
    }

    #[test]
    fn unary_minus_folds_into_literal() {
        let e = parse_expression("-5").unwrap();
        assert_eq!(e, Expr::Literal(Value::Int(-5)));
    }

    #[test]
    fn insert_multirow() {
        let s = parse_statement("insert into t (a, b) values (1, 'x'), (2, 'y')").unwrap();
        match s {
            Statement::Insert { rows, columns, .. } => {
                assert_eq!(rows.len(), 2);
                assert_eq!(columns, vec!["a", "b"]);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn delete_with_predicate() {
        let s = parse_statement("delete from orders where o_orderkey >= 100").unwrap();
        assert!(matches!(
            s,
            Statement::Delete {
                selection: Some(_),
                ..
            }
        ));
    }

    #[test]
    fn update_statement() {
        let s = parse_statement("update t set a = 1, b = b + 1 where c = 2").unwrap();
        match s {
            Statement::Update { assignments, .. } => assert_eq!(assignments.len(), 2),
            _ => panic!(),
        }
    }

    #[test]
    fn create_table_with_cluster() {
        let s = parse_statement(
            "create table orders (o_orderkey int not null, o_comment varchar(79), \
             primary key (o_orderkey)) clustered by (o_orderkey)",
        )
        .unwrap();
        match s {
            Statement::CreateTable {
                columns,
                primary_key,
                clustered_by,
                ..
            } => {
                assert_eq!(columns.len(), 2);
                assert_eq!(primary_key, vec!["o_orderkey"]);
                assert_eq!(clustered_by.as_deref(), Some("o_orderkey"));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn create_index() {
        let s = parse_statement("create index idx on lineitem (l_orderkey)").unwrap();
        assert!(matches!(s, Statement::CreateIndex { .. }));
    }

    #[test]
    fn set_statement_both_syntaxes() {
        assert_eq!(
            parse_statement("set enable_seqscan = off").unwrap(),
            Statement::Set {
                name: "enable_seqscan".into(),
                value: "off".into()
            }
        );
        assert!(parse_statement("set enable_seqscan to off").is_ok());
    }

    #[test]
    fn multi_statement_script() {
        let stmts = parse_statements("begin; insert into t values (1); commit;").unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn derived_table() {
        let s = parse_statement("select x from (select a as x from t) sub where x > 1").unwrap();
        match s {
            Statement::Select(sel) => {
                assert!(matches!(&sel.from[0], TableRef::Subquery { alias, .. } if alias == "sub"))
            }
            _ => panic!(),
        }
    }

    #[test]
    fn table_alias_forms() {
        let s = parse_statement("select l.l_orderkey from lineitem as l").unwrap();
        match s {
            Statement::Select(sel) => {
                assert_eq!(sel.from[0].binding_name(), "l");
            }
            _ => panic!(),
        }
    }

    #[test]
    fn error_messages_carry_offsets() {
        let err = parse_statement("select , from t").unwrap_err();
        assert!(err.offset > 0);
    }

    #[test]
    fn like_predicate() {
        let e = parse_expression("p_type like 'PROMO%'").unwrap();
        assert!(matches!(e, Expr::Like { negated: false, .. }));
        let e = parse_expression("p_type not like 'PROMO%'").unwrap();
        assert!(matches!(e, Expr::Like { negated: true, .. }));
    }

    #[test]
    fn count_star() {
        let e = parse_expression("count(*)").unwrap();
        assert!(matches!(e, Expr::Function { star: true, .. }));
    }

    #[test]
    fn count_distinct() {
        let e = parse_expression("count(distinct x)").unwrap();
        assert!(matches!(e, Expr::Function { distinct: true, .. }));
    }
}
