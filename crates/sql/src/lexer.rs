//! Hand-written SQL lexer.
//!
//! Keywords and identifiers are case-insensitive and normalized to lower
//! case, matching the behaviour the paper's middleware relies on when it
//! pattern-matches query text coming through the JDBC seam.

use crate::{ParseError, ParseResult};

/// A lexical token with its byte offset in the source.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword, lower-cased.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// Prepared-statement placeholder `$N` (1-based).
    Param(usize),
    /// Punctuation and operators.
    Symbol(Symbol),
    /// End of input.
    Eof,
}

/// Operator / punctuation tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Symbol {
    LParen,
    RParen,
    Comma,
    Semicolon,
    Star,
    Plus,
    Minus,
    Slash,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Dot,
}

impl Token {
    /// True if this token is the given keyword (already lower-cased).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s == kw)
    }
}

/// Tokenizer over SQL text. Produces a full token vector up front; SQL
/// statements in this system are short (kilobytes), so a streaming lexer
/// buys nothing.
pub struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    pub fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    /// Tokenizes the whole input, returning tokens paired with offsets.
    pub fn tokenize(mut self) -> ParseResult<Vec<(Token, usize)>> {
        let mut out = Vec::new();
        loop {
            self.skip_whitespace_and_comments();
            let start = self.pos;
            let tok = self.next_token()?;
            let done = tok == Token::Eof;
            out.push((tok, start));
            if done {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn skip_whitespace_and_comments(&mut self) {
        loop {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
                self.pos += 1;
            }
            if self.peek() == Some(b'-') && self.peek2() == Some(b'-') {
                while let Some(c) = self.peek() {
                    self.pos += 1;
                    if c == b'\n' {
                        break;
                    }
                }
            } else {
                return;
            }
        }
    }

    fn next_token(&mut self) -> ParseResult<Token> {
        let Some(c) = self.peek() else {
            return Ok(Token::Eof);
        };
        match c {
            b'(' => self.sym(Symbol::LParen),
            b')' => self.sym(Symbol::RParen),
            b',' => self.sym(Symbol::Comma),
            b';' => self.sym(Symbol::Semicolon),
            b'*' => self.sym(Symbol::Star),
            b'+' => self.sym(Symbol::Plus),
            b'-' => self.sym(Symbol::Minus),
            b'/' => self.sym(Symbol::Slash),
            b'.' => self.sym(Symbol::Dot),
            b'=' => self.sym(Symbol::Eq),
            b'<' => {
                self.pos += 1;
                match self.peek() {
                    Some(b'=') => {
                        self.pos += 1;
                        Ok(Token::Symbol(Symbol::LtEq))
                    }
                    Some(b'>') => {
                        self.pos += 1;
                        Ok(Token::Symbol(Symbol::NotEq))
                    }
                    _ => Ok(Token::Symbol(Symbol::Lt)),
                }
            }
            b'>' => {
                self.pos += 1;
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    Ok(Token::Symbol(Symbol::GtEq))
                } else {
                    Ok(Token::Symbol(Symbol::Gt))
                }
            }
            b'!' => {
                self.pos += 1;
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    Ok(Token::Symbol(Symbol::NotEq))
                } else {
                    Err(ParseError::new("unexpected '!'", self.pos - 1))
                }
            }
            b'\'' => self.string_literal(),
            b'$' => self.parameter(),
            b'0'..=b'9' => self.number(),
            c if c == b'_' || c.is_ascii_alphabetic() => self.ident(),
            other => Err(ParseError::new(
                format!("unexpected character {:?}", other as char),
                self.pos,
            )),
        }
    }

    fn sym(&mut self, s: Symbol) -> ParseResult<Token> {
        self.pos += 1;
        Ok(Token::Symbol(s))
    }

    fn string_literal(&mut self) -> ParseResult<Token> {
        let start = self.pos;
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(ParseError::new("unterminated string literal", start)),
                Some(b'\'') => {
                    if self.peek2() == Some(b'\'') {
                        out.push('\'');
                        self.pos += 2;
                    } else {
                        self.pos += 1;
                        return Ok(Token::Str(out));
                    }
                }
                Some(_) => {
                    // Advance over a full UTF-8 code point.
                    let rest = &self.src[self.pos..];
                    let ch = rest.chars().next().expect("peek saw a byte");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parameter(&mut self) -> ParseResult<Token> {
        let start = self.pos;
        self.pos += 1; // '$'
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(ParseError::new("expected digits after '$'", start));
        }
        let n: usize = self.src[digits_start..self.pos]
            .parse()
            .map_err(|e| ParseError::new(format!("bad parameter number: {e}"), start))?;
        if n == 0 {
            return Err(ParseError::new("parameter numbers are 1-based", start));
        }
        Ok(Token::Param(n))
    }

    fn number(&mut self) -> ParseResult<Token> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') && matches!(self.peek2(), Some(b'0'..=b'9')) {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            let save = self.pos;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if matches!(self.peek(), Some(b'0'..=b'9')) {
                is_float = true;
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            } else {
                self.pos = save; // `e` starts an identifier, not an exponent
            }
        }
        let text = &self.src[start..self.pos];
        if is_float {
            text.parse::<f64>()
                .map(Token::Float)
                .map_err(|e| ParseError::new(format!("bad float literal: {e}"), start))
        } else {
            text.parse::<i64>()
                .map(Token::Int)
                .map_err(|e| ParseError::new(format!("bad integer literal: {e}"), start))
        }
    }

    fn ident(&mut self) -> ParseResult<Token> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c == b'_' || c.is_ascii_alphanumeric()) {
            self.pos += 1;
        }
        Ok(Token::Ident(self.src[start..self.pos].to_ascii_lowercase()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex(s: &str) -> Vec<Token> {
        Lexer::new(s)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|(t, _)| t)
            .collect()
    }

    #[test]
    fn keywords_lowercased() {
        assert_eq!(
            lex("SELECT foo"),
            vec![
                Token::Ident("select".into()),
                Token::Ident("foo".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn numbers_int_and_float() {
        assert_eq!(
            lex("42 4.5 1e3"),
            vec![
                Token::Int(42),
                Token::Float(4.5),
                Token::Float(1000.0),
                Token::Eof
            ]
        );
    }

    #[test]
    fn e_suffix_without_digits_is_ident() {
        // "12ex" lexes as the number 12 followed by identifier "ex".
        assert_eq!(
            lex("12ex"),
            vec![Token::Int(12), Token::Ident("ex".into()), Token::Eof]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(lex("'it''s'"), vec![Token::Str("it's".into()), Token::Eof]);
    }

    #[test]
    fn operators() {
        assert_eq!(
            lex("<= <> >= != = < >"),
            vec![
                Token::Symbol(Symbol::LtEq),
                Token::Symbol(Symbol::NotEq),
                Token::Symbol(Symbol::GtEq),
                Token::Symbol(Symbol::NotEq),
                Token::Symbol(Symbol::Eq),
                Token::Symbol(Symbol::Lt),
                Token::Symbol(Symbol::Gt),
                Token::Eof
            ]
        );
    }

    #[test]
    fn line_comments_skipped() {
        assert_eq!(
            lex("select -- comment\n 1"),
            vec![Token::Ident("select".into()), Token::Int(1), Token::Eof]
        );
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(Lexer::new("'oops").tokenize().is_err());
    }

    #[test]
    fn parameter_placeholders() {
        assert_eq!(
            lex("$1 $23"),
            vec![Token::Param(1), Token::Param(23), Token::Eof]
        );
        assert!(Lexer::new("$").tokenize().is_err());
        assert!(Lexer::new("$0").tokenize().is_err());
        assert!(Lexer::new("$x").tokenize().is_err());
    }

    #[test]
    fn offsets_recorded() {
        let toks = Lexer::new("a  bc").tokenize().unwrap();
        assert_eq!(toks[0].1, 0);
        assert_eq!(toks[1].1, 3);
    }
}
