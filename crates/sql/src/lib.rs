//! SQL front end for the Apuama database-cluster reproduction.
//!
//! This crate provides the pieces every other layer builds on:
//!
//! * [`Value`] — the dynamic scalar type flowing through the system
//!   (integers, floats, strings, dates, intervals, booleans, NULL),
//! * a hand-written [`lexer`] and recursive-descent [`parser`] for the SQL
//!   dialect used by the TPC-H evaluation queries (SELECT with joins,
//!   aggregates, GROUP BY / HAVING / ORDER BY / LIMIT, EXISTS / IN /
//!   scalar subqueries, CASE, BETWEEN, LIKE, date/interval arithmetic)
//!   plus the DML/DDL and session statements the cluster needs
//!   (INSERT, DELETE, UPDATE, CREATE TABLE/INDEX, SET, BEGIN/COMMIT/ROLLBACK),
//! * an [`ast`] whose `Display` implementation renders back to parseable SQL —
//!   the property the SVP rewriter depends on (rewrite the tree, re-render,
//!   ship the text to a backend), and
//! * [`visit`] — read-only walkers and in-place mutators used by the
//!   Apuama query parser (table-reference discovery) and the SVP rewriter
//!   (range-predicate injection, aggregate decomposition).
//!
//! The dialect deliberately mirrors what the paper's middleware needed from
//! JDBC-reachable DBMSs: enough SQL to run TPC-H queries Q1, Q3, Q4, Q5, Q6,
//! Q12, Q14 and Q21 and the RF1/RF2 refresh streams, nothing more exotic.

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod value;
pub mod visit;

pub use ast::{
    BinOp, ColumnDef, ColumnRef, DataType, Expr, OrderByItem, Select, SelectItem, SetQuantifier,
    Statement, TableRef, UnaryOp,
};
pub use lexer::{Lexer, Token};
pub use parser::{parse_expression, parse_statement, parse_statements, Parser};
pub use value::{Date, HashableValue, Interval, Value};

/// Errors produced while lexing or parsing SQL text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Byte offset into the source text where the error was detected.
    pub offset: usize,
}

impl ParseError {
    pub(crate) fn new(message: impl Into<String>, offset: usize) -> Self {
        Self {
            message: message.into(),
            offset,
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Result alias used throughout the crate.
pub type ParseResult<T> = Result<T, ParseError>;
