//! Typed abstract syntax tree for the supported SQL dialect.
//!
//! Every node implements `Display`, rendering back to SQL that this crate's
//! own parser accepts. That round-trip property (checked by property tests)
//! is what lets the Apuama SVP rewriter operate on trees and ship text to
//! black-box backends, exactly as the paper's middleware does with JDBC.

use crate::value::Value;
use std::fmt;

/// A possibly-qualified column reference (`l_orderkey`, `l.l_orderkey`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    /// Optional table name or alias qualifier.
    pub table: Option<String>,
    /// Column name (stored lower-cased by the parser).
    pub column: String,
}

impl ColumnRef {
    /// Unqualified reference.
    pub fn new(column: impl Into<String>) -> Self {
        ColumnRef {
            table: None,
            column: column.into(),
        }
    }

    /// Qualified reference.
    pub fn qualified(table: impl Into<String>, column: impl Into<String>) -> Self {
        ColumnRef {
            table: Some(table.into()),
            column: column.into(),
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.column),
            None => f.write_str(&self.column),
        }
    }
}

/// Binary operators, in SQL notation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
}

impl BinOp {
    /// Operator token as it appears in SQL text.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Eq => "=",
            BinOp::NotEq => "<>",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::And => "and",
            BinOp::Or => "or",
        }
    }

    /// True for comparison operators producing booleans.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    Neg,
    Not,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference.
    Column(ColumnRef),
    /// Literal value (including dates and intervals).
    Literal(Value),
    /// Prepared-statement placeholder `$N` (1-based), bound at execution.
    Parameter(usize),
    /// Unary operation.
    Unary { op: UnaryOp, expr: Box<Expr> },
    /// Binary operation.
    Binary {
        left: Box<Expr>,
        op: BinOp,
        right: Box<Expr>,
    },
    /// Function call — aggregates (`sum`, `avg`, `count`, `min`, `max`) and
    /// scalar helpers (`extract_year`, `substring`). `count(*)` is a call
    /// with `star = true`.
    Function {
        name: String,
        args: Vec<Expr>,
        distinct: bool,
        star: bool,
    },
    /// Searched CASE expression.
    Case {
        branches: Vec<(Expr, Expr)>,
        else_expr: Option<Box<Expr>>,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        expr: Box<Expr>,
        negated: bool,
        low: Box<Expr>,
        high: Box<Expr>,
    },
    /// `expr [NOT] IN (list...)`.
    InList {
        expr: Box<Expr>,
        negated: bool,
        list: Vec<Expr>,
    },
    /// `expr [NOT] IN (subquery)`.
    InSubquery {
        expr: Box<Expr>,
        negated: bool,
        query: Box<Select>,
    },
    /// `[NOT] EXISTS (subquery)`.
    Exists { negated: bool, query: Box<Select> },
    /// Scalar subquery used as a value.
    ScalarSubquery(Box<Select>),
    /// `expr [NOT] LIKE pattern` (pattern is `%`/`_` SQL syntax).
    Like {
        expr: Box<Expr>,
        negated: bool,
        pattern: Box<Expr>,
    },
    /// `expr IS [NOT] NULL`.
    IsNull { expr: Box<Expr>, negated: bool },
}

impl Expr {
    /// Convenience constructor: `left op right`.
    pub fn binary(left: Expr, op: BinOp, right: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(left),
            op,
            right: Box::new(right),
        }
    }

    /// Convenience constructor: column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column(ColumnRef::new(name))
    }

    /// Convenience constructor: literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// Conjoins two predicates (`a AND b`).
    pub fn and(self, other: Expr) -> Expr {
        Expr::binary(self, BinOp::And, other)
    }

    /// True if the expression contains any aggregate function call at the
    /// top level of this expression tree (not descending into subqueries,
    /// where aggregates belong to the inner query).
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Function { name, .. } if is_aggregate_name(name) => true,
            Expr::Function { args, .. } => args.iter().any(Expr::contains_aggregate),
            Expr::Unary { expr, .. } => expr.contains_aggregate(),
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::Case {
                branches,
                else_expr,
            } => {
                branches
                    .iter()
                    .any(|(c, r)| c.contains_aggregate() || r.contains_aggregate())
                    || else_expr.as_ref().is_some_and(|e| e.contains_aggregate())
            }
            Expr::Between {
                expr, low, high, ..
            } => expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate(),
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::Like { expr, pattern, .. } => {
                expr.contains_aggregate() || pattern.contains_aggregate()
            }
            Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            Expr::InSubquery { expr, .. } => expr.contains_aggregate(),
            Expr::Exists { .. } | Expr::ScalarSubquery(_) => false,
            Expr::Column(_) | Expr::Literal(_) | Expr::Parameter(_) => false,
        }
    }
}

/// Returns true for the five aggregate function names of the dialect.
pub fn is_aggregate_name(name: &str) -> bool {
    matches!(name, "sum" | "avg" | "count" | "min" | "max")
}

/// An item in the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `expr [AS alias]`.
    Expr { expr: Expr, alias: Option<String> },
    /// `*`.
    Wildcard,
}

impl SelectItem {
    /// The output column name for this item, mirroring common DBMS rules:
    /// the alias if present, the column name for bare references, otherwise
    /// a positional name supplied by the caller.
    pub fn output_name(&self, position: usize) -> String {
        match self {
            SelectItem::Expr { alias: Some(a), .. } => a.clone(),
            SelectItem::Expr {
                expr: Expr::Column(c),
                ..
            } => c.column.clone(),
            SelectItem::Expr {
                expr: Expr::Function { name, .. },
                ..
            } => format!("{name}_{position}"),
            _ => format!("col_{position}"),
        }
    }
}

/// DISTINCT / ALL quantifier on a SELECT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SetQuantifier {
    #[default]
    All,
    Distinct,
}

/// A table reference in the FROM clause.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// Base table with optional alias.
    Table { name: String, alias: Option<String> },
    /// Derived table `(SELECT ...) alias`.
    Subquery { query: Box<Select>, alias: String },
}

impl TableRef {
    /// The name this relation is referred to by in the rest of the query.
    pub fn binding_name(&self) -> &str {
        match self {
            TableRef::Table { name, alias } => alias.as_deref().unwrap_or(name),
            TableRef::Subquery { alias, .. } => alias,
        }
    }
}

/// Sort direction plus expression for ORDER BY.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderByItem {
    pub expr: Expr,
    pub desc: bool,
}

/// A SELECT statement (comma-join FROM list, as the TPC-H queries use).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Select {
    pub quantifier: SetQuantifier,
    pub items: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    pub selection: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    pub order_by: Vec<OrderByItem>,
    pub limit: Option<u64>,
}

/// Column definition inside CREATE TABLE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    pub name: String,
    pub data_type: DataType,
    pub not_null: bool,
}

/// Storage data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Int,
    Float,
    Text,
    Date,
    Bool,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Text => "text",
            DataType::Date => "date",
            DataType::Bool => "bool",
        };
        f.write_str(s)
    }
}

/// Top-level statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Select(Select),
    /// `EXPLAIN [ANALYZE] <statement>` — the engine renders the plan.
    /// Plain `EXPLAIN` never executes; `EXPLAIN ANALYZE` executes the
    /// inner statement and annotates each operator with actual row counts
    /// and timings.
    Explain {
        analyze: bool,
        inner: Box<Statement>,
    },
    Insert {
        table: String,
        columns: Vec<String>,
        rows: Vec<Vec<Expr>>,
    },
    Delete {
        table: String,
        selection: Option<Expr>,
    },
    Update {
        table: String,
        assignments: Vec<(String, Expr)>,
        selection: Option<Expr>,
    },
    CreateTable {
        name: String,
        columns: Vec<ColumnDef>,
        /// PRIMARY KEY column list (also the clustering key when
        /// `clustered` is set).
        primary_key: Vec<String>,
        /// `CLUSTERED BY (col)` — physical ordering attribute; Apuama's SVP
        /// requires fact tables clustered by the VPA.
        clustered_by: Option<String>,
    },
    CreateIndex {
        name: String,
        table: String,
        column: String,
    },
    /// Session setting (`SET enable_seqscan = off`). The value is kept as a
    /// raw token: engines interpret it.
    Set {
        name: String,
        value: String,
    },
    Begin,
    Commit,
    Rollback,
}

impl Statement {
    /// True for statements that modify data (drive the cluster's write path).
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            Statement::Insert { .. }
                | Statement::Delete { .. }
                | Statement::Update { .. }
                | Statement::CreateTable { .. }
                | Statement::CreateIndex { .. }
        )
    }

    /// True for EXPLAIN (plain EXPLAIN never executes its inner
    /// statement; EXPLAIN ANALYZE does, to measure it).
    pub fn is_explain(&self) -> bool {
        matches!(self, Statement::Explain { .. })
    }

    /// True for plain read queries.
    pub fn is_read(&self) -> bool {
        matches!(self, Statement::Select(_))
    }
}

// ---------------------------------------------------------------------------
// Display: render the AST back to parseable SQL.
// ---------------------------------------------------------------------------

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Parameter(n) => write!(f, "${n}"),
            Expr::Unary { op, expr } => match op {
                UnaryOp::Neg => write!(f, "(- {expr})"),
                UnaryOp::Not => write!(f, "(not {expr})"),
            },
            Expr::Binary { left, op, right } => {
                write!(f, "({left} {} {right})", op.symbol())
            }
            Expr::Function {
                name,
                args,
                distinct,
                star,
            } => {
                if *star {
                    write!(f, "{name}(*)")
                } else {
                    write!(f, "{name}(")?;
                    if *distinct {
                        write!(f, "distinct ")?;
                    }
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{a}")?;
                    }
                    write!(f, ")")
                }
            }
            Expr::Case {
                branches,
                else_expr,
            } => {
                write!(f, "case")?;
                for (cond, result) in branches {
                    write!(f, " when {cond} then {result}")?;
                }
                if let Some(e) = else_expr {
                    write!(f, " else {e}")?;
                }
                write!(f, " end")
            }
            Expr::Between {
                expr,
                negated,
                low,
                high,
            } => write!(
                f,
                "({expr} {}between {low} and {high})",
                if *negated { "not " } else { "" }
            ),
            Expr::InList {
                expr,
                negated,
                list,
            } => {
                write!(f, "({expr} {}in (", if *negated { "not " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "))")
            }
            Expr::InSubquery {
                expr,
                negated,
                query,
            } => write!(
                f,
                "({expr} {}in ({query}))",
                if *negated { "not " } else { "" }
            ),
            Expr::Exists { negated, query } => {
                write!(
                    f,
                    "({}exists ({query}))",
                    if *negated { "not " } else { "" }
                )
            }
            Expr::ScalarSubquery(q) => write!(f, "({q})"),
            Expr::Like {
                expr,
                negated,
                pattern,
            } => write!(
                f,
                "({expr} {}like {pattern})",
                if *negated { "not " } else { "" }
            ),
            Expr::IsNull { expr, negated } => {
                write!(f, "({expr} is {}null)", if *negated { "not " } else { "" })
            }
        }
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Expr { expr, alias: None } => write!(f, "{expr}"),
            SelectItem::Expr {
                expr,
                alias: Some(a),
            } => write!(f, "{expr} as {a}"),
            SelectItem::Wildcard => write!(f, "*"),
        }
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableRef::Table { name, alias: None } => write!(f, "{name}"),
            TableRef::Table {
                name,
                alias: Some(a),
            } => write!(f, "{name} {a}"),
            TableRef::Subquery { query, alias } => write!(f, "({query}) {alias}"),
        }
    }
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "select ")?;
        if self.quantifier == SetQuantifier::Distinct {
            write!(f, "distinct ")?;
        }
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        if !self.from.is_empty() {
            write!(f, " from ")?;
            for (i, t) in self.from.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{t}")?;
            }
        }
        if let Some(w) = &self.selection {
            write!(f, " where {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " group by ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " having {h}")?;
        }
        if !self.order_by.is_empty() {
            write!(f, " order by ")?;
            for (i, o) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", o.expr)?;
                if o.desc {
                    write!(f, " desc")?;
                }
            }
        }
        if let Some(l) = self.limit {
            write!(f, " limit {l}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Select(s) => write!(f, "{s}"),
            Statement::Explain { analyze, inner } => {
                if *analyze {
                    write!(f, "explain analyze {inner}")
                } else {
                    write!(f, "explain {inner}")
                }
            }
            Statement::Insert {
                table,
                columns,
                rows,
            } => {
                write!(f, "insert into {table}")?;
                if !columns.is_empty() {
                    write!(f, " ({})", columns.join(", "))?;
                }
                write!(f, " values ")?;
                for (i, row) in rows.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "(")?;
                    for (j, e) in row.iter().enumerate() {
                        if j > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{e}")?;
                    }
                    write!(f, ")")?;
                }
                Ok(())
            }
            Statement::Delete { table, selection } => {
                write!(f, "delete from {table}")?;
                if let Some(w) = selection {
                    write!(f, " where {w}")?;
                }
                Ok(())
            }
            Statement::Update {
                table,
                assignments,
                selection,
            } => {
                write!(f, "update {table} set ")?;
                for (i, (c, e)) in assignments.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{c} = {e}")?;
                }
                if let Some(w) = selection {
                    write!(f, " where {w}")?;
                }
                Ok(())
            }
            Statement::CreateTable {
                name,
                columns,
                primary_key,
                clustered_by,
            } => {
                write!(f, "create table {name} (")?;
                for (i, c) in columns.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{} {}", c.name, c.data_type)?;
                    if c.not_null {
                        write!(f, " not null")?;
                    }
                }
                if !primary_key.is_empty() {
                    write!(f, ", primary key ({})", primary_key.join(", "))?;
                }
                write!(f, ")")?;
                if let Some(c) = clustered_by {
                    write!(f, " clustered by ({c})")?;
                }
                Ok(())
            }
            Statement::CreateIndex {
                name,
                table,
                column,
            } => write!(f, "create index {name} on {table} ({column})"),
            Statement::Set { name, value } => write!(f, "set {name} = {value}"),
            Statement::Begin => write!(f, "begin"),
            Statement::Commit => write!(f, "commit"),
            Statement::Rollback => write!(f, "rollback"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_ref_display() {
        assert_eq!(ColumnRef::new("l_orderkey").to_string(), "l_orderkey");
        assert_eq!(
            ColumnRef::qualified("l", "l_orderkey").to_string(),
            "l.l_orderkey"
        );
    }

    #[test]
    fn expr_builders_render() {
        let e = Expr::col("a").and(Expr::binary(Expr::col("b"), BinOp::Lt, Expr::lit(3i64)));
        assert_eq!(e.to_string(), "(a and (b < 3))");
    }

    #[test]
    fn aggregate_detection() {
        let e = Expr::binary(
            Expr::Function {
                name: "sum".into(),
                args: vec![Expr::col("x")],
                distinct: false,
                star: false,
            },
            BinOp::Div,
            Expr::lit(7i64),
        );
        assert!(e.contains_aggregate());
        assert!(!Expr::col("x").contains_aggregate());
    }

    #[test]
    fn exists_subquery_does_not_leak_aggregates() {
        let inner = Select {
            items: vec![SelectItem::Expr {
                expr: Expr::Function {
                    name: "count".into(),
                    args: vec![],
                    distinct: false,
                    star: true,
                },
                alias: None,
            }],
            ..Select::default()
        };
        let e = Expr::Exists {
            negated: false,
            query: Box::new(inner),
        };
        assert!(!e.contains_aggregate());
    }

    #[test]
    fn statement_write_classification() {
        assert!(!Statement::Begin.is_write());
        assert!(Statement::Delete {
            table: "t".into(),
            selection: None
        }
        .is_write());
        assert!(Statement::Select(Select::default()).is_read());
    }
}
