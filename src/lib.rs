//! Umbrella crate for the Apuama reproduction workspace.
//!
//! Re-exports every layer so the `examples/` binaries and the cross-crate
//! integration tests in `tests/` have a single dependency surface. The
//! interesting code lives in the member crates:
//!
//! * [`sql`] — SQL front end (lexer, parser, AST, pretty-printer),
//! * [`storage`] — paged heaps, B-tree indexes, LRU buffer pool,
//! * [`engine`] — the single-node RDBMS each cluster node runs,
//! * [`tpch`] — TPC-H schema, generator, queries, refresh streams,
//! * [`cjdbc`] — the C-JDBC-style cluster controller substrate,
//! * [`apuama`] — the paper's contribution: SVP intra-query parallelism,
//! * [`sim`] — the discrete-event cluster simulator and cost model.

pub use apuama;
pub use apuama_cjdbc as cjdbc;
pub use apuama_engine as engine;
pub use apuama_sim as sim;
pub use apuama_sql as sql;
pub use apuama_storage as storage;
pub use apuama_tpch as tpch;
