#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 build + test pass.
# Run from the repository root before pushing.
set -euo pipefail
cd "$(dirname "$0")"

# Every suite runs under a hard wall-clock timeout: a hang (a worker that
# never observes its cancel token, an admission queue that never wakes) is
# a FAILURE here, not a stuck pipeline. `timeout` exits 124 on expiry,
# which trips `set -e`.
SUITE_TIMEOUT=${SUITE_TIMEOUT:-900}
BUILD_TIMEOUT=${BUILD_TIMEOUT:-1800}

echo "== cargo fmt --check =="
timeout "$BUILD_TIMEOUT" cargo fmt --check

echo "== cargo clippy (workspace, all targets, warnings are errors) =="
timeout "$BUILD_TIMEOUT" cargo clippy --workspace --all-targets -- -D warnings

echo "== explain analyze smoke: per-operator timing harness =="
timeout "$SUITE_TIMEOUT" cargo test -q --test explain_analyze

echo "== tier-1: cargo build --release && cargo test -q =="
timeout "$BUILD_TIMEOUT" cargo build --release
timeout "$BUILD_TIMEOUT" cargo test -q

echo "== operator pipeline: byte-identity property suite =="
timeout "$SUITE_TIMEOUT" cargo test -q --test property_operators

echo "== fault injection: retry/reassignment/breaker suite =="
timeout "$SUITE_TIMEOUT" cargo test -q --test fault_tolerance
timeout "$SUITE_TIMEOUT" cargo test -q -p apuama --lib fault
timeout "$SUITE_TIMEOUT" cargo test -q -p apuama-cjdbc --lib -- "fault::" "health::"

echo "== recovery: log/rejoin/re-clone suite =="
timeout "$SUITE_TIMEOUT" cargo test -q --test recovery_rejoin
timeout "$SUITE_TIMEOUT" cargo test -q -p apuama-cjdbc --lib -- "recovery::"
timeout "$SUITE_TIMEOUT" cargo test -q -p apuama-sim --lib -- "recovery::"

echo "== parallel: morsel-driven byte-identity suite (DESIGN.md §12) =="
timeout "$SUITE_TIMEOUT" cargo test -q -p apuama-engine --test parallel_identity
timeout "$SUITE_TIMEOUT" cargo test -q -p apuama-engine --lib parallel

echo "== governance: cancellation/deadline/budget/admission suite (DESIGN.md §11) =="
timeout "$SUITE_TIMEOUT" cargo test -q -p apuama-engine --lib governor
timeout "$SUITE_TIMEOUT" cargo test -q -p apuama-engine --test cancellation_identity
timeout "$SUITE_TIMEOUT" cargo test -q -p apuama --lib governance
timeout "$SUITE_TIMEOUT" cargo test -q -p apuama-cjdbc --lib -- "admission::" "governance"

echo "== overload_soak: open-loop burst must shed, not hang =="
timeout "$SUITE_TIMEOUT" cargo test -q -p apuama-cjdbc --test overload_soak
timeout "$SUITE_TIMEOUT" cargo test -q -p apuama-sim --lib -- "overload"

echo "== bench_smoke: prepared-plan and fused-kernel micro arms =="
timeout "$SUITE_TIMEOUT" cargo bench -p apuama-bench --bench prepared -- 100
cat BENCH_prepared.json

echo "== bench_smoke: operator_pipeline arm =="
timeout "$SUITE_TIMEOUT" cargo bench -p apuama-bench --bench operators -- 100
cat BENCH_operators.json

echo "== perf gate: unified pipeline must not regress below the seed =="
bench_cores=$(sed -n 's/.*"cores": \([0-9]*\).*/\1/p' BENCH_operators.json)
pipeline_speedup=$(sed -n 's/.*"pipeline_speedup_vs_seed": \([0-9.]*\).*/\1/p' BENCH_operators.json)
if [ "$bench_cores" -ge 2 ]; then
  if ! awk -v s="$pipeline_speedup" 'BEGIN { exit !(s >= 1.0) }'; then
    echo "FAIL: pipeline_speedup_vs_seed = $pipeline_speedup < 1.0 — the general"
    echo "      operator pipeline is slower than the seed interpreter again."
    exit 1
  fi
  echo "perf gate: pipeline_speedup_vs_seed = $pipeline_speedup >= 1.0 on $bench_cores cores"
else
  echo "perf gate: skipped (single core — one noisy scheduler tick swamps the"
  echo "           microsecond arms; pipeline_speedup_vs_seed = $pipeline_speedup recorded only)"
fi

echo "== bench_smoke: parallel_pipeline arm =="
timeout "$SUITE_TIMEOUT" cargo bench -p apuama-bench --bench parallel -- 100
cat BENCH_parallel.json

echo "== perf gate: morsel parallelism must pay for itself on multi-core =="
bench_cores=$(sed -n 's/.*"cores": \([0-9]*\).*/\1/p' BENCH_parallel.json)
parallel_speedup=$(sed -n 's/.*"parallel_speedup_vs_serial": \([0-9.]*\).*/\1/p' BENCH_parallel.json)
if [ "$bench_cores" -ge 2 ]; then
  if ! awk -v s="$parallel_speedup" 'BEGIN { exit !(s >= 1.0) }'; then
    echo "FAIL: parallel_speedup_vs_serial = $parallel_speedup < 1.0 on a"
    echo "      $bench_cores-core machine — morsel workers are slower than serial."
    exit 1
  fi
  echo "perf gate: parallel_speedup_vs_serial = $parallel_speedup >= 1.0 on $bench_cores cores"
else
  echo "perf gate: skipped (single core — morsel workers share one core, so the"
  echo "           coordinator can only add overhead; parallel_speedup_vs_serial = $parallel_speedup recorded only)"
fi

echo "== bench_smoke: columnar_pipeline arm (DESIGN.md §13) =="
timeout "$SUITE_TIMEOUT" cargo bench -p apuama-bench --bench columnar -- 100
cat BENCH_columnar.json

echo "== perf gate: columnar fold must not regress below the row pipeline =="
bench_cores=$(sed -n 's/.*"cores": \([0-9]*\).*/\1/p' BENCH_columnar.json)
columnar_speedup=$(sed -n 's/.*"columnar_speedup_vs_row_pipeline": \([0-9.]*\).*/\1/p' BENCH_columnar.json)
if [ "$bench_cores" -ge 2 ]; then
  if ! awk -v s="$columnar_speedup" 'BEGIN { exit !(s >= 1.0) }'; then
    echo "FAIL: columnar_speedup_vs_row_pipeline = $columnar_speedup < 1.0 — the"
    echo "      typed column-vector fold is slower than the row-batch pipeline."
    exit 1
  fi
  echo "perf gate: columnar_speedup_vs_row_pipeline = $columnar_speedup >= 1.0 on $bench_cores cores"
else
  echo "perf gate: skipped (single core — one noisy scheduler tick swamps the"
  echo "           microsecond arms; columnar_speedup_vs_row_pipeline = $columnar_speedup recorded only)"
fi

echo "ci: all green"
