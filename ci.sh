#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 build + test pass.
# Run from the repository root before pushing.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (workspace, all targets, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== explain analyze smoke: per-operator timing harness =="
cargo test -q --test explain_analyze

echo "== tier-1: cargo build --release && cargo test -q =="
cargo build --release
cargo test -q

echo "== operator pipeline: byte-identity property suite =="
cargo test -q --test property_operators

echo "== fault injection: retry/reassignment/breaker suite =="
cargo test -q --test fault_tolerance
cargo test -q -p apuama --lib fault
cargo test -q -p apuama-cjdbc --lib -- "fault::" "health::"

echo "== recovery: log/rejoin/re-clone suite =="
cargo test -q --test recovery_rejoin
cargo test -q -p apuama-cjdbc --lib -- "recovery::"
cargo test -q -p apuama-sim --lib -- "recovery::"

echo "== bench_smoke: prepared-plan and fused-kernel micro arms =="
cargo bench -p apuama-bench --bench prepared -- 100
cat BENCH_prepared.json

echo "== bench_smoke: operator_pipeline arm =="
cargo bench -p apuama-bench --bench operators -- 100
cat BENCH_operators.json

echo "== perf gate: unified pipeline must not regress below the seed =="
pipeline_speedup=$(sed -n 's/.*"pipeline_speedup_vs_seed": \([0-9.]*\).*/\1/p' BENCH_operators.json)
if ! awk -v s="$pipeline_speedup" 'BEGIN { exit !(s >= 1.0) }'; then
  echo "FAIL: pipeline_speedup_vs_seed = $pipeline_speedup < 1.0 — the general"
  echo "      operator pipeline is slower than the seed interpreter again."
  exit 1
fi
echo "perf gate: pipeline_speedup_vs_seed = $pipeline_speedup >= 1.0"

echo "ci: all green"
