//! Offline micro-benchmark harness exposing the subset of the Criterion API
//! this workspace uses. Each benchmark routine is executed for a small,
//! fixed number of timed iterations and the mean is printed — enough to
//! smoke-run every bench target and produce rough relative numbers without
//! the statistics machinery of the real crate.

use std::fmt::Display;
use std::time::Instant;

const WARMUP_ITERS: u64 = 1;
const SAMPLE_ITERS: u64 = 3;

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId { id: name.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> BenchmarkId {
        BenchmarkId { id: name }
    }
}

/// Batch-size hint for [`Bencher::iter_batched`]; ignored by this shim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    elapsed_ns: u128,
    iters: u64,
}

impl Bencher {
    fn new() -> Bencher {
        Bencher {
            elapsed_ns: 0,
            iters: 0,
        }
    }

    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..SAMPLE_ITERS {
            std::hint::black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
        self.iters = SAMPLE_ITERS;
    }

    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..WARMUP_ITERS {
            let input = setup();
            std::hint::black_box(routine(input));
        }
        let mut total = 0u128;
        for _ in 0..SAMPLE_ITERS {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed().as_nanos();
        }
        self.elapsed_ns = total;
        self.iters = SAMPLE_ITERS;
    }
}

fn report(id: &str, b: &Bencher) {
    let per_iter_ns = if b.iters == 0 {
        0.0
    } else {
        b.elapsed_ns as f64 / b.iters as f64
    };
    println!("bench {id:<48} {:>12.1} µs/iter", per_iter_ns / 1_000.0);
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Criterion {
        let mut b = Bencher::new();
        f(&mut b);
        report(id, &b);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new();
        f(&mut b);
        report(&format!("{}/{}", self.name, id.id), &b);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new();
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), &b);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion;
        let mut runs = 0u64;
        c.bench_function("counts", |b| b.iter(|| runs += 1));
        assert!(runs >= WARMUP_ITERS + SAMPLE_ITERS);
    }

    #[test]
    fn groups_and_batched_iteration() {
        let mut c = Criterion;
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        group.bench_with_input(BenchmarkId::from_parameter(4), &4usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }
}
