//! Offline shim exposing the `crossbeam::channel` subset this workspace
//! uses, backed by `std::sync::mpsc`. Senders clone; receivers iterate until
//! every sender is dropped — the properties the streaming composition
//! pipeline in `apuama::engine` depends on.

pub mod channel {
    use std::fmt;
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender")
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver")
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::Iter<'a, T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.iter()
        }
    }

    /// Unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::unbounded;

        #[test]
        fn iteration_ends_when_all_senders_drop() {
            let (tx, rx) = unbounded();
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let tx = tx.clone();
                    std::thread::spawn(move || tx.send(i).unwrap())
                })
                .collect();
            drop(tx);
            let mut got: Vec<i32> = rx.iter().collect();
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 2, 3]);
            for h in handles {
                h.join().unwrap();
            }
        }
    }
}
