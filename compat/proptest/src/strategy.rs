//! Strategies: composable random-value generators.

use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::ops::Range;
use std::sync::Arc;

use crate::test_runner::TestRng;
use rand::RngExt;

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Recursive strategy: applies `recurse` up to `depth` times around the
    /// base strategy. `desired_size` / `expected_branch_size` are accepted
    /// for API compatibility; recursion depth alone bounds output size here.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        Recursive {
            base: self.boxed(),
            recurse: Arc::new(move |inner| recurse(inner).boxed()),
            depth,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// `prop_map` combinator.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct OneOf<T>(Vec<BoxedStrategy<T>>);

impl<T> Clone for OneOf<T> {
    fn clone(&self) -> Self {
        OneOf(self.0.clone())
    }
}

impl<T> OneOf<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> OneOf<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf(arms)
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.random_range(0..self.0.len());
        self.0[idx].generate(rng)
    }
}

/// `prop_recursive` combinator.
pub struct Recursive<T> {
    base: BoxedStrategy<T>,
    recurse: Arc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    depth: u32,
}

impl<T> Clone for Recursive<T> {
    fn clone(&self) -> Self {
        Recursive {
            base: self.base.clone(),
            recurse: Arc::clone(&self.recurse),
            depth: self.depth,
        }
    }
}

impl<T> Strategy for Recursive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let levels = rng.random_range(0..=self.depth);
        let mut strat = self.base.clone();
        for _ in 0..levels {
            strat = (self.recurse)(strat);
        }
        strat.generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f64);

/// String patterns (regex subset) are strategies producing matching strings.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.random_bool(0.5)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.random_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64);

pub struct Any<A>(PhantomData<A>);

impl<A> Clone for Any<A> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary_value(rng)
    }
}

pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

// ---------------------------------------------------------------------------
// Collection strategies

#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.random_range(self.len.clone());
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `proptest::collection::vec`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(!len.is_empty(), "empty vec length range");
    VecStrategy { element, len }
}

#[derive(Clone)]
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    len: Range<usize>,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = rng.random_range(self.len.clone());
        let mut out = BTreeMap::new();
        // As in real proptest, key collisions may make the map smaller than
        // the drawn size.
        for _ in 0..n {
            out.insert(self.key.generate(rng), self.value.generate(rng));
        }
        out
    }
}

/// `proptest::collection::btree_map`.
pub fn btree_map<K, V>(key: K, value: V, len: Range<usize>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    assert!(!len.is_empty(), "empty btree_map length range");
    BTreeMapStrategy { key, value, len }
}

#[derive(Clone)]
pub struct OptionStrategy<S>(S);

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.random_bool(0.75) {
            Some(self.0.generate(rng))
        } else {
            None
        }
    }
}

/// `proptest::option::of`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy(inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_tuples_and_maps_generate_in_bounds() {
        let mut rng = TestRng::from_seed(11);
        let strat = (0i64..10, 0.0f64..1.0, any::<bool>()).prop_map(|(i, f, b)| (i * 2, f, b));
        for _ in 0..100 {
            let (i, f, _) = strat.generate(&mut rng);
            assert!((0..20).contains(&i) && i % 2 == 0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = TestRng::from_seed(12);
        let strat = crate::prop_oneof![Just(0u8), Just(1u8), Just(2u8)];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug)]
        enum Tree {
            #[allow(dead_code)]
            Leaf(i64),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0i64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 2, |inner| vec(inner, 1..3).prop_map(Tree::Node));
        let mut rng = TestRng::from_seed(13);
        for _ in 0..100 {
            assert!(depth(&strat.generate(&mut rng)) <= 4);
        }
    }

    #[test]
    fn collection_sizes_respect_range() {
        let mut rng = TestRng::from_seed(14);
        let v = vec(0u64..24, 0..300);
        let m = btree_map(0i64..500, 0i64..100, 0..120);
        for _ in 0..50 {
            assert!(v.generate(&mut rng).len() < 300);
            assert!(m.generate(&mut rng).len() < 120);
        }
    }
}
