//! Generation of strings matching the small regex subset used by this
//! repository's string strategies: literal characters, `\\` escapes,
//! character classes `[...]` (with `a-z` ranges), the printable-class
//! shorthand `\PC`, and `{m}` / `{m,n}` quantifiers.

use crate::test_runner::TestRng;
use rand::RngExt;

#[derive(Debug, Clone)]
enum AtomKind {
    Lit(char),
    Class(Vec<char>),
}

#[derive(Debug, Clone)]
struct Atom {
    kind: AtomKind,
    min: usize,
    max: usize,
}

fn printable_pool() -> Vec<char> {
    let mut pool: Vec<char> = (0x20u8..0x7F).map(char::from).collect();
    // A few non-ASCII printables so "any printable char" patterns exercise
    // multi-byte UTF-8 in the lexer/parser robustness properties.
    pool.extend(['é', 'ß', 'λ', '中', '🦀']);
    pool
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
    let mut out = Vec::new();
    let mut pending: Option<char> = None;
    while let Some(c) = chars.next() {
        match c {
            ']' => {
                if let Some(p) = pending {
                    out.push(p);
                }
                return out;
            }
            '-' if pending.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                let lo = pending.take().expect("range start");
                let hi = chars.next().expect("range end");
                let (lo, hi) = (lo as u32, hi as u32);
                for v in lo..=hi {
                    if let Some(ch) = char::from_u32(v) {
                        out.push(ch);
                    }
                }
            }
            '\\' => {
                if let Some(p) = pending.replace(chars.next().unwrap_or('\\')) {
                    out.push(p);
                }
            }
            other => {
                if let Some(p) = pending.replace(other) {
                    out.push(p);
                }
            }
        }
    }
    if let Some(p) = pending {
        out.push(p);
    }
    out
}

fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (usize, usize) {
    if chars.peek() != Some(&'{') {
        return (1, 1);
    }
    chars.next();
    let mut spec = String::new();
    for c in chars.by_ref() {
        if c == '}' {
            break;
        }
        spec.push(c);
    }
    match spec.split_once(',') {
        Some((lo, hi)) => (
            lo.trim().parse().unwrap_or(0),
            hi.trim().parse().unwrap_or(0),
        ),
        None => {
            let n = spec.trim().parse().unwrap_or(1);
            (n, n)
        }
    }
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let mut atoms = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let kind = match c {
            '\\' => match chars.next() {
                // `\PC` — "any printable character" (the only Unicode class
                // used in this repository's patterns).
                Some('P') => {
                    chars.next(); // consume the class letter (`C`)
                    AtomKind::Class(printable_pool())
                }
                Some(esc) => AtomKind::Lit(esc),
                None => AtomKind::Lit('\\'),
            },
            '[' => AtomKind::Class(parse_class(&mut chars)),
            other => AtomKind::Lit(other),
        };
        let (min, max) = parse_quantifier(&mut chars);
        atoms.push(Atom { kind, min, max });
    }
    atoms
}

/// Generates one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for atom in parse_pattern(pattern) {
        let reps = if atom.min >= atom.max {
            atom.min
        } else {
            rng.random_range(atom.min..=atom.max)
        };
        for _ in 0..reps {
            match &atom.kind {
                AtomKind::Lit(c) => out.push(*c),
                AtomKind::Class(pool) => {
                    if !pool.is_empty() {
                        out.push(pool[rng.random_range(0..pool.len())]);
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::generate;
    use crate::test_runner::TestRng;

    #[test]
    fn literals_pass_through() {
        let mut rng = TestRng::from_seed(1);
        assert_eq!(generate("orders", &mut rng), "orders");
    }

    #[test]
    fn classes_and_quantifiers() {
        let mut rng = TestRng::from_seed(2);
        for _ in 0..200 {
            let s = generate("[a-z ']{0,12}", &mut rng);
            assert!(s.chars().count() <= 12);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == ' ' || c == '\''));
        }
        for _ in 0..200 {
            let s = generate("[a-z]{1,6}", &mut rng);
            assert!((1..=6).contains(&s.chars().count()));
        }
        for _ in 0..200 {
            let s = generate("[a-z%_]{0,8}", &mut rng);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == '%' || c == '_'));
        }
    }

    #[test]
    fn printable_class() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..100 {
            let s = generate("\\PC{0,64}", &mut rng);
            assert!(s.chars().count() <= 64);
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }
}
