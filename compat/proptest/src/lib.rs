//! Offline mini property-testing harness exposing the subset of the
//! `proptest` API this workspace uses.
//!
//! Differences from real proptest, deliberately accepted:
//! * cases are generated from a deterministic per-test RNG (seeded from the
//!   test's module path), so failures reproduce across runs;
//! * no shrinking — the failing case index is printed instead;
//! * string strategies implement a small regex subset (literals, `\\`
//!   escapes, `[...]` classes with ranges, `\PC`, and `{m}`/`{m,n}`
//!   quantifiers) — enough for every pattern in this repository.

pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod collection {
    pub use crate::strategy::{btree_map, vec};
}

pub mod option {
    pub use crate::strategy::of;
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Non-fatal assertion (here: plain `assert!` — no shrinking to protect).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice between strategies that share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Property-test entry point. Each contained `fn` (which carries its own
/// `#[test]` attribute, as in upstream proptest style) becomes a test that
/// runs `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case as u64,
                );
                let mut __reporter =
                    $crate::test_runner::CaseReporter::new(stringify!($name), __case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
                __reporter.disarm();
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}
