//! Deterministic test-runner support: per-test RNG and case reporting.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 32 }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// RNG handed to strategies; deterministic per (test name, case index).
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    pub fn deterministic(test_name: &str, case: u64) -> TestRng {
        let seed = fnv1a(test_name.as_bytes()) ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        TestRng(StdRng::seed_from_u64(seed))
    }

    pub fn from_seed(seed: u64) -> TestRng {
        TestRng(StdRng::seed_from_u64(seed))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Prints the failing case index when a property body panics (there is no
/// shrinker; the case index plus the deterministic seed reproduce the
/// failure exactly).
pub struct CaseReporter {
    test: &'static str,
    case: u32,
    armed: bool,
}

impl CaseReporter {
    pub fn new(test: &'static str, case: u32) -> CaseReporter {
        CaseReporter {
            test,
            case,
            armed: true,
        }
    }

    pub fn disarm(&mut self) {
        self.armed = false;
    }
}

impl Drop for CaseReporter {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!(
                "proptest: property '{}' failed at deterministic case {}",
                self.test, self.case
            );
        }
    }
}
