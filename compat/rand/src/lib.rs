//! Offline shim exposing the subset of the `rand` 0.10 API this workspace
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `RngExt`
//! sampling methods (`random_range`, `random_bool`).
//!
//! The generator is xoshiro256** seeded through SplitMix64 — deterministic
//! across platforms, which is what the TPC-H generator, the simulator, and
//! the golden-fingerprint tests rely on.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state is a fixed point of xoshiro; splitmix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A range argument accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    fn sample_from(self, rng: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "empty random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn FnMut() -> u64) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "empty random_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, rng: &mut dyn FnMut() -> u64) -> f64 {
        assert!(self.start < self.end, "empty random_range");
        let unit = (rng() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Sampling extension methods, mirroring rand 0.10's `RngExt`.
pub trait RngExt: RngCore {
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(&mut || self.next_u64())
    }

    fn random_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore + ?Sized> RngExt for T {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_a_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0..1_000_000i64),
                b.random_range(0..1_000_000i64)
            );
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(-50..50i64);
            assert!((-50..50).contains(&v));
            let w = rng.random_range(3..=9u32);
            assert!((3..=9).contains(&w));
            let f = rng.random_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.random_range(0..u64::MAX) == b.random_range(0..u64::MAX))
            .count();
        assert!(same < 4);
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits={hits}");
    }
}
