//! Offline shim exposing the subset of the `parking_lot` API this workspace
//! uses, backed by `std::sync`. Poisoning is swallowed (parking_lot locks do
//! not poison): a panic while holding a lock leaves the data as-is, matching
//! parking_lot semantics closely enough for this codebase.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::{Duration, Instant};

/// Non-poisoning mutex with `parking_lot`'s `lock() -> MutexGuard` signature.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn const_new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// Guard for [`Mutex`]. Holds an `Option` internally so [`Condvar::wait`] can
/// temporarily take the underlying std guard by value.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present")
    }
}

/// Condition variable operating on [`MutexGuard`] by `&mut` reference,
/// matching `parking_lot::Condvar`.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(PoisonError::into_inner));
    }

    /// Waits until `timeout` (an absolute instant) at the latest, matching
    /// `parking_lot::Condvar::wait_until`. Spurious wakeups are possible;
    /// callers must re-check their predicate.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Instant,
    ) -> WaitTimeoutResult {
        let remaining = timeout.saturating_duration_since(Instant::now());
        self.wait_for(guard, remaining)
    }

    /// Waits for at most `timeout`, matching `parking_lot::Condvar::wait_for`.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present");
        let (inner, result) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

/// Result of a timed wait on [`Condvar`], matching
/// `parking_lot::WaitTimeoutResult`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed (rather than a
    /// notification).
    pub fn timed_out(self) -> bool {
        self.0
    }
}

/// Non-poisoning reader-writer lock with `parking_lot`'s signatures.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(0usize), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while *g == 0 {
                cv.wait(&mut g);
            }
            *g
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        *pair.0.lock() = 7;
        pair.1.notify_all();
        assert_eq!(t.join().unwrap(), 7);
    }

    #[test]
    fn rwlock_many_readers_one_writer() {
        let l = RwLock::new(1);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 2);
        }
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }
}
