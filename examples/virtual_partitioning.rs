//! EXPLAIN-style tour of Simple Virtual Partitioning.
//!
//! For each TPC-H evaluation query this prints what Apuama's rewriter
//! produces for a 4-node cluster: the per-node sub-queries (note the
//! injected VPA range predicates and decomposed aggregates) and the
//! composition query that rebuilds the global result — the paper's §2
//! running example, live.
//!
//! ```text
//! cargo run --release --example virtual_partitioning
//! ```

use apuama::{DataCatalog, Rewritten, SvpRewriter};
use apuama_tpch::{QueryParams, ALL_QUERIES};

fn main() {
    let rewriter = SvpRewriter::new(DataCatalog::tpch(6_000_000));
    let params = QueryParams::default();

    // The paper's running example first (§2).
    let paper_example = "select sum(l_extendedprice) from lineitem";
    show(&rewriter, "paper §2 example", paper_example, 4);

    for q in ALL_QUERIES {
        show(&rewriter, &q.label(), &q.sql(&params), 4);
    }

    // Something that is NOT eligible, to show the pass-through path.
    show(
        &rewriter,
        "dimension-only (not eligible)",
        "select n_name from nation order by n_name",
        4,
    );
}

fn show(rewriter: &SvpRewriter, name: &str, sql: &str, n: usize) {
    println!("\n=== {name} ===");
    println!("original:\n  {sql}");
    match rewriter.rewrite(sql, n).expect("parses") {
        Rewritten::Svp(plan) => {
            println!("partitioned tables: {:?}", plan.partitioned_tables);
            println!("sub-query for node 2 of {n}:");
            println!("  {}", plan.subqueries[1]);
            println!(
                "composition over {} partial columns:",
                plan.partial_columns.len()
            );
            println!("  {}", plan.composition_sql);
        }
        Rewritten::Passthrough { reason } => {
            println!("passthrough: {reason}");
        }
    }
}
