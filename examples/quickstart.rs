//! Quickstart: a four-node Apuama cluster in ~40 lines.
//!
//! Builds four in-process database replicas, loads a small TPC-H dataset
//! into each, stacks the Apuama engine between a C-JDBC-style controller
//! and the replicas, and runs both kinds of traffic through the single
//! virtual-database façade:
//!
//! * an OLAP aggregate — rewritten by SVP into four sub-queries, executed
//!   in parallel, recomposed by the in-memory composer;
//! * an OLTP insert — broadcast to every replica in total order.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use apuama::{ApuamaConfig, ApuamaEngine, DataCatalog};
use apuama_cjdbc::{Connection, Controller, ControllerConfig, EngineNode, NodeConnection};
use apuama_engine::Database;
use apuama_tpch::{generate, load_into, TpchConfig};

fn main() {
    // 1. Generate one small TPC-H dataset (SF 0.002 ≈ 3,000 orders) and
    //    load a replica per node.
    let data = generate(TpchConfig {
        scale_factor: 0.002,
        seed: 42,
    });
    let nodes = 4;
    let mut dbms_conns: Vec<Arc<dyn Connection>> = Vec::new();
    for i in 0..nodes {
        let mut db = Database::in_memory();
        load_into(&mut db, &data).expect("load replica");
        dbms_conns.push(Arc::new(NodeConnection::new(EngineNode::new(
            format!("node-{i}"),
            db,
        ))));
    }

    // 2. Interpose Apuama between the controller and the DBMSs: the Data
    //    Catalog declares the fact tables and their virtual-partitioning
    //    attributes.
    let catalog = DataCatalog::tpch(data.config.orders() as i64);
    let apuama = ApuamaEngine::new(dbms_conns, catalog, ApuamaConfig::default());

    // 3. C-JDBC controller on top — the application's single connection
    //    point. No C-JDBC-side code changes: Apuama simply is the "driver".
    let controller = Controller::new(apuama.connections(), ControllerConfig::default());

    // 4. OLAP: this aggregate is SVP-eligible; each node scans a quarter of
    //    the lineitem key range.
    let (out, _) = controller
        .execute(
            "select l_returnflag, sum(l_extendedprice) as revenue, count(*) as n \
             from lineitem group by l_returnflag order by l_returnflag",
        )
        .expect("OLAP query");
    println!("revenue by return flag:");
    for row in &out.rows {
        println!(
            "  {} {:>14.2} ({} lineitems)",
            row[0],
            row[1].as_f64().unwrap(),
            row[2]
        );
    }

    // 5. OLTP: writes broadcast to every replica; the per-node transaction
    //    counters stay in lock step.
    controller
        .execute(
            "insert into orders values (9000001, 1, 'O', 100.0, date '1998-01-01', \
             '1-URGENT', 'Clerk#000000001', 0, 'quickstart')",
        )
        .expect("OLTP insert");
    println!("txn counters after insert: {:?}", apuama.txn_counters());

    let (out, _) = controller
        .execute("select count(*) as n from orders")
        .expect("count");
    println!("orders now: {}", out.rows[0][0]);
}
