//! A miniature of the paper's Fig. 2 on the simulated cluster: how one
//! heavy OLAP query speeds up as nodes are added.
//!
//! Uses the calibrated cost model (see `apuama-sim`), so the printed times
//! are virtual 2006-testbed milliseconds, while the query itself executes
//! for real on every replica.
//!
//! ```text
//! cargo run --release --example cluster_speedup
//! ```

use apuama_sim::{run_isolated, SimCluster, SimClusterConfig};
use apuama_tpch::{generate, QueryParams, TpchConfig, TpchQuery};

fn main() {
    let data = generate(TpchConfig {
        scale_factor: 0.005,
        seed: 42,
    });
    let query = TpchQuery::Q6;
    let sql = query.sql(&QueryParams::default());
    println!("query: {} — {}", query.label(), query.description());

    let mut base = None;
    println!(
        "{:>6} {:>12} {:>10} {:>8}",
        "nodes", "latency", "speedup", "linear"
    );
    for n in [1usize, 2, 4, 8] {
        let cluster = SimCluster::new(&data, SimClusterConfig::paper(n)).expect("cluster builds");
        let report = run_isolated(&cluster, &sql, 5).expect("query runs");
        let ms = report.warm_mean_ms();
        let base = *base.get_or_insert(ms);
        println!("{n:>6} {:>10.1}ms {:>9.2}x {:>7}x", ms, base / ms, n);
    }
    println!("\nspeedup beyond the linear column = the paper's super-linear\nmemory-fit effect (the virtual partition fits in node RAM).");
}
