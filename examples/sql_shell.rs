//! An interactive SQL shell over a live Apuama cluster.
//!
//! Spins up a 4-node replicated TPC-H cluster (SF 0.002) with Apuama
//! between the C-JDBC controller and the replicas, then reads statements
//! from stdin. Anything you can send over the virtual database works:
//! OLAP queries get SVP-parallelized, writes are broadcast, `explain ...`
//! shows a node's plan. Shell commands: `\\q` quits, `\\counters` prints
//! the per-replica transaction counters, `\\svp <query>` shows the SVP
//! rewrite without executing.
//!
//! ```text
//! cargo run --release --example sql_shell
//! echo "select count(*) as n from lineitem" | cargo run --release --example sql_shell
//! ```

use std::io::{BufRead, Write};
use std::sync::Arc;
use std::time::Instant;

use apuama::{ApuamaConfig, ApuamaEngine, DataCatalog, Rewritten};
use apuama_cjdbc::{Connection, Controller, ControllerConfig, EngineNode, NodeConnection};
use apuama_engine::{Database, QueryOutput};
use apuama_tpch::{generate, load_into, TpchConfig};

fn main() {
    eprintln!("loading 4 replicas of TPC-H SF 0.002 ...");
    let data = generate(TpchConfig {
        scale_factor: 0.002,
        seed: 42,
    });
    let mut conns: Vec<Arc<dyn Connection>> = Vec::new();
    for i in 0..4 {
        let mut db = Database::in_memory();
        load_into(&mut db, &data).expect("replica loads");
        conns.push(Arc::new(NodeConnection::new(EngineNode::new(
            format!("node-{i}"),
            db,
        ))));
    }
    let engine = ApuamaEngine::new(
        conns,
        DataCatalog::tpch(data.config.orders() as i64),
        ApuamaConfig::default(),
    );
    let controller = Controller::new(engine.connections(), ControllerConfig::default());
    eprintln!("ready. tables: region nation supplier part partsupp customer orders lineitem");
    eprintln!("commands: \\q quit, \\counters, \\svp <query>. statements end at newline.");

    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        eprint!("apuama> ");
        let _ = std::io::stderr().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("stdin error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == "\\q" || line == "quit" || line == "exit" {
            break;
        }
        if line == "\\counters" {
            println!("replica txn counters: {:?}", engine.txn_counters());
            continue;
        }
        if let Some(query) = line.strip_prefix("\\svp ") {
            match engine.rewriter().rewrite(query, engine.node_count()) {
                Ok(Rewritten::Svp(plan)) => {
                    println!("partitioned: {:?}", plan.partitioned_tables);
                    for (i, sub) in plan.subqueries.iter().enumerate() {
                        println!("node {i}: {sub}");
                    }
                    println!("compose: {}", plan.composition_sql);
                }
                Ok(Rewritten::Passthrough { reason }) => println!("passthrough: {reason}"),
                Err(e) => println!("error: {e}"),
            }
            continue;
        }
        let started = Instant::now();
        match controller.execute(line) {
            Ok((result, backend)) => {
                print_result(&mut out, &result);
                eprintln!(
                    "({} rows, {:.1} ms, via backend {backend})",
                    result.rows.len().max(result.rows_affected as usize),
                    started.elapsed().as_secs_f64() * 1000.0
                );
            }
            Err(e) => println!("error: {e}"),
        }
    }
}

fn print_result(out: &mut impl Write, result: &QueryOutput) {
    if result.columns.is_empty() {
        let _ = writeln!(out, "ok ({} rows affected)", result.rows_affected);
        return;
    }
    // Column widths from header + data.
    let mut widths: Vec<usize> = result.columns.iter().map(String::len).collect();
    let rendered: Vec<Vec<String>> = result
        .rows
        .iter()
        .map(|r| r.iter().map(|v| v.to_string()).collect())
        .collect();
    for row in &rendered {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join(" | ")
    };
    let header: Vec<String> = result.columns.clone();
    let _ = writeln!(out, "{}", line(&header));
    let _ = writeln!(
        out,
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 3 * widths.len())
    );
    for row in &rendered {
        let _ = writeln!(out, "{}", line(row));
    }
}
