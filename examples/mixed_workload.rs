//! OLTP and OLAP at the same time — the paper's headline capability.
//!
//! Runs a refresh stream (insert orders + lineitems, then delete them)
//! through the controller from one thread while two other threads fire
//! SVP-parallelized OLAP queries. The consistency protocol guarantees each
//! OLAP answer reflects one converged replica state: watch the order count
//! only ever move monotonically while inserts run, and return to the
//! baseline after the deletes.
//!
//! ```text
//! cargo run --release --example mixed_workload
//! ```

use std::sync::Arc;

use apuama::{ApuamaConfig, ApuamaEngine, DataCatalog};
use apuama_cjdbc::{Connection, Controller, ControllerConfig, EngineNode, NodeConnection};
use apuama_engine::Database;
use apuama_tpch::{generate, load_into, refresh_stream, TpchConfig};

fn main() {
    let tpch = TpchConfig {
        scale_factor: 0.002,
        seed: 7,
    };
    let data = generate(tpch);
    let nodes = 4;
    let mut conns: Vec<Arc<dyn Connection>> = Vec::new();
    for i in 0..nodes {
        let mut db = Database::in_memory();
        load_into(&mut db, &data).expect("load replica");
        conns.push(Arc::new(NodeConnection::new(EngineNode::new(
            format!("node-{i}"),
            db,
        ))));
    }
    let apuama = ApuamaEngine::new(
        conns,
        DataCatalog::tpch(data.config.orders() as i64),
        ApuamaConfig::default(),
    );
    let controller = Arc::new(Controller::new(
        apuama.connections(),
        ControllerConfig::default(),
    ));

    let baseline = {
        let (out, _) = controller
            .execute("select count(*) as n from orders")
            .unwrap();
        out.rows[0][0].as_i64().unwrap()
    };
    println!("baseline orders: {baseline}");

    // 30 refresh transactions: 15 inserts then 15 deletes.
    let txns = refresh_stream(&tpch, 30, baseline + 1, 99);

    std::thread::scope(|s| {
        let writer = {
            let c = Arc::clone(&controller);
            s.spawn(move || {
                for t in &txns {
                    c.execute_write_transaction(&t.statements)
                        .expect("refresh txn");
                }
            })
        };
        for reader_id in 0..2 {
            let c = Arc::clone(&controller);
            s.spawn(move || {
                let mut last = 0i64;
                for i in 0..10 {
                    let (out, _) = c
                        .execute("select count(*) as n, max(o_orderkey) as k from orders")
                        .expect("OLAP count");
                    let n = out.rows[0][0].as_i64().unwrap();
                    println!(
                        "reader {reader_id} observation {i}: {n} orders (max key {})",
                        out.rows[0][1]
                    );
                    // Every observation is a consistent snapshot.
                    assert!(n >= baseline.min(last), "snapshot went inconsistent");
                    last = n;
                }
            });
        }
        writer.join().unwrap();
    });

    let (out, _) = controller
        .execute("select count(*) as n from orders")
        .unwrap();
    let finally = out.rows[0][0].as_i64().unwrap();
    println!("after full refresh stream: {finally} orders (baseline {baseline})");
    assert_eq!(finally, baseline, "deletes must restore the baseline");
    println!(
        "replica txn counters: {:?} (all equal = converged)",
        apuama.txn_counters()
    );
}
