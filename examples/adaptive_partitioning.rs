//! SVP vs AVP: static partitions against adaptive chunks + work stealing.
//!
//! The paper (§6) compares Apuama's Simple Virtual Partitioning with the
//! Adaptive Virtual Partitioning of SmaQ. This example runs both executors
//! over the same replicas — first with uniform nodes, then with one node
//! artificially 5× slower — and prints the per-node work distribution, so
//! you can watch AVP's work stealing route keys around the straggler while
//! SVP's makespan stays pinned to it.
//!
//! ```text
//! cargo run --release --example adaptive_partitioning
//! ```

use apuama::{execute_avp, AvpConfig, Rewritten};
use apuama_sim::{SimCluster, SimClusterConfig};
use apuama_tpch::{generate, QueryParams, TpchConfig, TpchQuery};

fn main() {
    let data = generate(TpchConfig {
        scale_factor: 0.005,
        seed: 42,
    });
    let nodes = 4;
    let cluster = SimCluster::new(&data, SimClusterConfig::paper(nodes)).expect("cluster");
    let sql = TpchQuery::Q6.sql(&QueryParams::default());
    println!("query: Q6 over {nodes} nodes\n");

    for (scenario, straggler_factor) in [("uniform nodes", 1.0f64), ("node 0 is 5x slower", 5.0)] {
        println!("=== {scenario} ===");
        let slowdown = |node: usize, ms: f64| if node == 0 { ms * straggler_factor } else { ms };

        // SVP: static ranges.
        cluster.drop_caches();
        let Rewritten::Svp(plan) = cluster.rewrite(&sql).expect("parses") else {
            panic!("Q6 must be SVP-eligible");
        };
        let mut svp_makespan = 0.0f64;
        print!("SVP  per-node ms:");
        for (node, sub) in plan.subqueries.iter().enumerate() {
            let (_, ms) = cluster.exec_subquery(node, sub).expect("subquery");
            let ms = slowdown(node, ms);
            print!(" {ms:7.1}");
            svp_makespan = svp_makespan.max(ms);
        }
        println!("   -> makespan {svp_makespan:.1} ms");

        // AVP: adaptive chunks with stealing.
        cluster.drop_caches();
        let template = cluster.template(&sql).expect("parses").expect("eligible");
        let outcome = execute_avp(&template, nodes, AvpConfig::default(), |node, sub| {
            let (out, ms) = cluster.exec_subquery(node, sub)?;
            Ok((out, slowdown(node, ms)))
        })
        .expect("avp");
        print!("AVP  per-node ms:");
        for t in &outcome.per_node {
            print!(" {:7.1}", t.cost);
        }
        println!("   -> makespan {:.1} ms", outcome.makespan_cost);
        print!("AVP  keys/node:  ");
        for t in &outcome.per_node {
            print!(" {:7}", t.keys);
        }
        println!();
        print!("AVP  chunks/node:");
        for t in &outcome.per_node {
            print!(" {:7}", t.chunks);
        }
        println!("\n");
    }
    println!(
        "With uniform nodes the two tie; with a straggler, AVP's stealing\n\
         shifts keys to the fast nodes and cuts the makespan roughly in half."
    );
}
